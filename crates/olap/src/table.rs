//! Row-addressable tables built from typed columns.

use crate::chunk::{LivenessMap, DEFAULT_CHUNK_ROWS};
use crate::column::{Column, ColumnType};
use crate::error::OlapError;
use crate::value::CellValue;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// The stable-row-id remap published by one compaction of a [`Table`]:
/// live rows keep their relative order, so the new id of an old row is its
/// rank among the surviving ids.
///
/// Remaps compose: a table compacted `n` times has a chain of `n` remaps,
/// and a selection captured at compaction version `v` translates to the
/// current numbering by applying remaps `v..n` in order (or row ids
/// translate *backwards* through the same chain via [`RowRemap::old_id`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowRemap {
    /// The old ids of the surviving rows, ascending; the new id of old row
    /// `live_old_ids[i]` is `i`.
    live_old_ids: Vec<usize>,
}

impl RowRemap {
    /// Wraps the (ascending) old ids of the rows that survived.
    pub fn new(live_old_ids: Vec<usize>) -> Self {
        debug_assert!(live_old_ids.windows(2).all(|w| w[0] < w[1]));
        RowRemap { live_old_ids }
    }

    /// The new id of an old row, or `None` when the row was dead at
    /// compaction time.
    pub fn new_id(&self, old: usize) -> Option<usize> {
        self.live_old_ids.binary_search(&old).ok()
    }

    /// The old id of a new row, or `None` when `new` only exists after the
    /// compaction (rows appended later).
    pub fn old_id(&self, new: usize) -> Option<usize> {
        self.live_old_ids.get(new).copied()
    }

    /// Number of rows that survived the compaction.
    pub fn live_len(&self) -> usize {
        self.live_old_ids.len()
    }
}

/// A named table: an ordered set of typed columns of equal length.
///
/// Dimension tables, layer tables and fact tables are all [`Table`]s; the
/// [`crate::Cube`] adds the star-schema wiring between them.
///
/// Rows are append-only and addressed by their stable row id; a row can be
/// *retracted* (the ingest path's delete), which tombstones the id — scans
/// skip it, the id is never reused, and ids of later rows never shift, so
/// fact-row selections held by long-lived [`crate::InstanceView`]s stay
/// valid across ingestion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table name.
    pub name: String,
    columns: Vec<(String, Column)>,
    rows: usize,
    /// Tombstoned row ids, as a chunked copy-on-write bitmap: cloning the
    /// table (snapshot publication) bumps chunk refcounts instead of
    /// copying the whole set, and a retraction copies one chunk.
    liveness: LivenessMap,
    /// Rows per storage chunk (the copy-on-write granularity).
    chunk_rows: usize,
}

impl Table {
    /// Creates a table from `(column name, type)` pairs with the default
    /// chunk size.
    pub fn new(name: impl Into<String>, columns: Vec<(String, ColumnType)>) -> Self {
        Table::with_chunk_rows(name, columns, DEFAULT_CHUNK_ROWS)
    }

    /// Creates a table with an explicit storage chunk size (rows per
    /// chunk, ≥ 1). Small chunks are mainly for tests that want many
    /// chunk boundaries; the default aligns with the executor's morsel
    /// size.
    pub fn with_chunk_rows(
        name: impl Into<String>,
        columns: Vec<(String, ColumnType)>,
        chunk_rows: usize,
    ) -> Self {
        let chunk_rows = chunk_rows.max(1);
        Table {
            name: name.into(),
            columns: columns
                .into_iter()
                .map(|(n, t)| (n, Column::with_chunk_rows(t, chunk_rows)))
                .collect(),
            rows: 0,
            liveness: LivenessMap::new(chunk_rows),
            chunk_rows,
        }
    }

    /// Rows per storage chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Number of rows ever appended (live and retracted); row ids range
    /// over `0..len()`.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Returns `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of live (non-retracted) rows.
    pub fn live_len(&self) -> usize {
        self.rows - self.liveness.dead_count()
    }

    /// Returns `true` when `row` exists and has not been retracted.
    pub fn is_live(&self, row: usize) -> bool {
        row < self.rows && !self.liveness.is_dead(row)
    }

    /// Fraction of ever-appended rows that are tombstoned — the
    /// compaction-pressure signal (`0.0` for an empty table).
    pub fn tombstone_ratio(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.liveness.dead_count() as f64 / self.rows as f64
        }
    }

    /// The maximal runs of live rows within a row range (clamped to the
    /// table's length): contiguous id ranges containing no tombstone. The
    /// vectorised executor aggregates each run with one kernel pass per
    /// chunk instead of a per-row liveness check.
    pub fn live_runs(&self, rows: Range<usize>) -> Vec<Range<usize>> {
        let end = rows.end.min(self.rows);
        let start = rows.start.min(end);
        self.liveness.live_runs(start..end)
    }

    /// Rewrites the live rows into fresh, dense chunks, dropping every
    /// tombstone (and, for text columns, re-interning only the strings
    /// live rows still reference). Live rows keep their relative order;
    /// the returned [`RowRemap`] translates old stable row ids to the new
    /// numbering so long-lived selections can follow.
    pub fn compact(&self) -> (Table, RowRemap) {
        let mut fresh = Table {
            name: self.name.clone(),
            columns: self
                .columns
                .iter()
                .map(|(n, c)| {
                    (
                        n.clone(),
                        Column::with_chunk_rows(c.column_type(), self.chunk_rows),
                    )
                })
                .collect(),
            rows: 0,
            liveness: LivenessMap::new(self.chunk_rows),
            chunk_rows: self.chunk_rows,
        };
        let mut live_old_ids = Vec::with_capacity(self.live_len());
        for run in self.live_runs(0..self.rows) {
            for row in run {
                live_old_ids.push(row);
                for (source, target) in self.columns.iter().zip(fresh.columns.iter_mut()) {
                    target
                        .1
                        .push(source.1.get(row))
                        .expect("compaction copies between identical column types");
                }
                fresh.rows += 1;
            }
        }
        (fresh, RowRemap::new(live_old_ids))
    }

    /// Tombstones a row: scans skip it from now on, its id is never
    /// reused. Retracting an already-retracted row is a no-op (`Ok`), so a
    /// replayed delta stays idempotent; an out-of-range row is an error.
    pub fn retract_row(&mut self, row: usize) -> Result<(), OlapError> {
        if row >= self.rows {
            return Err(OlapError::RowShape {
                message: format!(
                    "cannot retract row {row} of table '{}' ({} rows)",
                    self.name, self.rows
                ),
            });
        }
        self.liveness.retract(row);
        Ok(())
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The column names in declaration order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Borrow a column by declaration index (resolved once by the query
    /// planner; panics out of range, like slice indexing).
    pub fn column_at(&self, index: usize) -> &Column {
        &self.columns[index].1
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column, OlapError> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .ok_or_else(|| OlapError::UnknownColumn {
                table: self.name.clone(),
                column: name.to_string(),
            })
    }

    /// Appends a row given as `(column name, value)` pairs; missing columns
    /// become null.
    pub fn push_row(&mut self, values: Vec<(&str, CellValue)>) -> Result<usize, OlapError> {
        // Validate names *and* types first so a failed push cannot leave
        // ragged columns behind.
        for (name, value) in &values {
            match self.column(name) {
                Err(_) => {
                    return Err(OlapError::UnknownColumn {
                        table: self.name.clone(),
                        column: (*name).to_string(),
                    })
                }
                Ok(column) => {
                    if !column.accepts(value) {
                        return Err(OlapError::TypeMismatch {
                            expected: "a value matching the column type",
                            found: format!("{} for column '{name}'", value.type_name()),
                        });
                    }
                }
            }
        }
        for (col_name, column) in &mut self.columns {
            let value = values
                .iter()
                .find(|(n, _)| n == col_name)
                .map(|(_, v)| v.clone())
                .unwrap_or(CellValue::Null);
            column.push(value)?;
        }
        let row = self.rows;
        self.rows += 1;
        Ok(row)
    }

    /// Appends a row given positionally (must cover every column).
    pub fn push_row_positional(&mut self, values: Vec<CellValue>) -> Result<usize, OlapError> {
        if values.len() != self.columns.len() {
            return Err(OlapError::RowShape {
                message: format!(
                    "table '{}' has {} columns but the row has {} values",
                    self.name,
                    self.columns.len(),
                    values.len()
                ),
            });
        }
        for ((name, column), value) in self.columns.iter().zip(values.iter()) {
            if !column.accepts(value) {
                return Err(OlapError::TypeMismatch {
                    expected: "a value matching the column type",
                    found: format!("{} for column '{name}'", value.type_name()),
                });
            }
        }
        for ((_, column), value) in self.columns.iter_mut().zip(values) {
            column.push(value)?;
        }
        let row = self.rows;
        self.rows += 1;
        Ok(row)
    }

    /// Overwrites one cell of a live row (the ingest path's cell upsert).
    /// Errors on an unknown column, an out-of-range or retracted row, or a
    /// type-incompatible value — always leaving the table untouched.
    pub fn set_cell(
        &mut self,
        row: usize,
        column: &str,
        value: CellValue,
    ) -> Result<(), OlapError> {
        if !self.is_live(row) {
            return Err(OlapError::RowShape {
                message: format!(
                    "cannot update row {row} of table '{}': {}",
                    self.name,
                    if row < self.rows {
                        "row is retracted"
                    } else {
                        "row out of range"
                    }
                ),
            });
        }
        let name = self.name.clone();
        let col = self
            .columns
            .iter_mut()
            .find(|(n, _)| n == column)
            .map(|(_, c)| c)
            .ok_or_else(|| OlapError::UnknownColumn {
                table: name,
                column: column.to_string(),
            })?;
        col.set(row, value)
    }

    /// Reads a cell by row index and column name.
    pub fn get(&self, row: usize, column: &str) -> Result<CellValue, OlapError> {
        Ok(self.column(column)?.get(row))
    }

    /// Reads an entire row as `(column name, value)` pairs.
    pub fn row(&self, row: usize) -> Vec<(String, CellValue)> {
        self.columns
            .iter()
            .map(|(n, c)| (n.clone(), c.get(row)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_table() -> Table {
        Table::new(
            "Store",
            vec![
                ("Store.name".to_string(), ColumnType::Text),
                ("City.name".to_string(), ColumnType::Text),
                ("size_sqm".to_string(), ColumnType::Integer),
            ],
        )
    }

    #[test]
    fn construction_and_metadata() {
        let t = store_table();
        assert!(t.is_empty());
        assert_eq!(t.num_columns(), 3);
        assert_eq!(
            t.column_names(),
            vec!["Store.name", "City.name", "size_sqm"]
        );
        assert_eq!(t.column_index("City.name"), Some(1));
        assert_eq!(t.column_index("missing"), None);
        assert!(t.column("missing").is_err());
    }

    #[test]
    fn named_row_insertion_fills_missing_with_null() {
        let mut t = store_table();
        let row = t
            .push_row(vec![
                ("Store.name", CellValue::from("Downtown")),
                ("City.name", CellValue::from("Alicante")),
            ])
            .unwrap();
        assert_eq!(row, 0);
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.get(0, "Store.name").unwrap(),
            CellValue::Text("Downtown".into())
        );
        assert_eq!(t.get(0, "size_sqm").unwrap(), CellValue::Null);
    }

    #[test]
    fn unknown_column_in_row_is_rejected_without_corruption() {
        let mut t = store_table();
        let err = t
            .push_row(vec![
                ("Store.name", CellValue::from("X")),
                ("ghost", CellValue::Null),
            ])
            .unwrap_err();
        assert!(matches!(err, OlapError::UnknownColumn { .. }));
        assert!(t.is_empty());
        // The failed insert must not have left a partial row behind.
        assert_eq!(t.column("Store.name").unwrap().len(), 0);
    }

    #[test]
    fn positional_row_insertion() {
        let mut t = store_table();
        t.push_row_positional(vec![
            CellValue::from("Downtown"),
            CellValue::from("Alicante"),
            CellValue::Integer(450),
        ])
        .unwrap();
        assert_eq!(t.get(0, "size_sqm").unwrap(), CellValue::Integer(450));
        let err = t.push_row_positional(vec![CellValue::Null]).unwrap_err();
        assert!(matches!(err, OlapError::RowShape { .. }));
    }

    #[test]
    fn type_mismatch_in_row_is_rejected_without_corruption() {
        let mut t = store_table();
        // "size_sqm" is an integer column; a text value must fail the whole
        // row, including the columns that would have accepted theirs.
        let err = t
            .push_row(vec![
                ("Store.name", CellValue::from("X")),
                ("size_sqm", CellValue::from("big")),
            ])
            .unwrap_err();
        assert!(matches!(err, OlapError::TypeMismatch { .. }));
        assert!(t.is_empty());
        assert_eq!(t.column("Store.name").unwrap().len(), 0);
        // Same for positional pushes.
        let err = t
            .push_row_positional(vec![
                CellValue::from("X"),
                CellValue::from("Y"),
                CellValue::Boolean(true),
            ])
            .unwrap_err();
        assert!(matches!(err, OlapError::TypeMismatch { .. }));
        assert!(t.is_empty());
    }

    #[test]
    fn retraction_tombstones_without_shifting_ids() {
        let mut t = store_table();
        for i in 0..3 {
            t.push_row(vec![("Store.name", CellValue::from(format!("S{i}")))])
                .unwrap();
        }
        assert_eq!((t.len(), t.live_len()), (3, 3));
        t.retract_row(1).unwrap();
        assert_eq!((t.len(), t.live_len()), (3, 2));
        assert!(t.is_live(0) && !t.is_live(1) && t.is_live(2));
        assert!(!t.is_live(3));
        // Ids are stable: row 2 still reads its own data.
        assert_eq!(
            t.get(2, "Store.name").unwrap(),
            CellValue::Text("S2".into())
        );
        // Idempotent retraction; out-of-range errors.
        t.retract_row(1).unwrap();
        assert_eq!(t.live_len(), 2);
        assert!(t.retract_row(9).is_err());
        // Appending after a retraction allocates a fresh id.
        let row = t
            .push_row(vec![("Store.name", CellValue::from("S3"))])
            .unwrap();
        assert_eq!(row, 3);
        assert_eq!(t.live_len(), 3);
    }

    #[test]
    fn set_cell_updates_live_rows_only() {
        let mut t = store_table();
        t.push_row(vec![
            ("Store.name", CellValue::from("Downtown")),
            ("size_sqm", CellValue::Integer(100)),
        ])
        .unwrap();
        t.set_cell(0, "size_sqm", CellValue::Integer(250)).unwrap();
        assert_eq!(t.get(0, "size_sqm").unwrap(), CellValue::Integer(250));
        assert!(t.set_cell(0, "ghost", CellValue::Null).is_err());
        assert!(t.set_cell(0, "size_sqm", CellValue::from("x")).is_err());
        assert!(t.set_cell(4, "size_sqm", CellValue::Integer(1)).is_err());
        t.retract_row(0).unwrap();
        assert!(t.set_cell(0, "size_sqm", CellValue::Integer(1)).is_err());
        // The failed updates left the cell as written.
        assert_eq!(t.get(0, "size_sqm").unwrap(), CellValue::Integer(250));
    }

    #[test]
    fn live_runs_and_tombstone_ratio() {
        let mut t = store_table();
        for i in 0..8 {
            t.push_row(vec![("Store.name", CellValue::from(format!("S{i}")))])
                .unwrap();
        }
        assert_eq!(t.tombstone_ratio(), 0.0);
        assert_eq!(t.live_runs(0..8), vec![0..8]);
        t.retract_row(2).unwrap();
        t.retract_row(3).unwrap();
        t.retract_row(6).unwrap();
        assert_eq!(t.tombstone_ratio(), 3.0 / 8.0);
        assert_eq!(t.live_runs(0..8), vec![0..2, 4..6, 7..8]);
        // Clamped and partial ranges.
        assert_eq!(t.live_runs(3..99), vec![4..6, 7..8]);
        assert_eq!(t.live_runs(2..4), Vec::<std::ops::Range<usize>>::new());
        assert_eq!(Table::new("e", vec![]).tombstone_ratio(), 0.0);
    }

    #[test]
    fn compaction_rewrites_live_rows_and_remaps_ids() {
        let mut t = Table::with_chunk_rows(
            "Store",
            vec![
                ("Store.name".to_string(), ColumnType::Text),
                ("size_sqm".to_string(), ColumnType::Integer),
            ],
            2,
        );
        for i in 0..6 {
            t.push_row(vec![
                ("Store.name", CellValue::from(format!("S{i}"))),
                ("size_sqm", CellValue::Integer(i)),
            ])
            .unwrap();
        }
        t.retract_row(0).unwrap();
        t.retract_row(3).unwrap();
        t.retract_row(4).unwrap();
        let (compacted, remap) = t.compact();
        assert_eq!(compacted.len(), 3);
        assert_eq!(compacted.live_len(), 3);
        assert_eq!(compacted.tombstone_ratio(), 0.0);
        assert_eq!(compacted.chunk_rows(), 2);
        // Live rows kept their relative order: old 1, 2, 5 → new 0, 1, 2.
        for (new, old) in [(0usize, 1i64), (1, 2), (2, 5)] {
            assert_eq!(
                compacted.get(new, "Store.name").unwrap(),
                CellValue::Text(format!("S{old}"))
            );
            assert_eq!(
                compacted.get(new, "size_sqm").unwrap(),
                CellValue::Integer(old)
            );
        }
        assert_eq!(remap.live_len(), 3);
        assert_eq!(remap.new_id(1), Some(0));
        assert_eq!(remap.new_id(5), Some(2));
        assert_eq!(remap.new_id(0), None, "dead rows have no new id");
        assert_eq!(remap.old_id(2), Some(5));
        assert_eq!(remap.old_id(3), None, "beyond the surviving rows");
        // The dictionary was rebuilt: only live strings remain interned.
        if let Column::Text { dictionary, .. } = compacted.column("Store.name").unwrap() {
            assert_eq!(dictionary.len(), 3);
        } else {
            panic!("expected text column");
        }
        // The source table is untouched.
        assert_eq!(t.len(), 6);
        assert_eq!(t.live_len(), 3);
    }

    #[test]
    fn full_row_read() {
        let mut t = store_table();
        t.push_row(vec![("Store.name", CellValue::from("Downtown"))])
            .unwrap();
        let row = t.row(0);
        assert_eq!(row.len(), 3);
        assert_eq!(row[0].0, "Store.name");
        assert_eq!(row[0].1, CellValue::Text("Downtown".into()));
    }
}
