//! Row-addressable tables built from typed columns.

use crate::column::{Column, ColumnType};
use crate::error::OlapError;
use crate::value::CellValue;
use serde::{Deserialize, Serialize};

/// A named table: an ordered set of typed columns of equal length.
///
/// Dimension tables, layer tables and fact tables are all [`Table`]s; the
/// [`crate::Cube`] adds the star-schema wiring between them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table name.
    pub name: String,
    columns: Vec<(String, Column)>,
    rows: usize,
}

impl Table {
    /// Creates a table from `(column name, type)` pairs.
    pub fn new(name: impl Into<String>, columns: Vec<(String, ColumnType)>) -> Self {
        Table {
            name: name.into(),
            columns: columns
                .into_iter()
                .map(|(n, t)| (n, Column::new(t)))
                .collect(),
            rows: 0,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Returns `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The column names in declaration order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column, OlapError> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .ok_or_else(|| OlapError::UnknownColumn {
                table: self.name.clone(),
                column: name.to_string(),
            })
    }

    /// Appends a row given as `(column name, value)` pairs; missing columns
    /// become null.
    pub fn push_row(&mut self, values: Vec<(&str, CellValue)>) -> Result<usize, OlapError> {
        // Validate the provided names first so a failed push cannot leave
        // ragged columns behind.
        for (name, _) in &values {
            if self.column_index(name).is_none() {
                return Err(OlapError::UnknownColumn {
                    table: self.name.clone(),
                    column: (*name).to_string(),
                });
            }
        }
        for (col_name, column) in &mut self.columns {
            let value = values
                .iter()
                .find(|(n, _)| n == col_name)
                .map(|(_, v)| v.clone())
                .unwrap_or(CellValue::Null);
            column.push(value)?;
        }
        let row = self.rows;
        self.rows += 1;
        Ok(row)
    }

    /// Appends a row given positionally (must cover every column).
    pub fn push_row_positional(&mut self, values: Vec<CellValue>) -> Result<usize, OlapError> {
        if values.len() != self.columns.len() {
            return Err(OlapError::RowShape {
                message: format!(
                    "table '{}' has {} columns but the row has {} values",
                    self.name,
                    self.columns.len(),
                    values.len()
                ),
            });
        }
        for ((_, column), value) in self.columns.iter_mut().zip(values) {
            column.push(value)?;
        }
        let row = self.rows;
        self.rows += 1;
        Ok(row)
    }

    /// Reads a cell by row index and column name.
    pub fn get(&self, row: usize, column: &str) -> Result<CellValue, OlapError> {
        Ok(self.column(column)?.get(row))
    }

    /// Reads an entire row as `(column name, value)` pairs.
    pub fn row(&self, row: usize) -> Vec<(String, CellValue)> {
        self.columns
            .iter()
            .map(|(n, c)| (n.clone(), c.get(row)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_table() -> Table {
        Table::new(
            "Store",
            vec![
                ("Store.name".to_string(), ColumnType::Text),
                ("City.name".to_string(), ColumnType::Text),
                ("size_sqm".to_string(), ColumnType::Integer),
            ],
        )
    }

    #[test]
    fn construction_and_metadata() {
        let t = store_table();
        assert!(t.is_empty());
        assert_eq!(t.num_columns(), 3);
        assert_eq!(
            t.column_names(),
            vec!["Store.name", "City.name", "size_sqm"]
        );
        assert_eq!(t.column_index("City.name"), Some(1));
        assert_eq!(t.column_index("missing"), None);
        assert!(t.column("missing").is_err());
    }

    #[test]
    fn named_row_insertion_fills_missing_with_null() {
        let mut t = store_table();
        let row = t
            .push_row(vec![
                ("Store.name", CellValue::from("Downtown")),
                ("City.name", CellValue::from("Alicante")),
            ])
            .unwrap();
        assert_eq!(row, 0);
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.get(0, "Store.name").unwrap(),
            CellValue::Text("Downtown".into())
        );
        assert_eq!(t.get(0, "size_sqm").unwrap(), CellValue::Null);
    }

    #[test]
    fn unknown_column_in_row_is_rejected_without_corruption() {
        let mut t = store_table();
        let err = t
            .push_row(vec![
                ("Store.name", CellValue::from("X")),
                ("ghost", CellValue::Null),
            ])
            .unwrap_err();
        assert!(matches!(err, OlapError::UnknownColumn { .. }));
        assert!(t.is_empty());
        // The failed insert must not have left a partial row behind.
        assert_eq!(t.column("Store.name").unwrap().len(), 0);
    }

    #[test]
    fn positional_row_insertion() {
        let mut t = store_table();
        t.push_row_positional(vec![
            CellValue::from("Downtown"),
            CellValue::from("Alicante"),
            CellValue::Integer(450),
        ])
        .unwrap();
        assert_eq!(t.get(0, "size_sqm").unwrap(), CellValue::Integer(450));
        let err = t.push_row_positional(vec![CellValue::Null]).unwrap_err();
        assert!(matches!(err, OlapError::RowShape { .. }));
    }

    #[test]
    fn full_row_read() {
        let mut t = store_table();
        t.push_row(vec![("Store.name", CellValue::from("Downtown"))])
            .unwrap();
        let row = t.row(0);
        assert_eq!(row.len(), 3);
        assert_eq!(row[0].0, "Store.name");
        assert_eq!(row[0].1, CellValue::Text("Downtown".into()));
    }
}
