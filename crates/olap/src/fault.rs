//! Deterministic fault injection: a registry of named **failpoints**.
//!
//! A failpoint is a named hook compiled into a code path (the pool's
//! dispatch loop, the executors' scan loops, the ingest worker) that
//! tests can *arm* to misbehave on demand: panic, sleep, or surface an
//! injected error. Armed behaviour is driven by a per-point counter and
//! a process-global seed, so a chaos run that fires "once in N" fires on
//! the *same* invocations every time — failures reproduce.
//!
//! The whole module is gated behind the `failpoints` cargo feature; the
//! [`fail_point!`](crate::fail_point) macro expands to nothing without
//! it, so production builds carry zero cost — not even a branch. Crates
//! that place failpoints must declare their own `failpoints` feature
//! forwarding to `sdwp_olap/failpoints` (the macro's `#[cfg]` is
//! evaluated in the *invoking* crate).
//!
//! The registry is process-global: tests that arm failpoints must
//! serialise on a shared lock (see `tests/chaos_consistency.rs`) and
//! [`disarm_all`] in a drop guard so a failed assertion cannot leak an
//! armed point into the next test.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with the given message (exercises containment paths).
    Panic(String),
    /// Sleep for the given number of milliseconds (exercises deadline
    /// and cancellation paths), then continue normally.
    SleepMs(u64),
    /// Surface the given message to the failpoint site, which maps it
    /// onto its local error type (exercises typed-error paths).
    Error(String),
}

struct PointState {
    action: FailAction,
    /// Fire when `(seed + invocation) % one_in == 0`; `1` = every time.
    one_in: u64,
    /// Remaining fire budget; `None` = unlimited.
    remaining: Option<u64>,
    /// Invocations evaluated since arming.
    invocations: u64,
    /// Times the point actually fired.
    hits: u64,
}

struct Registry {
    points: Mutex<HashMap<String, PointState>>,
    seed: AtomicU64,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        points: Mutex::new(HashMap::new()),
        seed: AtomicU64::new(0),
    })
}

/// Locks the point map, recovering from a panic injected while the lock
/// was held (an armed `Panic` action unwinds through `eval`).
fn points() -> std::sync::MutexGuard<'static, HashMap<String, PointState>> {
    registry()
        .points
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Sets the process-global chaos seed. The seed offsets every point's
/// firing phase, so sweeping it explores different interleavings while
/// each individual run stays reproducible.
pub fn set_seed(seed: u64) {
    registry().seed.store(seed, Ordering::Relaxed);
}

/// Arms `name` with `action`, firing once every `one_in` evaluations
/// (`1` or `0` = every time), at most `limit` times in total (`None` =
/// unlimited). Re-arming resets the point's counters.
pub fn arm(name: &str, action: FailAction, one_in: u64, limit: Option<u64>) {
    points().insert(
        name.to_string(),
        PointState {
            action,
            one_in: one_in.max(1),
            remaining: limit,
            invocations: 0,
            hits: 0,
        },
    );
}

/// Disarms `name`; later evaluations are free no-ops again.
pub fn disarm(name: &str) {
    points().remove(name);
}

/// Disarms every failpoint (test teardown).
pub fn disarm_all() {
    points().clear();
}

/// Times `name` has fired since it was last armed (`0` when not armed).
pub fn hits(name: &str) -> u64 {
    points().get(name).map_or(0, |p| p.hits)
}

/// Evaluates the failpoint `name`: a no-op returning `None` unless the
/// point is armed and due to fire. A firing `Panic` action panics here;
/// a `SleepMs` sleeps and returns `None`; an `Error` returns its
/// message for the site to map onto a local error type. Called through
/// [`fail_point!`](crate::fail_point), never directly.
pub fn eval(name: &str) -> Option<String> {
    let fired = {
        let mut points = points();
        let point = points.get_mut(name)?;
        let invocation = point.invocations;
        point.invocations += 1;
        if point.remaining == Some(0) {
            return None;
        }
        let seed = registry().seed.load(Ordering::Relaxed);
        if (seed.wrapping_add(invocation)) % point.one_in != 0 {
            return None;
        }
        point.hits += 1;
        if let Some(remaining) = &mut point.remaining {
            *remaining -= 1;
        }
        point.action.clone()
    };
    match fired {
        FailAction::Panic(message) => panic!("failpoint {name}: {message}"),
        FailAction::SleepMs(millis) => {
            std::thread::sleep(Duration::from_millis(millis));
            None
        }
        FailAction::Error(message) => Some(message),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The registry is process-global; every test in this module takes
    /// this lock and disarms on exit so they compose in one process.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            disarm_all();
        }
    }

    #[test]
    fn unarmed_points_are_no_ops() {
        let _serial = lock();
        let _guard = Disarm;
        assert_eq!(eval("never.armed"), None);
        assert_eq!(hits("never.armed"), 0);
    }

    #[test]
    fn error_actions_surface_their_message() {
        let _serial = lock();
        let _guard = Disarm;
        arm("t.error", FailAction::Error("injected".into()), 1, None);
        assert_eq!(eval("t.error"), Some("injected".into()));
        assert_eq!(hits("t.error"), 1);
        disarm("t.error");
        assert_eq!(eval("t.error"), None);
    }

    #[test]
    fn one_in_n_fires_deterministically_under_a_seed() {
        let _serial = lock();
        let _guard = Disarm;
        set_seed(0);
        arm("t.nth", FailAction::Error("tick".into()), 3, None);
        let pattern: Vec<bool> = (0..9).map(|_| eval("t.nth").is_some()).collect();
        // Re-arming resets the invocation counter: same seed, same run.
        arm("t.nth", FailAction::Error("tick".into()), 3, None);
        let again: Vec<bool> = (0..9).map(|_| eval("t.nth").is_some()).collect();
        assert_eq!(pattern, again);
        assert_eq!(pattern.iter().filter(|fired| **fired).count(), 3);
        // A different seed shifts the phase but keeps the rate.
        set_seed(1);
        arm("t.nth", FailAction::Error("tick".into()), 3, None);
        let shifted: Vec<bool> = (0..9).map(|_| eval("t.nth").is_some()).collect();
        assert_ne!(pattern, shifted);
        assert_eq!(shifted.iter().filter(|fired| **fired).count(), 3);
        set_seed(0);
    }

    #[test]
    fn fire_limit_caps_the_budget() {
        let _serial = lock();
        let _guard = Disarm;
        arm("t.limited", FailAction::Error("once".into()), 1, Some(2));
        assert!(eval("t.limited").is_some());
        assert!(eval("t.limited").is_some());
        assert_eq!(eval("t.limited"), None);
        assert_eq!(hits("t.limited"), 2);
    }

    #[test]
    fn panic_actions_panic_with_the_point_name() {
        let _serial = lock();
        let _guard = Disarm;
        arm("t.panic", FailAction::Panic("boom".into()), 1, None);
        let outcome = catch_unwind(AssertUnwindSafe(|| eval("t.panic")));
        let payload = outcome.expect_err("armed panic fires");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("t.panic") && message.contains("boom"));
        // The registry survives the unwind (no poisoned lock).
        assert_eq!(hits("t.panic"), 1);
    }
}
