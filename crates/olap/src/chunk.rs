//! Fixed-size copy-on-write column chunks.
//!
//! Storage is Arrow-style: a column is a sequence of immutable
//! fixed-capacity chunks shared via [`Arc`]. Cloning a column — which is
//! what publishing a cube snapshot does — bumps refcounts instead of
//! copying cell data; mutating a row first copies the one chunk it lands
//! in ([`Arc::make_mut`]), because the published snapshot still holds a
//! reference to the old chunk. An ingest epoch's publication cost is
//! therefore proportional to the *delta* (the dirty chunks), not to the
//! warehouse.
//!
//! Primitive chunks keep values and validity separately (values at null
//! positions hold `T::default()`), so an all-valid chunk exposes a bare
//! `&[T]` slice the vectorised aggregation kernels can stream through
//! without per-row `Option` checks.

use sdwp_geometry::Geometry;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::Arc;

/// Default number of rows per chunk. Matches the executor's default
/// morsel size ([`crate::engine::DEFAULT_MORSEL_ROWS`]), so with default
/// configuration one morsel reads exactly one chunk per column.
pub const DEFAULT_CHUNK_ROWS: usize = 1024;

/// One fixed-capacity chunk of a primitive column.
///
/// Invariants: `validity` is `None` exactly when every row is valid
/// (`null_count == 0`), and every null position holds `T::default()` —
/// so structural equality coincides with logical equality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrimitiveChunk<T> {
    values: Vec<T>,
    /// Per-row validity (`true` = non-null); `None` while all rows are
    /// valid — the vectorisable common case.
    validity: Option<Vec<bool>>,
    null_count: usize,
}

impl<T: Copy + Default + PartialEq> PrimitiveChunk<T> {
    fn with_capacity(capacity: usize) -> Self {
        PrimitiveChunk {
            values: Vec::with_capacity(capacity),
            validity: None,
            null_count: 0,
        }
    }

    /// Number of rows in the chunk.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// Returns `true` when every row is valid — the kernels' fast path.
    pub fn all_valid(&self) -> bool {
        self.null_count == 0
    }

    /// The raw value slice (null positions hold `T::default()`).
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// The validity mask, when any row is null.
    pub fn validity(&self) -> Option<&[bool]> {
        self.validity.as_deref()
    }

    fn push(&mut self, value: Option<T>) {
        match value {
            Some(v) => {
                self.values.push(v);
                if let Some(validity) = &mut self.validity {
                    validity.push(true);
                }
            }
            None => {
                if self.validity.is_none() {
                    self.validity = Some(vec![true; self.values.len()]);
                }
                self.values.push(T::default());
                self.validity
                    .as_mut()
                    .expect("validity materialised above")
                    .push(false);
                self.null_count += 1;
            }
        }
    }

    fn set(&mut self, index: usize, value: Option<T>) {
        let was_valid = self.validity.as_ref().map(|v| v[index]).unwrap_or(true);
        match value {
            Some(v) => {
                self.values[index] = v;
                if !was_valid {
                    self.validity.as_mut().expect("null implies mask")[index] = true;
                    self.null_count -= 1;
                    if self.null_count == 0 {
                        // Restore the all-valid normal form so equal
                        // logical content stays structurally equal.
                        self.validity = None;
                    }
                }
            }
            None => {
                self.values[index] = T::default();
                if was_valid {
                    if self.validity.is_none() {
                        self.validity = Some(vec![true; self.values.len()]);
                    }
                    self.validity.as_mut().expect("materialised above")[index] = false;
                    self.null_count += 1;
                }
            }
        }
    }

    fn get(&self, index: usize) -> Option<T> {
        let value = self.values.get(index).copied()?;
        match &self.validity {
            Some(mask) if !mask[index] => None,
            _ => Some(value),
        }
    }
}

/// A chunked primitive column: `Arc`-shared fixed-size chunks with
/// copy-on-write mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrimitiveColumn<T> {
    chunks: Vec<Arc<PrimitiveChunk<T>>>,
    chunk_rows: usize,
    len: usize,
}

impl<T: Copy + Default + PartialEq> PrimitiveColumn<T> {
    /// Creates an empty column with the given chunk capacity (≥ 1).
    pub fn new(chunk_rows: usize) -> Self {
        PrimitiveColumn {
            chunks: Vec::new(),
            chunk_rows: chunk_rows.max(1),
            len: 0,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rows per chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// The column's chunks, for sharing diagnostics and kernels.
    pub fn chunks(&self) -> &[Arc<PrimitiveChunk<T>>] {
        &self.chunks
    }

    /// Appends a value, copying only the tail chunk when it is shared.
    pub fn push(&mut self, value: Option<T>) {
        if self.len == self.chunks.len() * self.chunk_rows {
            self.chunks
                .push(Arc::new(PrimitiveChunk::with_capacity(self.chunk_rows)));
        }
        let chunk = self.chunks.last_mut().expect("tail chunk exists");
        Arc::make_mut(chunk).push(value);
        self.len += 1;
    }

    /// Overwrites a row in place, copying only the chunk it lands in.
    /// Panics on an out-of-range row (callers bound-check).
    pub fn set(&mut self, row: usize, value: Option<T>) {
        assert!(row < self.len, "row {row} out of range ({} rows)", self.len);
        let chunk = &mut self.chunks[row / self.chunk_rows];
        Arc::make_mut(chunk).set(row % self.chunk_rows, value);
    }

    /// Reads a row; `None` when null or out of range.
    pub fn get(&self, row: usize) -> Option<T> {
        if row >= self.len {
            return None;
        }
        self.chunks[row / self.chunk_rows].get(row % self.chunk_rows)
    }

    /// Iterates the `(chunk, local row range)` pairs covering a global
    /// row range (clamped to the column's length). The per-chunk unit of
    /// the vectorised kernels; ranges that straddle chunk boundaries
    /// yield one pair per chunk touched.
    pub fn chunks_in(&self, rows: Range<usize>) -> ChunkSlices<'_, T> {
        ChunkSlices {
            column: self,
            next: rows.start.min(self.len),
            end: rows.end.min(self.len),
        }
    }
}

/// Iterator over the chunk sub-slices covering a row range.
pub struct ChunkSlices<'a, T> {
    column: &'a PrimitiveColumn<T>,
    next: usize,
    end: usize,
}

impl<'a, T> Iterator for ChunkSlices<'a, T> {
    type Item = (&'a PrimitiveChunk<T>, Range<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.end {
            return None;
        }
        let chunk_rows = self.column.chunk_rows;
        let chunk_index = self.next / chunk_rows;
        let chunk_start = chunk_index * chunk_rows;
        let lo = self.next - chunk_start;
        let hi = (self.end - chunk_start).min(chunk_rows);
        self.next = chunk_start + hi;
        Some((&self.column.chunks[chunk_index], lo..hi))
    }
}

/// One fixed-capacity chunk of a [`LivenessMap`]: a dead-row bitmap plus
/// its popcount. A chunk with no words allocated is entirely live — the
/// normal form for ranges no retraction ever touched, so a map whose
/// tombstones cluster at one end shares (and compares) cheaply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LivenessChunk {
    /// Dead-row bitmap, one bit per row (bit set = tombstoned). Empty
    /// while every row of the chunk is live.
    words: Vec<u64>,
    /// Number of set bits.
    dead: usize,
}

impl LivenessChunk {
    fn all_live() -> Self {
        LivenessChunk {
            words: Vec::new(),
            dead: 0,
        }
    }

    fn is_dead(&self, local: usize) -> bool {
        self.words
            .get(local / 64)
            .map(|w| w & (1 << (local % 64)) != 0)
            .unwrap_or(false)
    }

    /// Sets the dead bit; returns `true` when the row was newly dead.
    fn retract(&mut self, local: usize, chunk_rows: usize) -> bool {
        if self.words.is_empty() {
            self.words = vec![0; chunk_rows.div_ceil(64)];
        }
        let word = &mut self.words[local / 64];
        let mask = 1 << (local % 64);
        if *word & mask != 0 {
            return false;
        }
        *word |= mask;
        self.dead += 1;
        true
    }
}

/// The tombstone set of a [`crate::Table`], as a chunked copy-on-write
/// bitmap: fixed-size [`Arc`]-shared chunks of dead-row bits, aligned
/// with the column chunks.
///
/// Publishing a snapshot clones the table, so the tombstone set is cloned
/// once per epoch; as a `BTreeSet<usize>` that clone cost O(tombstones)
/// on every publication even when the epoch retracted nothing. Here a
/// clone is a refcount bump per chunk and a retraction copies only the
/// one chunk it lands in — the same O(delta) publication contract the
/// value columns already have.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LivenessMap {
    chunks: Vec<Arc<LivenessChunk>>,
    chunk_rows: usize,
    dead: usize,
}

impl LivenessMap {
    /// Creates an all-live map with the given chunk capacity (≥ 1).
    pub fn new(chunk_rows: usize) -> Self {
        LivenessMap {
            chunks: Vec::new(),
            chunk_rows: chunk_rows.max(1),
            dead: 0,
        }
    }

    /// Number of tombstoned rows.
    pub fn dead_count(&self) -> usize {
        self.dead
    }

    /// Returns `true` when `row` has been tombstoned. Rows beyond every
    /// chunk are live (callers bound-check against their row count).
    pub fn is_dead(&self, row: usize) -> bool {
        self.chunks
            .get(row / self.chunk_rows)
            .map(|chunk| chunk.is_dead(row % self.chunk_rows))
            .unwrap_or(false)
    }

    /// Tombstones a row, copying only the chunk it lands in; idempotent.
    pub fn retract(&mut self, row: usize) {
        let chunk_index = row / self.chunk_rows;
        while self.chunks.len() <= chunk_index {
            self.chunks.push(Arc::new(LivenessChunk::all_live()));
        }
        if Arc::make_mut(&mut self.chunks[chunk_index])
            .retract(row % self.chunk_rows, self.chunk_rows)
        {
            self.dead += 1;
        }
    }

    /// The maximal runs of live rows within `rows` (the caller clamps the
    /// range to its row count): contiguous index ranges containing no
    /// tombstone. Chunks with no dead rows extend the current run without
    /// a per-row bit test.
    pub fn live_runs(&self, rows: Range<usize>) -> Vec<Range<usize>> {
        let mut runs = Vec::new();
        let mut run_start: Option<usize> = None;
        let mut row = rows.start;
        while row < rows.end {
            let chunk_index = row / self.chunk_rows;
            let chunk_end = ((chunk_index + 1) * self.chunk_rows).min(rows.end);
            match self.chunks.get(chunk_index) {
                // Fully live chunk (or past the last retraction): the run
                // continues across the whole chunk.
                None => {
                    run_start.get_or_insert(row);
                    row = chunk_end;
                }
                Some(chunk) if chunk.dead == 0 => {
                    run_start.get_or_insert(row);
                    row = chunk_end;
                }
                Some(chunk) => {
                    for r in row..chunk_end {
                        if chunk.is_dead(r % self.chunk_rows) {
                            if let Some(start) = run_start.take() {
                                runs.push(start..r);
                            }
                        } else {
                            run_start.get_or_insert(r);
                        }
                    }
                    row = chunk_end;
                }
            }
        }
        if let Some(start) = run_start {
            if start < rows.end {
                runs.push(start..rows.end);
            }
        }
        runs
    }
}

/// A chunked geometry column. Geometries are heap values, so chunks store
/// them as `Option`s directly (no validity split) — the copy-on-write
/// sharing is what matters here, not slice kernels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeometryColumn {
    chunks: Vec<Arc<Vec<Option<Geometry>>>>,
    chunk_rows: usize,
    len: usize,
}

impl GeometryColumn {
    /// Creates an empty geometry column with the given chunk capacity.
    pub fn new(chunk_rows: usize) -> Self {
        GeometryColumn {
            chunks: Vec::new(),
            chunk_rows: chunk_rows.max(1),
            len: 0,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a geometry (or null).
    pub fn push(&mut self, value: Option<Geometry>) {
        if self.len == self.chunks.len() * self.chunk_rows {
            self.chunks
                .push(Arc::new(Vec::with_capacity(self.chunk_rows)));
        }
        let chunk = self.chunks.last_mut().expect("tail chunk exists");
        Arc::make_mut(chunk).push(value);
        self.len += 1;
    }

    /// Overwrites a row in place (copy-on-write). Panics out of range.
    pub fn set(&mut self, row: usize, value: Option<Geometry>) {
        assert!(row < self.len, "row {row} out of range ({} rows)", self.len);
        let chunk = &mut self.chunks[row / self.chunk_rows];
        Arc::make_mut(chunk)[row % self.chunk_rows] = value;
    }

    /// Borrows a row's geometry; `None` when null or out of range.
    pub fn get(&self, row: usize) -> Option<&Geometry> {
        if row >= self.len {
            return None;
        }
        self.chunks[row / self.chunk_rows][row % self.chunk_rows].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_and_validity_normal_form() {
        let mut c = PrimitiveColumn::<i64>::new(4);
        for i in 0..6 {
            c.push(Some(i));
        }
        c.push(None);
        assert_eq!(c.len(), 7);
        assert_eq!(c.get(3), Some(3));
        assert_eq!(c.get(6), None);
        assert_eq!(c.get(7), None);
        assert_eq!(c.chunks().len(), 2);
        assert!(c.chunks()[0].all_valid());
        assert!(!c.chunks()[1].all_valid());
        // Filling the null back in restores the all-valid normal form.
        c.set(6, Some(42));
        assert!(c.chunks()[1].all_valid());
        assert!(c.chunks()[1].validity().is_none());
        c.set(0, None);
        assert_eq!(c.get(0), None);
        assert_eq!(c.chunks()[0].null_count(), 1);
    }

    #[test]
    fn cloning_shares_chunks_and_mutation_copies_one() {
        let mut c = PrimitiveColumn::<f64>::new(2);
        for i in 0..6 {
            c.push(Some(i as f64));
        }
        let snapshot = c.clone();
        assert!(Arc::ptr_eq(&c.chunks()[0], &snapshot.chunks()[0]));
        c.set(5, Some(99.0));
        // Only the written chunk diverged.
        assert!(Arc::ptr_eq(&c.chunks()[0], &snapshot.chunks()[0]));
        assert!(Arc::ptr_eq(&c.chunks()[1], &snapshot.chunks()[1]));
        assert!(!Arc::ptr_eq(&c.chunks()[2], &snapshot.chunks()[2]));
        assert_eq!(snapshot.get(5), Some(5.0));
        assert_eq!(c.get(5), Some(99.0));
        // Appends only touch the tail chunk.
        let snapshot2 = c.clone();
        c.push(Some(7.0));
        assert!(Arc::ptr_eq(&c.chunks()[1], &snapshot2.chunks()[1]));
        assert_eq!(snapshot2.len(), 6);
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn chunk_slices_cover_straddling_ranges() {
        let mut c = PrimitiveColumn::<i64>::new(3);
        for i in 0..10 {
            c.push(Some(i));
        }
        // Range 2..8 straddles chunks [0..3), [3..6), [6..9).
        let parts: Vec<(usize, Range<usize>)> = c
            .chunks_in(2..8)
            .map(|(chunk, r)| (chunk.len(), r))
            .collect();
        assert_eq!(
            parts,
            vec![(3, 2..3), (3, 0..3), (3, 0..2)],
            "per-chunk sub-ranges"
        );
        // Clamped to the column length; empty when out of range.
        assert_eq!(c.chunks_in(9..99).count(), 1);
        assert_eq!(c.chunks_in(20..30).count(), 0);
        assert_eq!(c.chunks_in(5..5).count(), 0);
    }

    #[test]
    fn liveness_map_tracks_tombstones() {
        let mut map = LivenessMap::new(4);
        assert_eq!(map.dead_count(), 0);
        assert!(!map.is_dead(0));
        assert!(!map.is_dead(999));
        map.retract(2);
        map.retract(2); // idempotent
        map.retract(9); // skips a fully-live chunk
        assert_eq!(map.dead_count(), 2);
        assert!(map.is_dead(2) && map.is_dead(9));
        assert!(!map.is_dead(1) && !map.is_dead(8));
        assert_eq!(map.live_runs(0..12), vec![0..2, 3..9, 10..12]);
        assert_eq!(map.live_runs(2..3), Vec::<Range<usize>>::new());
        assert_eq!(map.live_runs(3..3), Vec::<Range<usize>>::new());
        // Untouched tail chunks are all-live without allocated words.
        assert_eq!(map.live_runs(10..99), vec![10..99]);
    }

    #[test]
    fn liveness_map_clone_is_copy_on_write() {
        let mut map = LivenessMap::new(2);
        map.retract(0);
        map.retract(5);
        let snapshot = map.clone();
        assert!(Arc::ptr_eq(&map.chunks[0], &snapshot.chunks[0]));
        map.retract(1);
        // Only the written chunk diverged; the snapshot is unaffected.
        assert!(!Arc::ptr_eq(&map.chunks[0], &snapshot.chunks[0]));
        assert!(Arc::ptr_eq(&map.chunks[2], &snapshot.chunks[2]));
        assert!(!snapshot.is_dead(1));
        assert!(map.is_dead(1));
        assert_eq!(snapshot.dead_count(), 2);
        assert_eq!(map.dead_count(), 3);
    }

    #[test]
    fn geometry_column_round_trip() {
        use sdwp_geometry::Point;
        let mut g = GeometryColumn::new(2);
        g.push(Some(Point::new(1.0, 2.0).into()));
        g.push(None);
        g.push(Some(Point::new(3.0, 4.0).into()));
        assert_eq!(g.len(), 3);
        assert!(g.get(0).is_some());
        assert!(g.get(1).is_none());
        let snapshot = g.clone();
        g.set(2, None);
        assert!(snapshot.get(2).is_some());
        assert!(g.get(2).is_none());
    }
}
