//! A snapshot-keyed query-result cache.
//!
//! Repeated OLAP queries are common in BI sessions (dashboards refresh,
//! several users share a role's view), so the serving layer can reuse a
//! result as long as nothing it depends on changed. An entry is keyed by
//! the *cube snapshot generation* (bumped every time the personalization
//! engine publishes a new cube), the *canonical form of the query* and the
//! *instance view* it ran through — so a rule firing that publishes a new
//! cube automatically misses every stale entry, and two sessions with
//! different personalized views can never observe each other's results.

use crate::query::{Query, QueryResult};
use crate::view::InstanceView;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// The identity of one cached result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Generation of the cube snapshot the result was computed from.
    pub generation: u64,
    /// Canonical text of the query (see [`Query::canonical_key`]).
    pub query: String,
    /// The exact instance view the query ran through. Compared and hashed
    /// by content (so distinct views can never collide into one entry) but
    /// held behind an `Arc`: sessions already keep their view in an `Arc`,
    /// so building a key is a refcount bump, not a deep clone of the
    /// selection sets.
    pub view: Arc<InstanceView>,
}

impl CacheKey {
    /// Builds the key of a `(snapshot, query, view)` execution.
    pub fn new(generation: u64, query: &Query, view: Arc<InstanceView>) -> Self {
        CacheKey {
            generation,
            query: query.canonical_key(),
            view,
        }
    }
}

/// Counters describing a cache's behaviour so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to execute the query.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Entries dropped because their snapshot generation became stale.
    pub invalidations: u64,
    /// Entries dropped by capacity eviction.
    pub evictions: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<CacheKey, Arc<QueryResult>>,
    /// Insertion order, for FIFO capacity eviction.
    order: VecDeque<CacheKey>,
    /// Lowest generation still admissible: a query that was in flight
    /// across a publish must not park its stale result in the cache.
    generation_floor: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
    evictions: u64,
}

/// A bounded, thread-safe result cache. `capacity == 0` disables it: every
/// lookup misses and nothing is stored.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl QueryCache {
    /// Creates a cache holding up to `capacity` results.
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            capacity,
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// Creates a disabled cache (every lookup misses).
    pub fn disabled() -> Self {
        QueryCache::new(0)
    }

    /// Whether the cache stores anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Looks a result up, counting the hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<QueryResult>> {
        let mut inner = self.inner.lock().expect("query cache poisoned");
        match inner.map.get(key).cloned() {
            Some(result) => {
                inner.hits += 1;
                Some(result)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores a result, evicting the oldest entry when full. Results whose
    /// generation fell below the invalidation floor (the query was in
    /// flight while a new cube was published) are dropped: no future
    /// lookup could ever read them, so admitting them would only burn
    /// capacity.
    pub fn insert(&self, key: CacheKey, result: Arc<QueryResult>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("query cache poisoned");
        if key.generation < inner.generation_floor {
            return;
        }
        if inner.map.insert(key.clone(), result).is_none() {
            inner.order.push_back(key);
            while inner.map.len() > self.capacity {
                if let Some(oldest) = inner.order.pop_front() {
                    if inner.map.remove(&oldest).is_some() {
                        inner.evictions += 1;
                    }
                } else {
                    break;
                }
            }
        }
    }

    /// Drops every entry computed from a snapshot generation older than
    /// `generation`. Called when the personalization engine publishes a
    /// new cube, so stale results are reclaimed eagerly instead of
    /// lingering until capacity eviction.
    pub fn invalidate_generations_below(&self, generation: u64) {
        let mut inner = self.inner.lock().expect("query cache poisoned");
        inner.generation_floor = inner.generation_floor.max(generation);
        let before = inner.map.len();
        inner.map.retain(|key, _| key.generation >= generation);
        let dropped = (before - inner.map.len()) as u64;
        inner.invalidations += dropped;
        if dropped > 0 {
            inner.order.retain(|key| key.generation >= generation);
        }
    }

    /// Removes every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("query cache poisoned");
        inner.map.clear();
        inner.order.clear();
    }

    /// A snapshot of the cache's counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("query cache poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
            invalidations: inner.invalidations,
            evictions: inner.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ResultRow;
    use crate::value::CellValue;

    fn result(tag: f64) -> Arc<QueryResult> {
        Arc::new(QueryResult {
            key_names: vec![],
            value_names: vec!["sum(UnitSales)".into()],
            rows: vec![ResultRow {
                keys: vec![],
                values: vec![CellValue::Float(tag)],
            }],
            facts_scanned: 1,
            facts_matched: 1,
        })
    }

    fn key(generation: u64, fact: &str, view: &InstanceView) -> CacheKey {
        CacheKey::new(
            generation,
            &Query::over(fact).measure("UnitSales"),
            Arc::new(view.clone()),
        )
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = QueryCache::new(4);
        let view = InstanceView::unrestricted();
        let k = key(1, "Sales", &view);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), result(1.0));
        assert_eq!(
            cache.get(&k).unwrap().rows[0].values[0],
            CellValue::Float(1.0)
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn different_views_never_collide() {
        let cache = QueryCache::new(4);
        let mut a = InstanceView::unrestricted();
        a.select_dimension_members("Store", vec![0]);
        let mut b = InstanceView::unrestricted();
        b.select_dimension_members("Store", vec![1]);
        cache.insert(key(1, "Sales", &a), result(1.0));
        assert!(cache.get(&key(1, "Sales", &b)).is_none());
        assert!(cache.get(&key(1, "Sales", &a)).is_some());
    }

    #[test]
    fn generation_bump_invalidates_stale_entries() {
        let cache = QueryCache::new(8);
        let view = InstanceView::unrestricted();
        cache.insert(key(1, "Sales", &view), result(1.0));
        cache.insert(key(2, "Sales", &view), result(2.0));
        cache.invalidate_generations_below(2);
        assert!(cache.get(&key(1, "Sales", &view)).is_none());
        assert!(cache.get(&key(2, "Sales", &view)).is_some());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn capacity_eviction_is_fifo() {
        let cache = QueryCache::new(2);
        let view = InstanceView::unrestricted();
        cache.insert(key(1, "A", &view), result(1.0));
        cache.insert(key(1, "B", &view), result(2.0));
        cache.insert(key(1, "C", &view), result(3.0));
        assert!(cache.get(&key(1, "A", &view)).is_none());
        assert!(cache.get(&key(1, "B", &view)).is_some());
        assert!(cache.get(&key(1, "C", &view)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn stale_in_flight_results_are_not_admitted() {
        let cache = QueryCache::new(8);
        let view = InstanceView::unrestricted();
        // A publish raises the floor to generation 2 …
        cache.invalidate_generations_below(2);
        // … so a result computed from generation 1 (a query that was in
        // flight across the publish) must be refused.
        cache.insert(key(1, "Sales", &view), result(1.0));
        assert_eq!(cache.stats().entries, 0);
        cache.insert(key(2, "Sales", &view), result(2.0));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let cache = QueryCache::disabled();
        assert!(!cache.is_enabled());
        let view = InstanceView::unrestricted();
        let k = key(1, "Sales", &view);
        cache.insert(k.clone(), result(1.0));
        assert!(cache.get(&k).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = QueryCache::new(4);
        let view = InstanceView::unrestricted();
        cache.insert(key(1, "Sales", &view), result(1.0));
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }
}
