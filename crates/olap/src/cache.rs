//! A snapshot-keyed query-result cache.
//!
//! Repeated OLAP queries are common in BI sessions (dashboards refresh,
//! several users share a role's view), so the serving layer can reuse a
//! result as long as nothing it depends on changed. An entry is keyed by
//! the *cube snapshot generation* (bumped every time the personalization
//! engine publishes a new cube), the *canonical form of the query* and the
//! *instance view* it ran through — so a publish automatically misses every
//! stale entry, and two sessions with different personalized views can
//! never observe each other's results.
//!
//! Capacity eviction is LRU: every hit refreshes an entry's recency, and
//! the least-recently-used entry is dropped when the cache overflows.
//!
//! Invalidation is *scoped* where the publisher can prove the scope: a
//! snapshot publish that only changed some fact tables (an ingest epoch)
//! calls [`QueryCache::publish`] with the changed fact names — entries over
//! those facts are dropped, while entries over untouched facts are re-keyed
//! to the new generation and keep hitting. Publishes whose effect cannot be
//! scoped (schema personalization) use the all-or-nothing
//! [`QueryCache::invalidate_generations_below`].

use crate::query::{Query, QueryResult};
use crate::view::InstanceView;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

/// The identity of one cached result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Generation of the cube snapshot the result was computed from.
    pub generation: u64,
    /// The fact the query aggregates — the unit of scoped invalidation: an
    /// ingest epoch drops exactly the entries whose fact it changed.
    pub fact: String,
    /// Canonical text of the query (see [`Query::canonical_key`]).
    pub query: String,
    /// The exact instance view the query ran through. Compared and hashed
    /// by content (so distinct views can never collide into one entry) but
    /// held behind an `Arc`: sessions already keep their view in an `Arc`,
    /// so building a key is a refcount bump, not a deep clone of the
    /// selection sets.
    pub view: Arc<InstanceView>,
}

impl CacheKey {
    /// Builds the key of a `(snapshot, query, view)` execution.
    pub fn new(generation: u64, query: &Query, view: Arc<InstanceView>) -> Self {
        CacheKey {
            generation,
            fact: query.fact.clone(),
            query: query.canonical_key(),
            view,
        }
    }
}

/// Counters describing a cache's behaviour so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to execute the query.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Entries dropped because their snapshot generation became stale.
    pub invalidations: u64,
    /// Entries dropped by capacity (LRU) eviction.
    pub evictions: u64,
}

#[derive(Debug)]
struct CacheEntry {
    result: Arc<QueryResult>,
    /// Recency tick of the last hit (or the insert); the minimum is the
    /// LRU victim.
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<CacheKey, CacheEntry>,
    /// Recency index: `last_used` tick → key. Ticks are unique, so this
    /// is a total order; the first entry is the LRU victim. Kept in
    /// lock-step with `map` (every `map` mutation updates it), so both
    /// hits and evictions stay O(log n) instead of O(capacity) scans
    /// under the mutex the query hot path shares.
    recency: BTreeMap<u64, CacheKey>,
    /// Monotonic recency clock; bumped on every touch.
    tick: u64,
    /// Lowest generation still admissible: a query that was in flight
    /// across a publish must not park its stale result in the cache.
    generation_floor: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
    evictions: u64,
}

impl CacheInner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evicts least-recently-used entries until `len <= capacity`.
    fn evict_to(&mut self, capacity: usize) {
        while self.map.len() > capacity {
            match self.recency.pop_first() {
                Some((_, victim)) => {
                    // Count (and thereby require) only real removals: a
                    // recency tick with no map entry would otherwise both
                    // inflate the counter and evict an extra live entry —
                    // this makes any index divergence self-healing.
                    if self.map.remove(&victim).is_some() {
                        self.evictions += 1;
                    }
                }
                None => break,
            }
        }
    }
}

/// A bounded, thread-safe result cache. `capacity == 0` disables it: every
/// lookup misses and nothing is stored.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl QueryCache {
    /// Creates a cache holding up to `capacity` results.
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            capacity,
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// Creates a disabled cache (every lookup misses).
    pub fn disabled() -> Self {
        QueryCache::new(0)
    }

    /// Whether the cache stores anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Looks a result up, counting the hit or miss. A hit refreshes the
    /// entry's LRU recency.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<QueryResult>> {
        let mut inner = self.inner.lock().expect("query cache poisoned");
        let tick = inner.next_tick();
        match inner.map.get_mut(key) {
            Some(entry) => {
                let previous = entry.last_used;
                entry.last_used = tick;
                let result = Arc::clone(&entry.result);
                // Move the already-stored key to its new recency slot —
                // the hit path allocates nothing under the shared mutex.
                if let Some(stored) = inner.recency.remove(&previous) {
                    inner.recency.insert(tick, stored);
                }
                inner.hits += 1;
                Some(result)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Looks up a whole batch of keys under one lock acquisition,
    /// counting one hit or miss per key. Hits refresh recency exactly as
    /// [`QueryCache::get`] would; the returned vector is positional
    /// (`result[i]` answers `keys[i]`), so the batch executor can scan
    /// only the `None` slots. Duplicate keys in one batch all hit once
    /// the first occurrence would.
    pub fn get_batch(&self, keys: &[CacheKey]) -> Vec<Option<Arc<QueryResult>>> {
        let mut inner = self.inner.lock().expect("query cache poisoned");
        keys.iter()
            .map(|key| {
                let tick = inner.next_tick();
                match inner.map.get_mut(key) {
                    Some(entry) => {
                        let previous = entry.last_used;
                        entry.last_used = tick;
                        let result = Arc::clone(&entry.result);
                        if let Some(stored) = inner.recency.remove(&previous) {
                            inner.recency.insert(tick, stored);
                        }
                        inner.hits += 1;
                        Some(result)
                    }
                    None => {
                        inner.misses += 1;
                        None
                    }
                }
            })
            .collect()
    }

    /// Stores a result, evicting the least-recently-used entry when full.
    /// Results whose generation fell below the invalidation floor (the
    /// query was in flight while a new cube was published) are dropped: no
    /// future lookup could ever read them, so admitting them would only
    /// burn capacity.
    pub fn insert(&self, key: CacheKey, result: Arc<QueryResult>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("query cache poisoned");
        if key.generation < inner.generation_floor {
            return;
        }
        let tick = inner.next_tick();
        if let Some(previous) = inner.map.insert(
            key.clone(),
            CacheEntry {
                result,
                last_used: tick,
            },
        ) {
            inner.recency.remove(&previous.last_used);
        }
        inner.recency.insert(tick, key);
        let capacity = self.capacity;
        inner.evict_to(capacity);
    }

    /// Scoped invalidation for a snapshot publish whose only difference
    /// from the previous snapshot is the content of `changed_facts`' fact
    /// tables (an ingest epoch: appends, cell upserts, retractions —
    /// dimension tables and the schema untouched). Entries over a changed
    /// fact are dropped; entries over untouched facts are still correct,
    /// so they are re-keyed to `generation` and keep hitting. An empty
    /// `changed_facts` set leaves every entry live.
    ///
    /// The caller owns that proof — publishes with unscopable effects
    /// (schema personalization) must use
    /// [`QueryCache::invalidate_generations_below`] instead.
    pub fn publish(&self, generation: u64, changed_facts: &BTreeSet<String>) {
        let mut inner = self.inner.lock().expect("query cache poisoned");
        inner.generation_floor = inner.generation_floor.max(generation);
        // Single-pass rebuild: no intermediate key Vec, no per-key double
        // lookups — the mutex is shared with the query hot path, so the
        // sweep must stay as short as possible.
        let old_map = std::mem::take(&mut inner.map);
        inner.map.reserve(old_map.len());
        for (mut key, entry) in old_map {
            if key.generation < generation {
                if changed_facts.contains(&key.fact) {
                    inner.recency.remove(&entry.last_used);
                    inner.invalidations += 1;
                    continue;
                }
                // Still valid against the new snapshot: migrate in place,
                // preserving recency. The recency index already holds a
                // copy of this key at `last_used`; bump its generation in
                // place rather than cloning a fresh one.
                key.generation = generation;
                if let Some(stored) = inner.recency.get_mut(&entry.last_used) {
                    stored.generation = generation;
                }
            }
            // A reader racing this publish may have inserted the same
            // query at the new generation already; dropping the
            // overwritten entry must also drop its recency tick, or the
            // index leaks a dangling tick that later mis-targets LRU
            // eviction.
            if let Some(overwritten) = inner.map.insert(key, entry) {
                inner.recency.remove(&overwritten.last_used);
            }
        }
    }

    /// Drops every entry computed from a snapshot generation older than
    /// `generation`. Called for publishes whose effect on existing results
    /// cannot be scoped (rule-driven schema personalization), so stale
    /// results are reclaimed eagerly instead of lingering until capacity
    /// eviction.
    pub fn invalidate_generations_below(&self, generation: u64) {
        let mut inner = self.inner.lock().expect("query cache poisoned");
        inner.generation_floor = inner.generation_floor.max(generation);
        // Single pass: collect only the (cheap) recency ticks of dropped
        // entries, never cloning keys.
        let mut dropped_ticks = Vec::new();
        inner.map.retain(|key, entry| {
            if key.generation >= generation {
                true
            } else {
                dropped_ticks.push(entry.last_used);
                false
            }
        });
        for tick in dropped_ticks {
            inner.recency.remove(&tick);
            inner.invalidations += 1;
        }
    }

    /// Removes every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("query cache poisoned");
        inner.map.clear();
        inner.recency.clear();
    }

    /// A snapshot of the cache's counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("query cache poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
            invalidations: inner.invalidations,
            evictions: inner.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ResultRow;
    use crate::value::CellValue;

    fn result(tag: f64) -> Arc<QueryResult> {
        Arc::new(QueryResult {
            key_names: vec![],
            value_names: vec!["sum(UnitSales)".into()],
            rows: vec![ResultRow {
                keys: vec![],
                values: vec![CellValue::Float(tag)],
            }],
            facts_scanned: 1,
            facts_matched: 1,
        })
    }

    fn key(generation: u64, fact: &str, view: &InstanceView) -> CacheKey {
        CacheKey::new(
            generation,
            &Query::over(fact).measure("UnitSales"),
            Arc::new(view.clone()),
        )
    }

    fn facts(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = QueryCache::new(4);
        let view = InstanceView::unrestricted();
        let k = key(1, "Sales", &view);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), result(1.0));
        assert_eq!(
            cache.get(&k).unwrap().rows[0].values[0],
            CellValue::Float(1.0)
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn different_views_never_collide() {
        let cache = QueryCache::new(4);
        let mut a = InstanceView::unrestricted();
        a.select_dimension_members("Store", vec![0]);
        let mut b = InstanceView::unrestricted();
        b.select_dimension_members("Store", vec![1]);
        cache.insert(key(1, "Sales", &a), result(1.0));
        assert!(cache.get(&key(1, "Sales", &b)).is_none());
        assert!(cache.get(&key(1, "Sales", &a)).is_some());
    }

    #[test]
    fn generation_bump_invalidates_stale_entries() {
        let cache = QueryCache::new(8);
        let view = InstanceView::unrestricted();
        cache.insert(key(1, "Sales", &view), result(1.0));
        cache.insert(key(2, "Sales", &view), result(2.0));
        cache.invalidate_generations_below(2);
        assert!(cache.get(&key(1, "Sales", &view)).is_none());
        assert!(cache.get(&key(2, "Sales", &view)).is_some());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let cache = QueryCache::new(2);
        let view = InstanceView::unrestricted();
        cache.insert(key(1, "A", &view), result(1.0));
        cache.insert(key(1, "B", &view), result(2.0));
        // Touch A: B becomes the least recently used.
        assert!(cache.get(&key(1, "A", &view)).is_some());
        cache.insert(key(1, "C", &view), result(3.0));
        assert!(
            cache.get(&key(1, "B", &view)).is_none(),
            "LRU entry evicted"
        );
        assert!(cache.get(&key(1, "A", &view)).is_some(), "hit kept A alive");
        assert!(cache.get(&key(1, "C", &view)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn scoped_publish_drops_changed_facts_and_rekeys_the_rest() {
        let cache = QueryCache::new(8);
        let view = InstanceView::unrestricted();
        cache.insert(key(1, "Sales", &view), result(1.0));
        cache.insert(key(1, "Returns", &view), result(2.0));
        // An ingest epoch publishes generation 2, changing only Sales.
        cache.publish(2, &facts(&["Sales"]));
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.invalidations), (1, 1));
        // The Sales entry is gone at both generations.
        assert!(cache.get(&key(1, "Sales", &view)).is_none());
        assert!(cache.get(&key(2, "Sales", &view)).is_none());
        // The Returns entry migrated to the new generation.
        assert!(cache.get(&key(1, "Returns", &view)).is_none());
        assert_eq!(
            cache.get(&key(2, "Returns", &view)).unwrap().rows[0].values[0],
            CellValue::Float(2.0)
        );
    }

    #[test]
    fn recency_survives_scoped_publish() {
        let cache = QueryCache::new(2);
        let view = InstanceView::unrestricted();
        cache.insert(key(1, "A", &view), result(1.0));
        cache.insert(key(1, "B", &view), result(2.0));
        // Touch A so B is the LRU, then re-key both via a scoped publish.
        assert!(cache.get(&key(1, "A", &view)).is_some());
        cache.publish(2, &BTreeSet::new());
        // A new insert must still evict B (recency carried across the
        // re-key), not A.
        cache.insert(key(2, "C", &view), result(3.0));
        assert!(cache.get(&key(2, "B", &view)).is_none());
        assert!(cache.get(&key(2, "A", &view)).is_some());
        assert!(cache.get(&key(2, "C", &view)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn rekey_collision_does_not_leak_recency() {
        let cache = QueryCache::new(2);
        let view = InstanceView::unrestricted();
        // The same query cached at the old generation and (by a reader
        // racing the publish) at the new one: the re-key collides.
        cache.insert(key(1, "Sales", &view), result(1.0));
        cache.insert(key(2, "Sales", &view), result(2.0));
        cache.publish(2, &BTreeSet::new());
        assert_eq!(cache.stats().entries, 1);
        assert!(cache.get(&key(2, "Sales", &view)).is_some());
        // The overwritten entry's recency tick must be gone too: filling
        // past capacity evicts exactly one live entry, not a phantom.
        cache.insert(key(2, "A", &view), result(3.0));
        cache.insert(key(2, "B", &view), result(4.0));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn empty_publish_flushes_nothing() {
        let cache = QueryCache::new(8);
        let view = InstanceView::unrestricted();
        cache.insert(key(1, "Sales", &view), result(1.0));
        cache.publish(2, &BTreeSet::new());
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.invalidations), (1, 0));
        assert!(cache.get(&key(2, "Sales", &view)).is_some());
    }

    #[test]
    fn stale_in_flight_results_are_not_admitted() {
        let cache = QueryCache::new(8);
        let view = InstanceView::unrestricted();
        // A publish raises the floor to generation 2 …
        cache.invalidate_generations_below(2);
        // … so a result computed from generation 1 (a query that was in
        // flight across the publish) must be refused.
        cache.insert(key(1, "Sales", &view), result(1.0));
        assert_eq!(cache.stats().entries, 0);
        cache.insert(key(2, "Sales", &view), result(2.0));
        assert_eq!(cache.stats().entries, 1);
        // A scoped publish raises the floor too.
        cache.publish(3, &facts(&["Other"]));
        cache.insert(key(2, "Sales", &view), result(2.0));
        assert_eq!(cache.stats().entries, 1, "floor refuses generation 2 now");
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let cache = QueryCache::disabled();
        assert!(!cache.is_enabled());
        let view = InstanceView::unrestricted();
        let k = key(1, "Sales", &view);
        cache.insert(k.clone(), result(1.0));
        assert!(cache.get(&k).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn batch_lookup_answers_hits_positionally_under_one_lock() {
        let cache = QueryCache::new(4);
        let view = InstanceView::unrestricted();
        cache.insert(key(1, "A", &view), result(1.0));
        cache.insert(key(1, "C", &view), result(3.0));
        let keys = vec![key(1, "A", &view), key(1, "B", &view), key(1, "C", &view)];
        let found = cache.get_batch(&keys);
        assert_eq!(
            found[0].as_ref().unwrap().rows[0].values[0],
            CellValue::Float(1.0)
        );
        assert!(found[1].is_none());
        assert_eq!(
            found[2].as_ref().unwrap().rows[0].values[0],
            CellValue::Float(3.0)
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn batch_lookup_refreshes_recency() {
        let cache = QueryCache::new(2);
        let view = InstanceView::unrestricted();
        cache.insert(key(1, "A", &view), result(1.0));
        cache.insert(key(1, "B", &view), result(2.0));
        // Batch-touch A: B becomes the LRU victim.
        cache.get_batch(&[key(1, "A", &view)]);
        cache.insert(key(1, "C", &view), result(3.0));
        assert!(cache.get(&key(1, "B", &view)).is_none());
        assert!(cache.get(&key(1, "A", &view)).is_some());
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = QueryCache::new(4);
        let view = InstanceView::unrestricted();
        cache.insert(key(1, "Sales", &view), result(1.0));
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }
}
