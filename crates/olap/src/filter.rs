//! Boolean and spatial filters over table rows.

use crate::error::OlapError;
use crate::table::Table;
use crate::value::CellValue;
use sdwp_geometry::distance::{distance, DistanceMetric};
use sdwp_geometry::{predicates, Geometry};
use serde::{Deserialize, Serialize};

/// Comparison operators for attribute filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompareOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CompareOp {
    /// Evaluates the operator over an ordering produced by
    /// [`CellValue::compare`].
    pub fn eval(&self, ordering: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CompareOp::Eq => ordering == Equal,
            CompareOp::Ne => ordering != Equal,
            CompareOp::Lt => ordering == Less,
            CompareOp::Le => ordering != Greater,
            CompareOp::Gt => ordering == Greater,
            CompareOp::Ge => ordering != Less,
        }
    }
}

/// The topological predicates usable in spatial filters — the operators the
/// paper adds to PRML (§4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpatialPredicateOp {
    /// The geometries share at least one point.
    Intersects,
    /// The geometries share no point.
    Disjoint,
    /// The geometries cross.
    Crosses,
    /// The row's geometry lies inside the target.
    Inside,
    /// The geometries are equal.
    Equals,
    /// The row's geometry contains the target.
    Contains,
    /// The geometries touch only at boundaries.
    Touches,
}

impl SpatialPredicateOp {
    /// Evaluates the predicate with the row geometry on the left.
    pub fn eval(&self, row_geometry: &Geometry, target: &Geometry) -> bool {
        match self {
            SpatialPredicateOp::Intersects => predicates::intersects(row_geometry, target),
            SpatialPredicateOp::Disjoint => predicates::disjoint(row_geometry, target),
            SpatialPredicateOp::Crosses => predicates::crosses(row_geometry, target),
            SpatialPredicateOp::Inside => predicates::inside(row_geometry, target),
            SpatialPredicateOp::Equals => predicates::equals(row_geometry, target),
            SpatialPredicateOp::Contains => predicates::contains(row_geometry, target),
            SpatialPredicateOp::Touches => predicates::touches(row_geometry, target),
        }
    }
}

/// A filter over the rows of one table (a dimension table, layer table or
/// fact table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Filter {
    /// Accept every row.
    All,
    /// Reject every row.
    None,
    /// Compare a column value against a constant.
    Attribute {
        /// The column to read.
        column: String,
        /// The comparison operator.
        op: CompareOp,
        /// The constant to compare against.
        value: CellValue,
    },
    /// Keep rows whose geometry lies within `max_distance` of `target`
    /// (the paper's `Distance(a, b) < d` conditions).
    WithinDistance {
        /// The geometry column to read.
        column: String,
        /// The reference geometry (e.g. the user's location).
        target: Geometry,
        /// Maximum distance, in the metric's unit.
        max_distance: f64,
        /// The distance metric.
        metric: DistanceMetric,
    },
    /// Keep rows whose geometry satisfies a topological predicate against a
    /// target geometry.
    Spatial {
        /// The geometry column to read.
        column: String,
        /// The predicate.
        op: SpatialPredicateOp,
        /// The reference geometry.
        target: Geometry,
    },
    /// Keep rows explicitly listed by row id.
    RowIn(Vec<usize>),
    /// Conjunction of filters.
    And(Vec<Filter>),
    /// Disjunction of filters.
    Or(Vec<Filter>),
    /// Negation of a filter.
    Not(Box<Filter>),
}

impl Filter {
    /// Convenience constructor for an equality filter.
    pub fn eq(column: impl Into<String>, value: impl Into<CellValue>) -> Self {
        Filter::Attribute {
            column: column.into(),
            op: CompareOp::Eq,
            value: value.into(),
        }
    }

    /// Convenience constructor for a within-distance filter in Euclidean
    /// (planar) units.
    pub fn within_km(column: impl Into<String>, target: Geometry, max_distance: f64) -> Self {
        Filter::WithinDistance {
            column: column.into(),
            target,
            max_distance,
            metric: DistanceMetric::Euclidean,
        }
    }

    /// Evaluates the filter against one row of a table.
    pub fn matches(&self, table: &Table, row: usize) -> Result<bool, OlapError> {
        match self {
            Filter::All => Ok(true),
            Filter::None => Ok(false),
            Filter::Attribute { column, op, value } => {
                let cell = table.get(row, column)?;
                Ok(match cell.compare(value) {
                    Some(ordering) => op.eval(ordering),
                    // Incomparable values only satisfy "not equal".
                    None => *op == CompareOp::Ne,
                })
            }
            Filter::WithinDistance {
                column,
                target,
                max_distance,
                metric,
            } => {
                let cell = table.get(row, column)?;
                Ok(match cell.as_geometry() {
                    Some(g) => distance(g, target, *metric) < *max_distance,
                    None => false,
                })
            }
            Filter::Spatial { column, op, target } => {
                let cell = table.get(row, column)?;
                Ok(match cell.as_geometry() {
                    Some(g) => op.eval(g, target),
                    None => false,
                })
            }
            Filter::RowIn(rows) => Ok(rows.contains(&row)),
            Filter::And(filters) => {
                for f in filters {
                    if !f.matches(table, row)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Filter::Or(filters) => {
                for f in filters {
                    if f.matches(table, row)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Filter::Not(inner) => Ok(!inner.matches(table, row)?),
        }
    }

    /// Evaluates the filter against every row of a table, returning the
    /// matching row ids.
    pub fn matching_rows(&self, table: &Table) -> Result<Vec<usize>, OlapError> {
        let mut out = Vec::new();
        for row in 0..table.len() {
            if self.matches(table, row)? {
                out.push(row);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnType;
    use sdwp_geometry::Point;

    fn stores() -> Table {
        let mut t = Table::new(
            "Store",
            vec![
                ("Store.name".to_string(), ColumnType::Text),
                ("City.name".to_string(), ColumnType::Text),
                ("size".to_string(), ColumnType::Integer),
                ("Store.geometry".to_string(), ColumnType::Geometry),
            ],
        );
        let rows = [
            ("Downtown", "Alicante", 300, (0.0, 0.0)),
            ("Harbour", "Alicante", 120, (3.0, 4.0)),
            ("Centro", "Madrid", 800, (100.0, 100.0)),
        ];
        for (store, city, size, (x, y)) in rows {
            t.push_row(vec![
                ("Store.name", CellValue::from(store)),
                ("City.name", CellValue::from(city)),
                ("size", CellValue::Integer(size)),
                (
                    "Store.geometry",
                    CellValue::Geometry(Point::new(x, y).into()),
                ),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn attribute_filters() {
        let t = stores();
        let alicante = Filter::eq("City.name", "Alicante");
        assert_eq!(alicante.matching_rows(&t).unwrap(), vec![0, 1]);
        let big = Filter::Attribute {
            column: "size".into(),
            op: CompareOp::Ge,
            value: CellValue::Integer(300),
        };
        assert_eq!(big.matching_rows(&t).unwrap(), vec![0, 2]);
        let not_madrid = Filter::Not(Box::new(Filter::eq("City.name", "Madrid")));
        assert_eq!(not_madrid.matching_rows(&t).unwrap(), vec![0, 1]);
    }

    #[test]
    fn compare_op_semantics() {
        use std::cmp::Ordering::*;
        assert!(CompareOp::Eq.eval(Equal));
        assert!(!CompareOp::Eq.eval(Less));
        assert!(CompareOp::Le.eval(Equal));
        assert!(CompareOp::Le.eval(Less));
        assert!(!CompareOp::Le.eval(Greater));
        assert!(CompareOp::Ne.eval(Greater));
        assert!(CompareOp::Gt.eval(Greater));
        assert!(CompareOp::Ge.eval(Equal));
        assert!(CompareOp::Lt.eval(Less));
    }

    #[test]
    fn incomparable_values_only_satisfy_ne() {
        let t = stores();
        // Comparing a text column to an integer: incomparable.
        let eq = Filter::Attribute {
            column: "City.name".into(),
            op: CompareOp::Eq,
            value: CellValue::Integer(5),
        };
        assert!(eq.matching_rows(&t).unwrap().is_empty());
        let ne = Filter::Attribute {
            column: "City.name".into(),
            op: CompareOp::Ne,
            value: CellValue::Integer(5),
        };
        assert_eq!(ne.matching_rows(&t).unwrap().len(), 3);
    }

    #[test]
    fn within_distance_filter_matches_paper_example_52() {
        let t = stores();
        // "sales made in stores at less than 5 km of his location".
        // The Harbour store sits exactly 5 km away, so the strict `<`
        // threshold of the paper's rule excludes it.
        let user_location: Geometry = Point::new(0.0, 0.0).into();
        let five_km = Filter::within_km("Store.geometry", user_location.clone(), 5.0);
        assert_eq!(five_km.matching_rows(&t).unwrap(), vec![0]);
        // Slightly widening the threshold brings it in.
        let wider = Filter::within_km("Store.geometry", user_location, 5.01);
        assert_eq!(wider.matching_rows(&t).unwrap(), vec![0, 1]);
    }

    #[test]
    fn spatial_predicate_filter() {
        let t = stores();
        let region: Geometry = sdwp_geometry::Polygon::from_tuples(&[
            (-1.0, -1.0),
            (5.0, -1.0),
            (5.0, 5.0),
            (-1.0, 5.0),
        ])
        .unwrap()
        .into();
        let inside = Filter::Spatial {
            column: "Store.geometry".into(),
            op: SpatialPredicateOp::Inside,
            target: region.clone(),
        };
        assert_eq!(inside.matching_rows(&t).unwrap(), vec![0, 1]);
        let disjoint = Filter::Spatial {
            column: "Store.geometry".into(),
            op: SpatialPredicateOp::Disjoint,
            target: region,
        };
        assert_eq!(disjoint.matching_rows(&t).unwrap(), vec![2]);
    }

    #[test]
    fn boolean_combinators() {
        let t = stores();
        let combined = Filter::And(vec![
            Filter::eq("City.name", "Alicante"),
            Filter::Attribute {
                column: "size".into(),
                op: CompareOp::Lt,
                value: CellValue::Integer(200),
            },
        ]);
        assert_eq!(combined.matching_rows(&t).unwrap(), vec![1]);
        let either = Filter::Or(vec![
            Filter::eq("Store.name", "Centro"),
            Filter::eq("Store.name", "Downtown"),
        ]);
        assert_eq!(either.matching_rows(&t).unwrap(), vec![0, 2]);
        assert_eq!(Filter::All.matching_rows(&t).unwrap().len(), 3);
        assert!(Filter::None.matching_rows(&t).unwrap().is_empty());
        assert_eq!(
            Filter::RowIn(vec![2, 5]).matching_rows(&t).unwrap(),
            vec![2]
        );
    }

    #[test]
    fn unknown_column_is_an_error() {
        let t = stores();
        let f = Filter::eq("ghost", "x");
        assert!(f.matching_rows(&t).is_err());
    }

    #[test]
    fn null_geometry_never_matches_spatial_filters() {
        let mut t = Table::new("L", vec![("geometry".to_string(), ColumnType::Geometry)]);
        t.push_row(vec![]).unwrap(); // null geometry
        let f = Filter::within_km("geometry", Point::new(0.0, 0.0).into(), 1000.0);
        assert!(f.matching_rows(&t).unwrap().is_empty());
    }
}
