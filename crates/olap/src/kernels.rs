//! Vectorised per-chunk aggregation kernels.
//!
//! The morsel executor pushes SUM/MIN/MAX/COUNT/AVG down to typed slices:
//! instead of materialising a [`crate::CellValue`] per row, it runs one of
//! these kernels over each chunk sub-slice a morsel covers and merges the
//! partial [`NumericAgg`] states into the group's
//! [`crate::aggregate::Accumulator`]. All-valid chunks take the masked-free
//! fast path over a bare `&[T]` — a tight loop the compiler can unroll and
//! auto-vectorise; chunks with nulls consult the validity mask per row.
//!
//! Numeric identities match the accumulator exactly: values are summed in
//! row order as `f64`, and min/max chain through `f64::min`/`f64::max` in
//! the same association the row-at-a-time reference uses, so on exactly
//! representable data (the property suites' dyadic rationals) the kernels
//! are bit-identical to the serial executor.

/// The partial aggregate of one slice of numeric values: enough state to
/// finish SUM, AVG, MIN, MAX and COUNT.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NumericAgg {
    /// Number of non-null values observed.
    pub count: u64,
    /// Sum of the observed values.
    pub sum: f64,
    /// Minimum observed value, when any.
    pub min: Option<f64>,
    /// Maximum observed value, when any.
    pub max: Option<f64>,
}

impl NumericAgg {
    /// Feeds one value.
    #[inline]
    pub fn observe(&mut self, n: f64) {
        self.count += 1;
        self.sum += n;
        self.min = Some(self.min.map_or(n, |m| m.min(n)));
        self.max = Some(self.max.map_or(n, |m| m.max(n)));
    }

    /// Merges another partial state into this one (the identity when
    /// `other` observed nothing).
    pub fn merge(&mut self, other: &NumericAgg) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Aggregates an all-valid float slice.
pub fn agg_f64(values: &[f64]) -> NumericAgg {
    let mut agg = NumericAgg::default();
    for &v in values {
        agg.observe(v);
    }
    agg
}

/// Aggregates a float slice under a validity mask (`true` = non-null).
pub fn agg_f64_masked(values: &[f64], validity: &[bool]) -> NumericAgg {
    debug_assert_eq!(values.len(), validity.len());
    let mut agg = NumericAgg::default();
    for (&v, &valid) in values.iter().zip(validity) {
        if valid {
            agg.observe(v);
        }
    }
    agg
}

/// Aggregates an all-valid integer (or date) slice; values widen to `f64`
/// exactly like the row-at-a-time reference.
pub fn agg_i64(values: &[i64]) -> NumericAgg {
    let mut agg = NumericAgg::default();
    for &v in values {
        agg.observe(v as f64);
    }
    agg
}

/// Aggregates an integer slice under a validity mask.
pub fn agg_i64_masked(values: &[i64], validity: &[bool]) -> NumericAgg {
    debug_assert_eq!(values.len(), validity.len());
    let mut agg = NumericAgg::default();
    for (&v, &valid) in values.iter().zip(validity) {
        if valid {
            agg.observe(v as f64);
        }
    }
    agg
}

// ----- grouped kernels ---------------------------------------------------
//
// The grouped morsel path resolves each selected fact row to a dense
// group slot (`u32`) and gathers each measure column into a compacted
// `(values, slots)` pair with nulls already dropped (the gather consults
// the validity mask per chunk; all-valid chunks stream through the bare
// value slice). The kernels below are therefore mask-free tight loops
// over parallel slices — one array index per row, no hashing, no
// `CellValue`, no branches the compiler cannot lift.
//
// Each kernel also maintains the per-slot non-null `counts`, because (a)
// every aggregation's mergeable state ([`NumericAgg`]) needs the count to
// merge correctly, and (b) MIN/MAX use `counts[slot] == 0` as the
// first-touch test so their chaining (`assign first, then fold through
// `f64::min`/`f64::max` in row order`) is exactly the row-at-a-time
// accumulator's — NaN propagation included.

/// Grouped SUM (and the sum half of AVG): `sums[slot] += value`, summing
/// in slice order so float results match the row-at-a-time reference.
pub fn sum_grouped(values: &[f64], slots: &[u32], counts: &mut [u64], sums: &mut [f64]) {
    debug_assert_eq!(values.len(), slots.len());
    for (&value, &slot) in values.iter().zip(slots) {
        let slot = slot as usize;
        counts[slot] += 1;
        sums[slot] += value;
    }
}

/// Grouped MIN: first value assigns, later values fold through
/// [`f64::min`] in slice order.
pub fn min_grouped(values: &[f64], slots: &[u32], counts: &mut [u64], mins: &mut [f64]) {
    debug_assert_eq!(values.len(), slots.len());
    for (&value, &slot) in values.iter().zip(slots) {
        let slot = slot as usize;
        mins[slot] = if counts[slot] == 0 {
            value
        } else {
            mins[slot].min(value)
        };
        counts[slot] += 1;
    }
}

/// Grouped MAX: first value assigns, later values fold through
/// [`f64::max`] in slice order.
pub fn max_grouped(values: &[f64], slots: &[u32], counts: &mut [u64], maxs: &mut [f64]) {
    debug_assert_eq!(values.len(), slots.len());
    for (&value, &slot) in values.iter().zip(slots) {
        let slot = slot as usize;
        maxs[slot] = if counts[slot] == 0 {
            value
        } else {
            maxs[slot].max(value)
        };
        counts[slot] += 1;
    }
}

/// Grouped COUNT of non-null values (the gather already dropped nulls, so
/// every slot occurrence counts).
pub fn count_grouped(slots: &[u32], counts: &mut [u64]) {
    for &slot in slots {
        counts[slot as usize] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_valid_kernels() {
        let f = agg_f64(&[1.5, -2.0, 4.0]);
        assert_eq!((f.count, f.sum), (3, 3.5));
        assert_eq!((f.min, f.max), (Some(-2.0), Some(4.0)));
        let i = agg_i64(&[3, -1]);
        assert_eq!(
            (i.count, i.sum, i.min, i.max),
            (2, 2.0, Some(-1.0), Some(3.0))
        );
        let empty = agg_f64(&[]);
        assert_eq!((empty.count, empty.min), (0, None));
    }

    #[test]
    fn masked_kernels_skip_nulls() {
        let f = agg_f64_masked(&[1.0, 0.0, 3.0], &[true, false, true]);
        assert_eq!((f.count, f.sum), (2, 4.0));
        let i = agg_i64_masked(&[0, 0], &[false, false]);
        assert_eq!((i.count, i.sum, i.min, i.max), (0, 0.0, None, None));
    }

    #[test]
    fn grouped_kernels_agree_with_per_slot_observation() {
        let values = [1.5, -2.0, 4.0, 0.25, -7.5];
        let slots = [0u32, 1, 0, 2, 1];
        let mut counts = [0u64; 3];
        let mut sums = [0.0; 3];
        sum_grouped(&values, &slots, &mut counts, &mut sums);
        assert_eq!(counts, [2, 2, 1]);
        assert_eq!(sums, [5.5, -9.5, 0.25]);

        let mut counts = [0u64; 3];
        let mut mins = [0.0; 3];
        min_grouped(&values, &slots, &mut counts, &mut mins);
        assert_eq!(mins, [1.5, -7.5, 0.25]);

        let mut counts = [0u64; 3];
        let mut maxs = [0.0; 3];
        max_grouped(&values, &slots, &mut counts, &mut maxs);
        assert_eq!(maxs, [4.0, -2.0, 0.25]);

        let mut counts = [0u64; 3];
        count_grouped(&slots, &mut counts);
        assert_eq!(counts, [2, 2, 1]);

        // Per-slot results equal one NumericAgg per slot fed in order.
        let mut reference = [NumericAgg::default(), NumericAgg::default()];
        for (&v, &s) in values.iter().zip(&slots).filter(|(_, &s)| s < 2) {
            reference[s as usize].observe(v);
        }
        assert_eq!(reference[0].sum, 5.5);
        assert_eq!(reference[1].min, Some(-7.5));
    }

    #[test]
    fn merge_is_associative_on_partials() {
        let parts = [agg_f64(&[1.0, 2.0]), agg_f64(&[]), agg_f64(&[-5.0])];
        let mut left = NumericAgg::default();
        for p in &parts {
            left.merge(p);
        }
        let whole = agg_f64(&[1.0, 2.0, -5.0]);
        assert_eq!(left, whole);
        // Merging an empty partial is the identity.
        let before = left;
        left.merge(&NumericAgg::default());
        assert_eq!(left, before);
    }
}
