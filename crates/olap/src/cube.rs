//! The star-schema cube binding instances to an MD/GeoMD schema.

use crate::chunk::DEFAULT_CHUNK_ROWS;
use crate::column::ColumnType;
use crate::error::OlapError;
use crate::table::{RowRemap, Table};
use crate::value::CellValue;
use sdwp_geometry::Geometry;
use sdwp_model::{AttributeType, Schema};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The instance table of one dimension, at leaf-level grain.
///
/// Every level contributes its attribute columns (named
/// `"<Level>.<attribute>"`) plus a `"<Level>.geometry"` column. Geometry
/// columns exist for every level even when the conceptual schema has not
/// (yet) marked the level spatial: the paper's premise is that warehouses
/// already *contain* spatial data which is "not used to its full
/// potential" until a personalization rule introduces it into the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimensionTable {
    /// The dimension this table instantiates.
    pub dimension: String,
    /// The backing columnar table.
    pub table: Table,
}

/// The instance table of a thematic geographic layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTable {
    /// The layer this table instantiates.
    pub layer: String,
    /// The backing columnar table (columns `name`, `geometry`).
    pub table: Table,
}

/// The instance table of a fact: foreign keys into dimensions plus
/// measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactTable {
    /// The fact this table instantiates.
    pub fact: String,
    /// The backing columnar table.
    pub table: Table,
    /// The retained stable-row-id remaps of this table's compactions,
    /// oldest first ([`Arc`]-shared across snapshots). `remaps[i]`
    /// publishes the transition from compaction version `remap_base + i`
    /// to `remap_base + i + 1`; a selection captured at version `v`
    /// translates to the current numbering through
    /// `remaps[v - remap_base ..]`.
    pub remaps: Vec<Arc<RowRemap>>,
    /// Compaction version of the oldest retained remap's *source*
    /// numbering. The serving layer trims remaps no live session view (or
    /// in-flight rule firing) can still reference, so the chain stays
    /// bounded however many compactions a table goes through; `remap_base`
    /// records how many were dropped.
    #[serde(default)]
    pub remap_base: u64,
}

impl FactTable {
    /// The table's compaction version: how many times it has been
    /// compacted (including compactions whose remaps were since trimmed).
    pub fn compaction_version(&self) -> u64 {
        self.remap_base + self.remaps.len() as u64
    }

    /// The retained remaps covering version transitions from `version`
    /// onwards — what a selection captured at `version` translates
    /// through. Transitions older than the trimmed base are gone; the
    /// serving layer guarantees no live selection references them.
    pub fn remaps_from(&self, version: u64) -> &[Arc<RowRemap>] {
        let start = version.saturating_sub(self.remap_base) as usize;
        &self.remaps[start.min(self.remaps.len())..]
    }

    /// Translates row ids captured at compaction `version` forward
    /// through every retained remap to the current numbering; ids whose
    /// rows died in an intervening compaction drop out. The shared walk
    /// behind every producer's re-anchor step (callers must hold ids no
    /// older than the retained window — see [`FactTable::remap_base`]).
    pub fn translate_rows_from(
        &self,
        version: u64,
        rows: impl IntoIterator<Item = usize>,
    ) -> Vec<usize> {
        let remaps = self.remaps_from(version);
        rows.into_iter()
            .filter_map(|row| {
                let mut row = Some(row);
                for remap in remaps {
                    row = row.and_then(|r| remap.new_id(r));
                }
                row
            })
            .collect()
    }
}

/// Observable per-fact storage counters: the operator's
/// compaction-pressure gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactTableStats {
    /// The fact's name.
    pub fact: String,
    /// Rows ever appended under the current numbering (live + dead).
    pub total_rows: usize,
    /// Live (non-retracted) rows.
    pub live_rows: usize,
    /// Fraction of rows tombstoned (`0.0` for an empty table).
    pub tombstone_ratio: f64,
    /// How many times the table has been compacted.
    pub compactions: u64,
    /// Remaps still retained on the table's chain (compactions minus the
    /// versions trimmed once nothing live could reference them) — the
    /// gauge that shows the chain staying bounded under steady
    /// compaction.
    pub remap_chain_len: usize,
}

/// Name of the foreign-key column referencing a dimension.
pub fn fk_column(dimension: &str) -> String {
    format!("__fk_{dimension}")
}

/// Name of the instance-table column backing a level attribute.
pub fn attribute_column(level: &str, attribute: &str) -> String {
    format!("{level}.{attribute}")
}

/// Name of the instance-table column backing a level geometry.
pub fn geometry_column(level: &str) -> String {
    format!("{level}.geometry")
}

/// A star-schema cube: one dimension table per dimension, one layer table
/// per (materialised) layer and one fact table per fact, all bound to a
/// conceptual [`Schema`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cube {
    schema: Schema,
    dimensions: BTreeMap<String, DimensionTable>,
    layers: BTreeMap<String, LayerTable>,
    facts: BTreeMap<String, FactTable>,
    /// Rows per storage chunk of every table this cube creates.
    chunk_rows: usize,
}

fn column_type_of(attr: &AttributeType) -> ColumnType {
    match attr {
        AttributeType::Integer => ColumnType::Integer,
        AttributeType::Float => ColumnType::Float,
        AttributeType::Text => ColumnType::Text,
        AttributeType::Boolean => ColumnType::Boolean,
        AttributeType::Date => ColumnType::Date,
        AttributeType::Geometry(_) => ColumnType::Geometry,
    }
}

impl Cube {
    /// Creates an empty cube for the given conceptual schema.
    pub fn new(schema: Schema) -> Self {
        Cube::with_chunk_rows(schema, DEFAULT_CHUNK_ROWS)
    }

    /// Creates an empty cube whose tables use an explicit storage chunk
    /// size. Small chunks are mainly for tests exercising chunk
    /// boundaries; the default aligns with the executor's morsel size.
    pub fn with_chunk_rows(schema: Schema, chunk_rows: usize) -> Self {
        let chunk_rows = chunk_rows.max(1);
        let mut dimensions = BTreeMap::new();
        for dim in &schema.dimensions {
            let mut columns: Vec<(String, ColumnType)> = Vec::new();
            for level in &dim.levels {
                for attr in &level.attributes {
                    columns.push((
                        attribute_column(&level.name, &attr.name),
                        column_type_of(&attr.data_type),
                    ));
                }
                columns.push((geometry_column(&level.name), ColumnType::Geometry));
            }
            dimensions.insert(
                dim.name.clone(),
                DimensionTable {
                    dimension: dim.name.clone(),
                    table: Table::with_chunk_rows(dim.name.clone(), columns, chunk_rows),
                },
            );
        }

        let mut layers = BTreeMap::new();
        for layer in &schema.layers {
            layers.insert(
                layer.name.clone(),
                LayerTable {
                    layer: layer.name.clone(),
                    table: Table::with_chunk_rows(
                        layer.name.clone(),
                        vec![
                            ("name".to_string(), ColumnType::Text),
                            ("geometry".to_string(), ColumnType::Geometry),
                        ],
                        chunk_rows,
                    ),
                },
            );
        }

        let mut facts = BTreeMap::new();
        for fact in &schema.facts {
            let mut columns: Vec<(String, ColumnType)> = fact
                .dimensions
                .iter()
                .map(|d| (fk_column(d), ColumnType::Integer))
                .collect();
            for measure in &fact.measures {
                columns.push((measure.name.clone(), column_type_of(&measure.data_type)));
            }
            facts.insert(
                fact.name.clone(),
                FactTable {
                    fact: fact.name.clone(),
                    table: Table::with_chunk_rows(fact.name.clone(), columns, chunk_rows),
                    remaps: Vec::new(),
                    remap_base: 0,
                },
            );
        }

        Cube {
            schema,
            dimensions,
            layers,
            facts,
            chunk_rows,
        }
    }

    /// The conceptual schema this cube instantiates.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable access to the schema, used by schema-personalization
    /// actions. Callers adding layers should follow up with
    /// [`Cube::ensure_layer_table`].
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// The dimension table for a dimension.
    pub fn dimension_table(&self, dimension: &str) -> Result<&DimensionTable, OlapError> {
        self.dimensions
            .get(dimension)
            .ok_or_else(|| OlapError::UnknownElement {
                kind: "dimension",
                name: dimension.to_string(),
            })
    }

    /// The layer table for a layer, when materialised.
    pub fn layer_table(&self, layer: &str) -> Result<&LayerTable, OlapError> {
        self.layers
            .get(layer)
            .ok_or_else(|| OlapError::UnknownElement {
                kind: "layer",
                name: layer.to_string(),
            })
    }

    /// The fact table for a fact.
    pub fn fact_table(&self, fact: &str) -> Result<&FactTable, OlapError> {
        self.facts
            .get(fact)
            .ok_or_else(|| OlapError::UnknownElement {
                kind: "fact",
                name: fact.to_string(),
            })
    }

    /// Names of the materialised layers.
    pub fn layer_names(&self) -> Vec<&str> {
        self.layers.keys().map(String::as_str).collect()
    }

    /// Creates an (empty) instance table for a layer if it does not exist
    /// yet. Called after an `AddLayer` schema-personalization action.
    pub fn ensure_layer_table(&mut self, layer: &str) -> &mut LayerTable {
        let chunk_rows = self.chunk_rows;
        self.layers
            .entry(layer.to_string())
            .or_insert_with(|| LayerTable {
                layer: layer.to_string(),
                table: Table::with_chunk_rows(
                    layer.to_string(),
                    vec![
                        ("name".to_string(), ColumnType::Text),
                        ("geometry".to_string(), ColumnType::Geometry),
                    ],
                    chunk_rows,
                ),
            })
    }

    /// Adds a member to a dimension table. `values` use instance-column
    /// names (`"Store.name"`, `"City.geometry"`, …); missing columns become
    /// null. Returns the member's row id.
    pub fn add_dimension_member(
        &mut self,
        dimension: &str,
        values: Vec<(&str, CellValue)>,
    ) -> Result<usize, OlapError> {
        let table =
            self.dimensions
                .get_mut(dimension)
                .ok_or_else(|| OlapError::UnknownElement {
                    kind: "dimension",
                    name: dimension.to_string(),
                })?;
        table.table.push_row(values)
    }

    /// Adds an instance to a layer table, creating the table if necessary.
    pub fn add_layer_instance(
        &mut self,
        layer: &str,
        name: impl Into<String>,
        geometry: Geometry,
    ) -> Result<usize, OlapError> {
        let table = self.ensure_layer_table(layer);
        table.table.push_row(vec![
            ("name", CellValue::Text(name.into())),
            ("geometry", CellValue::Geometry(geometry)),
        ])
    }

    /// Adds a fact row: foreign keys (dimension name → member row id) plus
    /// measure values. Returns the fact row id.
    pub fn add_fact_row(
        &mut self,
        fact: &str,
        foreign_keys: Vec<(&str, usize)>,
        measures: Vec<(&str, CellValue)>,
    ) -> Result<usize, OlapError> {
        // Validate foreign keys against dimension table sizes first.
        for (dim, member) in &foreign_keys {
            let dim_table = self.dimension_table(dim)?;
            if *member >= dim_table.table.len() {
                return Err(OlapError::RowShape {
                    message: format!(
                        "foreign key {member} out of range for dimension '{dim}' ({} members)",
                        dim_table.table.len()
                    ),
                });
            }
        }
        let table = self
            .facts
            .get_mut(fact)
            .ok_or_else(|| OlapError::UnknownElement {
                kind: "fact",
                name: fact.to_string(),
            })?;
        let mut values: Vec<(String, CellValue)> = foreign_keys
            .into_iter()
            .map(|(dim, row)| (fk_column(dim), CellValue::Integer(row as i64)))
            .collect();
        values.extend(measures.into_iter().map(|(name, v)| (name.to_string(), v)));
        let named: Vec<(&str, CellValue)> = values
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect();
        table.table.push_row(named)
    }

    /// Overwrites a measure cell of a live fact row (the ingest path's
    /// upsert, e.g. a price correction). Foreign-key columns are
    /// immutable — re-pointing a fact at another member would silently
    /// change what long-lived personalized views and cached results mean;
    /// retract the row and append a corrected one instead.
    pub fn upsert_fact_cell(
        &mut self,
        fact: &str,
        row: usize,
        column: &str,
        value: CellValue,
    ) -> Result<(), OlapError> {
        if column.starts_with("__fk_") {
            return Err(OlapError::InvalidQuery {
                message: format!(
                    "foreign-key column '{column}' is immutable; retract the row and append a corrected one"
                ),
            });
        }
        let table = self
            .facts
            .get_mut(fact)
            .ok_or_else(|| OlapError::UnknownElement {
                kind: "fact",
                name: fact.to_string(),
            })?;
        table.table.set_cell(row, column, value)
    }

    /// Tombstones a fact row (the ingest path's retraction): scans skip it
    /// from now on, its id is never reused and later row ids do not shift.
    /// Idempotent for an already-retracted row.
    pub fn retract_fact_row(&mut self, fact: &str, row: usize) -> Result<(), OlapError> {
        let table = self
            .facts
            .get_mut(fact)
            .ok_or_else(|| OlapError::UnknownElement {
                kind: "fact",
                name: fact.to_string(),
            })?;
        table.table.retract_row(row)
    }

    /// Compacts a fact table: rewrites its live rows into fresh, dense
    /// chunks (dropping every tombstone), remaps the stable row ids, and
    /// appends the resulting [`RowRemap`] to the fact's remap chain so
    /// selections captured before the compaction keep resolving the same
    /// live rows. Returns the remap.
    pub fn compact_fact_table(&mut self, fact: &str) -> Result<Arc<RowRemap>, OlapError> {
        let fact_table = self
            .facts
            .get_mut(fact)
            .ok_or_else(|| OlapError::UnknownElement {
                kind: "fact",
                name: fact.to_string(),
            })?;
        let (compacted, remap) = fact_table.table.compact();
        let remap = Arc::new(remap);
        fact_table.table = compacted;
        fact_table.remaps.push(Arc::clone(&remap));
        Ok(remap)
    }

    /// The compaction version of every fact table (how many remaps a
    /// row-id selection captured now would eventually translate
    /// through) — the cheap subset of [`Cube::fact_table_stats`] the
    /// selection-versioning paths need.
    pub fn fact_compaction_versions(&self) -> BTreeMap<String, u64> {
        self.facts
            .values()
            .map(|f| (f.fact.clone(), f.compaction_version()))
            .collect()
    }

    /// Translates fact row ids captured at compaction version
    /// `from_version` into `to_version`'s numbering by applying the remap
    /// chain forward; ids whose rows died in an intervening compaction
    /// drop out. Ids are returned unchanged when the versions are equal
    /// (or the chain cannot cover the span).
    pub fn translate_fact_rows(
        &self,
        fact: &str,
        from_version: u64,
        to_version: u64,
        rows: impl IntoIterator<Item = usize>,
    ) -> Result<Vec<usize>, OlapError> {
        let fact_table = self.fact_table(fact)?;
        let base = fact_table.remap_base;
        let len = fact_table.remaps.len();
        let clamp = |version: u64| (version.saturating_sub(base) as usize).min(len);
        let remaps = &fact_table.remaps[clamp(from_version)..clamp(to_version)];
        Ok(rows
            .into_iter()
            .filter_map(|row| {
                let mut row = Some(row);
                for remap in remaps {
                    row = row.and_then(|r| remap.new_id(r));
                }
                row
            })
            .collect())
    }

    /// Drops the remaps covering version transitions below `min_version` —
    /// called by the serving layer once no live session view (or
    /// in-flight firing) holds a selection captured before that version,
    /// so the chain stays bounded under steady compaction. Returns how
    /// many remaps were dropped. Clamped to the retained window; trimming
    /// to the current version drops the whole chain.
    pub fn trim_fact_remaps(&mut self, fact: &str, min_version: u64) -> Result<usize, OlapError> {
        let fact_table = self
            .facts
            .get_mut(fact)
            .ok_or_else(|| OlapError::UnknownElement {
                kind: "fact",
                name: fact.to_string(),
            })?;
        let drop = (min_version.saturating_sub(fact_table.remap_base) as usize)
            .min(fact_table.remaps.len());
        if drop > 0 {
            fact_table.remaps.drain(..drop);
            fact_table.remap_base += drop as u64;
        }
        Ok(drop)
    }

    /// Per-fact storage counters (total / live rows, tombstone ratio,
    /// compactions), in fact-name order.
    pub fn fact_table_stats(&self) -> Vec<FactTableStats> {
        self.facts
            .values()
            .map(|f| FactTableStats {
                fact: f.fact.clone(),
                total_rows: f.table.len(),
                live_rows: f.table.live_len(),
                tombstone_ratio: f.table.tombstone_ratio(),
                compactions: f.compaction_version(),
                remap_chain_len: f.remaps.len(),
            })
            .collect()
    }

    /// The dimension-member row id a fact row points to.
    pub fn fact_member(
        &self,
        fact: &str,
        fact_row: usize,
        dimension: &str,
    ) -> Result<usize, OlapError> {
        let table = self.fact_table(fact)?;
        let value = table.table.get(fact_row, &fk_column(dimension))?;
        value
            .as_number()
            .map(|n| n as usize)
            .ok_or_else(|| OlapError::TypeMismatch {
                expected: "integer foreign key",
                found: value.type_name().to_string(),
            })
    }

    /// Reads the geometry of a dimension member at a given level.
    pub fn member_geometry(
        &self,
        dimension: &str,
        level: &str,
        member: usize,
    ) -> Result<Option<Geometry>, OlapError> {
        let table = self.dimension_table(dimension)?;
        let value = table.table.get(member, &geometry_column(level))?;
        Ok(match value {
            CellValue::Geometry(g) => Some(g),
            _ => None,
        })
    }

    /// Swaps this cube's fact tables with `other`'s, leaving schema,
    /// dimension and layer tables of both untouched.
    ///
    /// This exists for the serving engine's write-side coordination: rule
    /// firing only ever mutates schema, layer and dimension state, while
    /// streaming ingestion only ever mutates fact tables — so rolling back
    /// a failed firing is "take the last published schema state, keep the
    /// master's (possibly further-ingested) fact tables". Panics when the
    /// two cubes do not instantiate the same set of facts.
    pub fn swap_fact_tables(&mut self, other: &mut Cube) {
        assert!(
            self.facts.keys().eq(other.facts.keys()),
            "swap_fact_tables requires cubes over the same facts"
        );
        std::mem::swap(&mut self.facts, &mut other.facts);
    }

    /// Total number of fact rows ever appended across all facts (live and
    /// retracted).
    pub fn total_fact_rows(&self) -> usize {
        self.facts.values().map(|f| f.table.len()).sum()
    }

    /// Total number of live (non-retracted) fact rows across all facts.
    pub fn total_live_fact_rows(&self) -> usize {
        self.facts.values().map(|f| f.table.live_len()).sum()
    }
}

/// Convenience builder that wraps [`Cube::new`] for fluent loading in
/// examples and benchmarks.
#[derive(Debug, Clone)]
pub struct CubeBuilder {
    cube: Cube,
}

impl CubeBuilder {
    /// Starts building a cube for the given schema.
    pub fn new(schema: Schema) -> Self {
        CubeBuilder {
            cube: Cube::new(schema),
        }
    }

    /// Adds a dimension member (panics on schema mismatch — builder misuse
    /// is a programming error in examples/benchmarks).
    pub fn member(mut self, dimension: &str, values: Vec<(&str, CellValue)>) -> Self {
        self.cube
            .add_dimension_member(dimension, values)
            .expect("CubeBuilder::member: invalid dimension or values");
        self
    }

    /// Adds a layer instance.
    pub fn layer_instance(mut self, layer: &str, name: &str, geometry: Geometry) -> Self {
        self.cube
            .add_layer_instance(layer, name, geometry)
            .expect("CubeBuilder::layer_instance: invalid layer");
        self
    }

    /// Adds a fact row.
    pub fn fact(
        mut self,
        fact: &str,
        foreign_keys: Vec<(&str, usize)>,
        measures: Vec<(&str, CellValue)>,
    ) -> Self {
        self.cube
            .add_fact_row(fact, foreign_keys, measures)
            .expect("CubeBuilder::fact: invalid fact row");
        self
    }

    /// Finishes the cube.
    pub fn build(self) -> Cube {
        self.cube
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdwp_geometry::{GeometricType, Point};
    use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new("SalesDW")
            .dimension(
                DimensionBuilder::new("Store")
                    .simple_level("Store", "name")
                    .simple_level("City", "name")
                    .build(),
            )
            .dimension(
                DimensionBuilder::new("Time")
                    .level(
                        "Day",
                        vec![sdwp_model::Attribute::descriptor(
                            "date",
                            AttributeType::Date,
                        )],
                    )
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .measure("StoreCost", AttributeType::Float)
                    .dimension("Store")
                    .dimension("Time")
                    .build(),
            )
            .layer("Airport", GeometricType::Point)
            .build()
            .unwrap()
    }

    fn point(x: f64, y: f64) -> CellValue {
        CellValue::Geometry(Point::new(x, y).into())
    }

    #[test]
    fn cube_tables_follow_schema() {
        let cube = Cube::new(schema());
        let store = cube.dimension_table("Store").unwrap();
        assert!(store.table.column_index("Store.name").is_some());
        assert!(store.table.column_index("City.name").is_some());
        assert!(store.table.column_index("Store.geometry").is_some());
        assert!(store.table.column_index("City.geometry").is_some());
        let sales = cube.fact_table("Sales").unwrap();
        assert!(sales.table.column_index("__fk_Store").is_some());
        assert!(sales.table.column_index("__fk_Time").is_some());
        assert!(sales.table.column_index("UnitSales").is_some());
        assert!(cube.layer_table("Airport").is_ok());
        assert!(cube.dimension_table("Customer").is_err());
        assert!(cube.fact_table("Returns").is_err());
        assert!(cube.layer_table("Train").is_err());
    }

    #[test]
    fn load_members_facts_and_layers() {
        let mut cube = Cube::new(schema());
        let s0 = cube
            .add_dimension_member(
                "Store",
                vec![
                    ("Store.name", CellValue::from("Downtown")),
                    ("City.name", CellValue::from("Alicante")),
                    ("Store.geometry", point(1.0, 1.0)),
                ],
            )
            .unwrap();
        let t0 = cube
            .add_dimension_member("Time", vec![("Day.date", CellValue::Date(100))])
            .unwrap();
        let f0 = cube
            .add_fact_row(
                "Sales",
                vec![("Store", s0), ("Time", t0)],
                vec![("UnitSales", CellValue::Float(12.0))],
            )
            .unwrap();
        assert_eq!((s0, t0, f0), (0, 0, 0));
        assert_eq!(cube.total_fact_rows(), 1);
        assert_eq!(cube.fact_member("Sales", 0, "Store").unwrap(), 0);
        let geom = cube.member_geometry("Store", "Store", 0).unwrap().unwrap();
        assert_eq!(geom.as_point().unwrap().x(), 1.0);
        assert!(cube.member_geometry("Store", "City", 0).unwrap().is_none());
        cube.add_layer_instance("Airport", "ALC", Point::new(5.0, 5.0).into())
            .unwrap();
        assert_eq!(cube.layer_table("Airport").unwrap().table.len(), 1);
    }

    #[test]
    fn upsert_and_retract_fact_rows() {
        let mut cube = Cube::new(schema());
        cube.add_dimension_member("Store", vec![("Store.name", CellValue::from("S0"))])
            .unwrap();
        cube.add_dimension_member("Time", vec![("Day.date", CellValue::Date(0))])
            .unwrap();
        for i in 0..3 {
            cube.add_fact_row(
                "Sales",
                vec![("Store", 0), ("Time", 0)],
                vec![("UnitSales", CellValue::Float(i as f64))],
            )
            .unwrap();
        }
        // Price correction on row 1.
        cube.upsert_fact_cell("Sales", 1, "UnitSales", CellValue::Float(99.0))
            .unwrap();
        assert_eq!(
            cube.fact_table("Sales")
                .unwrap()
                .table
                .get(1, "UnitSales")
                .unwrap(),
            CellValue::Float(99.0)
        );
        // Foreign keys are immutable.
        assert!(cube
            .upsert_fact_cell("Sales", 1, "__fk_Store", CellValue::Integer(0))
            .is_err());
        assert!(cube
            .upsert_fact_cell("Returns", 0, "UnitSales", CellValue::Float(0.0))
            .is_err());
        // Retraction tombstones without shifting ids.
        cube.retract_fact_row("Sales", 0).unwrap();
        assert_eq!(cube.total_fact_rows(), 3);
        assert_eq!(cube.total_live_fact_rows(), 2);
        assert!(cube.retract_fact_row("Returns", 0).is_err());
        assert!(cube
            .upsert_fact_cell("Sales", 0, "UnitSales", CellValue::Float(1.0))
            .is_err());
    }

    #[test]
    fn foreign_keys_are_validated() {
        let mut cube = Cube::new(schema());
        let err = cube
            .add_fact_row("Sales", vec![("Store", 3)], vec![])
            .unwrap_err();
        assert!(matches!(err, OlapError::RowShape { .. }));
        let err2 = cube
            .add_fact_row("Sales", vec![("Ghost", 0)], vec![])
            .unwrap_err();
        assert!(matches!(err2, OlapError::UnknownElement { .. }));
    }

    #[test]
    fn ensure_layer_table_materialises_new_layers() {
        let mut cube = Cube::new(schema());
        assert!(cube.layer_table("Train").is_err());
        cube.ensure_layer_table("Train");
        assert!(cube.layer_table("Train").is_ok());
        assert_eq!(cube.layer_names(), vec!["Airport", "Train"]);
        // Idempotent.
        cube.add_layer_instance("Train", "T1", Point::new(0.0, 0.0).into())
            .unwrap();
        cube.ensure_layer_table("Train");
        assert_eq!(cube.layer_table("Train").unwrap().table.len(), 1);
    }

    #[test]
    fn builder_round_trip() {
        let cube = CubeBuilder::new(schema())
            .member(
                "Store",
                vec![
                    ("Store.name", CellValue::from("Downtown")),
                    ("Store.geometry", point(0.0, 0.0)),
                ],
            )
            .member("Time", vec![("Day.date", CellValue::Date(1))])
            .layer_instance("Airport", "ALC", Point::new(3.0, 4.0).into())
            .fact(
                "Sales",
                vec![("Store", 0), ("Time", 0)],
                vec![("UnitSales", CellValue::Float(5.0))],
            )
            .build();
        assert_eq!(cube.total_fact_rows(), 1);
        assert_eq!(cube.layer_table("Airport").unwrap().table.len(), 1);
    }

    #[test]
    fn fact_compaction_remaps_and_reports_stats() {
        let mut cube = Cube::with_chunk_rows(schema(), 2);
        cube.add_dimension_member("Store", vec![("Store.name", CellValue::from("S0"))])
            .unwrap();
        cube.add_dimension_member("Time", vec![("Day.date", CellValue::Date(0))])
            .unwrap();
        for i in 0..6 {
            cube.add_fact_row(
                "Sales",
                vec![("Store", 0), ("Time", 0)],
                vec![("UnitSales", CellValue::Float(i as f64))],
            )
            .unwrap();
        }
        cube.retract_fact_row("Sales", 0).unwrap();
        cube.retract_fact_row("Sales", 2).unwrap();
        let before = cube.fact_table_stats();
        let sales_before = before.iter().find(|s| s.fact == "Sales").unwrap();
        assert_eq!((sales_before.total_rows, sales_before.live_rows), (6, 4));
        assert!(sales_before.tombstone_ratio > 0.3);
        assert_eq!(sales_before.compactions, 0);

        let remap = cube.compact_fact_table("Sales").unwrap();
        assert_eq!(remap.live_len(), 4);
        assert_eq!(remap.new_id(1), Some(0));
        let table = &cube.fact_table("Sales").unwrap().table;
        assert_eq!((table.len(), table.live_len()), (4, 4));
        // Old row 3 (UnitSales = 3.0) is new row 1.
        assert_eq!(table.get(1, "UnitSales").unwrap(), CellValue::Float(3.0));
        assert_eq!(cube.fact_table("Sales").unwrap().compaction_version(), 1);
        let after = cube.fact_table_stats();
        let sales_after = after.iter().find(|s| s.fact == "Sales").unwrap();
        assert_eq!(sales_after.tombstone_ratio, 0.0);
        assert_eq!(sales_after.compactions, 1);
        assert!(cube.compact_fact_table("Returns").is_err());
        assert_eq!(cube.fact_compaction_versions()["Sales"], 1);
        // Forward translation through the chain: live old ids 1,3,4,5 map
        // to 0..4; dead ids drop out; same-version is the identity.
        assert_eq!(
            cube.translate_fact_rows("Sales", 0, 1, vec![0, 1, 3, 5])
                .unwrap(),
            vec![0, 1, 3]
        );
        assert_eq!(
            cube.translate_fact_rows("Sales", 1, 1, vec![0, 3]).unwrap(),
            vec![0, 3]
        );
        assert!(cube.translate_fact_rows("Returns", 0, 1, vec![0]).is_err());
    }

    #[test]
    fn remap_chain_trimming_keeps_versions_and_drops_prefixes() {
        let mut cube = Cube::with_chunk_rows(schema(), 2);
        cube.add_dimension_member("Store", vec![("Store.name", CellValue::from("S0"))])
            .unwrap();
        cube.add_dimension_member("Time", vec![("Day.date", CellValue::Date(0))])
            .unwrap();
        for i in 0..8 {
            cube.add_fact_row(
                "Sales",
                vec![("Store", 0), ("Time", 0)],
                vec![("UnitSales", CellValue::Float(i as f64))],
            )
            .unwrap();
        }
        // Two compaction rounds: retract 0,1 → compact; retract (new) 0 →
        // compact again. Versions 0→1→2.
        cube.retract_fact_row("Sales", 0).unwrap();
        cube.retract_fact_row("Sales", 1).unwrap();
        cube.compact_fact_table("Sales").unwrap();
        cube.retract_fact_row("Sales", 0).unwrap();
        cube.compact_fact_table("Sales").unwrap();
        let sales = cube.fact_table("Sales").unwrap();
        assert_eq!(sales.compaction_version(), 2);
        assert_eq!(sales.remaps.len(), 2);
        assert_eq!(sales.remaps_from(0).len(), 2);
        assert_eq!(sales.remaps_from(1).len(), 1);

        // Trim the first transition: the version stays 2, the chain
        // shrinks, and translation from version 1 still works.
        assert_eq!(cube.trim_fact_remaps("Sales", 1).unwrap(), 1);
        let sales = cube.fact_table("Sales").unwrap();
        assert_eq!(sales.compaction_version(), 2);
        assert_eq!(sales.remap_base, 1);
        assert_eq!(sales.remaps.len(), 1);
        assert_eq!(sales.remaps_from(1).len(), 1);
        assert_eq!(sales.remaps_from(0).len(), 1, "below-base clamps");
        // Old version-1 row 1 (the second survivor of round one) → new 0.
        assert_eq!(
            cube.translate_fact_rows("Sales", 1, 2, vec![0, 1]).unwrap(),
            vec![0]
        );
        // Trimming is idempotent and clamps to the current version.
        assert_eq!(cube.trim_fact_remaps("Sales", 1).unwrap(), 0);
        assert_eq!(cube.trim_fact_remaps("Sales", 99).unwrap(), 1);
        assert_eq!(cube.fact_table("Sales").unwrap().remap_base, 2);
        assert!(cube.fact_table("Sales").unwrap().remaps.is_empty());
        assert!(cube.trim_fact_remaps("Returns", 0).is_err());
        // The stats gauge reports the retained chain, not the version.
        let stats = cube.fact_table_stats();
        let sales_stats = stats.iter().find(|s| s.fact == "Sales").unwrap();
        assert_eq!(sales_stats.compactions, 2);
        assert_eq!(sales_stats.remap_chain_len, 0);
    }

    #[test]
    fn column_name_helpers() {
        assert_eq!(fk_column("Store"), "__fk_Store");
        assert_eq!(attribute_column("City", "name"), "City.name");
        assert_eq!(geometry_column("City"), "City.geometry");
    }
}
