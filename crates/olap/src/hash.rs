//! A fast, non-cryptographic hasher for the executor's integer-keyed
//! hash tables.
//!
//! The grouped fallback path keys its per-morsel tables by dense-packed
//! integer group ids, and the merge phase re-keys the same ids once per
//! morsel. `std`'s default SipHash is DoS-resistant but wasteful for
//! keys that are already uniformly distributed small integers; this is
//! the classic FxHash multiply-rotate mix (one rotate, one xor, one
//! multiply per word), which hashes a packed group id in a couple of
//! cycles. Never use it for keys an adversary controls — the executor's
//! keys come from the cube's own dictionaries.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed through [`FxHasher`].
pub(crate) type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// The multiplier of the mix: a randomly chosen odd 64-bit constant
/// (the same one the rustc hasher uses), so consecutive integers spread
/// across the whole output range.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-rotate hasher state.
#[derive(Debug, Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_one<T: std::hash::Hash>(value: T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn equal_keys_hash_equal() {
        assert_eq!(hash_one(42u128), hash_one(42u128));
        assert_eq!(hash_one("key"), hash_one("key"));
        assert_eq!(
            hash_one(vec![1u32, 2, 3].into_boxed_slice()),
            hash_one(vec![1u32, 2, 3].into_boxed_slice())
        );
    }

    #[test]
    fn consecutive_integers_spread() {
        // Dense group ids are the common key; the mix must not map
        // consecutive ids to consecutive (same-bucket) hashes.
        let hashes: Vec<u64> = (0u128..64).map(hash_one).collect();
        let mut distinct: Vec<u64> = hashes.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), hashes.len());
        // Low bits (the bucket index) must differ between neighbours.
        let low_collisions = hashes
            .windows(2)
            .filter(|w| w[0] & 0xff == w[1] & 0xff)
            .count();
        assert!(low_collisions < 8, "low bits barely mixed");
    }

    #[test]
    fn map_round_trip() {
        let mut map: FxHashMap<u128, usize> = FxHashMap::default();
        for i in 0..1000u128 {
            map.insert(i, i as usize * 2);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&999), Some(&1998));
    }
}
