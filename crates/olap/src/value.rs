//! Cell values stored in OLAP tables.

use sdwp_geometry::Geometry;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single cell value of a fact or dimension table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellValue {
    /// 64-bit signed integer.
    Integer(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean flag.
    Boolean(bool),
    /// A date as days since 1970-01-01.
    Date(i64),
    /// A geometry (spatial levels, spatial measures, layers).
    Geometry(Geometry),
    /// Missing value.
    Null,
}

impl CellValue {
    /// Numeric view of the value (integers, floats and dates).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            CellValue::Integer(i) => Some(*i as f64),
            CellValue::Float(f) => Some(*f),
            CellValue::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// Text view of the value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            CellValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Geometry view of the value.
    pub fn as_geometry(&self) -> Option<&Geometry> {
        match self {
            CellValue::Geometry(g) => Some(g),
            _ => None,
        }
    }

    /// Boolean view of the value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            CellValue::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns `true` for [`CellValue::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, CellValue::Null)
    }

    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            CellValue::Integer(_) => "integer",
            CellValue::Float(_) => "float",
            CellValue::Text(_) => "text",
            CellValue::Boolean(_) => "boolean",
            CellValue::Date(_) => "date",
            CellValue::Geometry(_) => "geometry",
            CellValue::Null => "null",
        }
    }

    /// Orders two cell values for filters and sorting. Numbers compare
    /// numerically (integers and floats mix), text lexicographically,
    /// booleans false < true; nulls sort first; geometries and mismatched
    /// types are incomparable.
    pub fn compare(&self, other: &CellValue) -> Option<Ordering> {
        use CellValue::*;
        match (self, other) {
            (Null, Null) => Some(Ordering::Equal),
            (Null, _) => Some(Ordering::Less),
            (_, Null) => Some(Ordering::Greater),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
            (Geometry(_), Geometry(_)) => None,
            _ => {
                let a = self.as_number()?;
                let b = other.as_number()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// A stable string key used for grouping (hash aggregation).
    pub fn group_key(&self) -> String {
        match self {
            CellValue::Integer(i) => format!("i{i}"),
            CellValue::Float(f) => format!("f{f}"),
            CellValue::Text(s) => format!("t{s}"),
            CellValue::Boolean(b) => format!("b{b}"),
            CellValue::Date(d) => format!("d{d}"),
            CellValue::Geometry(g) => format!("g{g}"),
            CellValue::Null => "null".to_string(),
        }
    }
}

impl fmt::Display for CellValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellValue::Integer(i) => write!(f, "{i}"),
            CellValue::Float(x) => write!(f, "{x:.3}"),
            CellValue::Text(s) => write!(f, "{s}"),
            CellValue::Boolean(b) => write!(f, "{b}"),
            CellValue::Date(d) => write!(f, "day#{d}"),
            CellValue::Geometry(g) => write!(f, "{g}"),
            CellValue::Null => write!(f, "∅"),
        }
    }
}

impl From<i64> for CellValue {
    fn from(v: i64) -> Self {
        CellValue::Integer(v)
    }
}
impl From<f64> for CellValue {
    fn from(v: f64) -> Self {
        CellValue::Float(v)
    }
}
impl From<&str> for CellValue {
    fn from(v: &str) -> Self {
        CellValue::Text(v.to_string())
    }
}
impl From<String> for CellValue {
    fn from(v: String) -> Self {
        CellValue::Text(v)
    }
}
impl From<bool> for CellValue {
    fn from(v: bool) -> Self {
        CellValue::Boolean(v)
    }
}
impl From<Geometry> for CellValue {
    fn from(v: Geometry) -> Self {
        CellValue::Geometry(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdwp_geometry::Point;

    #[test]
    fn numeric_views() {
        assert_eq!(CellValue::Integer(3).as_number(), Some(3.0));
        assert_eq!(CellValue::Float(2.5).as_number(), Some(2.5));
        assert_eq!(CellValue::Date(10).as_number(), Some(10.0));
        assert_eq!(CellValue::Text("x".into()).as_number(), None);
    }

    #[test]
    fn comparisons() {
        use Ordering::*;
        assert_eq!(
            CellValue::Integer(2).compare(&CellValue::Float(2.5)),
            Some(Less)
        );
        assert_eq!(
            CellValue::Text("a".into()).compare(&CellValue::Text("b".into())),
            Some(Less)
        );
        assert_eq!(CellValue::Null.compare(&CellValue::Integer(0)), Some(Less));
        assert_eq!(CellValue::Null.compare(&CellValue::Null), Some(Equal));
        assert_eq!(
            CellValue::Boolean(false).compare(&CellValue::Boolean(true)),
            Some(Less)
        );
        // Geometry and mismatched types are incomparable.
        let g: Geometry = Point::new(0.0, 0.0).into();
        assert_eq!(
            CellValue::Geometry(g.clone()).compare(&CellValue::Geometry(g)),
            None
        );
        assert_eq!(
            CellValue::Text("a".into()).compare(&CellValue::Integer(1)),
            None
        );
    }

    #[test]
    fn group_keys_distinguish_types() {
        assert_ne!(
            CellValue::Integer(1).group_key(),
            CellValue::Text("1".into()).group_key()
        );
        assert_eq!(CellValue::Null.group_key(), "null");
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(CellValue::from(5i64), CellValue::Integer(5));
        assert_eq!(CellValue::from(2.5f64), CellValue::Float(2.5));
        assert_eq!(CellValue::from("x"), CellValue::Text("x".into()));
        assert_eq!(CellValue::from(true), CellValue::Boolean(true));
        assert_eq!(CellValue::Integer(7).to_string(), "7");
        assert_eq!(CellValue::Null.to_string(), "∅");
        assert!(CellValue::Null.is_null());
        assert_eq!(CellValue::Float(1.0).type_name(), "float");
    }
}
