//! The shared morsel worker pool: engine-lifetime workers, per-tenant
//! (session-class) queues with weighted deficit scheduling, and the
//! admission controller in front of query execution.
//!
//! # Why a pool
//!
//! Before this module, every parallel query paid to spin up its own
//! `std::thread::scope` worker set and all queries contended for cores at
//! equal priority — a heavy analytical tenant could starve a latency-bound
//! dashboard tenant simply by keeping more scans in flight. The pool
//! replaces per-query spawns with N long-lived workers (spawned once,
//! joined on drop) and puts a *scheduler* between queries and workers:
//! each tenant ([`ClassId`]) owns a queue of morsel task sets, and workers
//! pull from the queues by **deficit round-robin** weighted by the
//! tenant's [`TenantPolicy::weight`] — a tenant with weight 4 is served
//! four task items for every one of a weight-1 tenant whenever both have
//! work queued, and an idle tenant costs nothing.
//!
//! # Execution model: caller + helpers
//!
//! A query does not hand its whole scan to the pool and wait. The calling
//! thread *always* scans (so a query makes progress even when every
//! worker is busy with other tenants, and a `workers = 1` configuration
//! never touches the pool), and [`MorselPool::scan`] enqueues up to
//! `helpers` additional task items that let pool workers join the same
//! morsel loop. All participants pull morsel indices from the query's
//! shared atomic counter, so how many helpers actually arrive — zero under
//! saturation, all of them when idle — changes only latency, never
//! results: partials still merge in morsel-index order
//! (see [`crate::engine`]), which the `pool_equivalence` property suite
//! enforces against the scoped executor.
//!
//! When the caller finishes its own loop the morsel counter is exhausted,
//! so still-queued helper items can contribute nothing: they are removed
//! from the queue under the scheduler lock, and the caller waits only for
//! helpers *already running* — which are scanning this query's morsels
//! and must finish before the borrowed stack frames unwind. That wait is
//! what makes the lifetime-erasing submission sound (see the safety
//! comment in [`MorselPool::scan`]).
//!
//! # Admission control
//!
//! [`MorselPool::try_admit`] is the gate in front of execution, mirroring
//! the ingest pipeline's `submit` / `try_submit` split: a tenant whose
//! [`TenantPolicy`] marks it `best_effort` gets an immediate typed
//! [`ShedError`] once its in-flight or queue-depth budget is exhausted
//! (load shedding — the web tier surfaces this as a typed rejection),
//! while a guaranteed tenant blocks until capacity frees (backpressure).
//! The returned [`AdmissionGuard`] releases the slot on drop, so an
//! execution error can never leak budget.
//!
//! # Feedback loop
//!
//! [`MorselPool::rebalance`] closes the loop with the observability
//! layer: it reads each tenant's **windowed** `query_total` latency
//! histogram delta since the previous call (bucket-exact, see
//! `HistogramSnapshot::merge`) and doubles the tenant's effective
//! scheduler share while its p99 misses [`TenantPolicy::target_p99_micros`],
//! decaying back toward the configured weight once the tenant runs
//! comfortably under target. Call it manually, or let
//! [`MorselPool::start_autotune`] run it on an interval.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cancel::CancelToken;
use sdwp_obs::{ClassId, HistogramSnapshot, MetricsRegistry, Stage, MAX_CLASSES};

/// Number of tenant queues the pool schedules between — one per
/// session class the metrics registry can name.
pub const MAX_TENANTS: usize = MAX_CLASSES;

/// Ceiling the rebalance feedback loop may raise a tenant's effective
/// share to, as a multiple of its configured weight.
const MAX_BOOST: u32 = 8;

/// Minimum windowed sample count before `rebalance` trusts a tenant's
/// p99 enough to move its share.
const REBALANCE_MIN_SAMPLES: u64 = 8;

/// Per-tenant scheduling and admission policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Deficit round-robin weight: task items served per scheduling
    /// round relative to other tenants (clamped to at least 1).
    pub weight: u32,
    /// Admission budget: maximum queries of this tenant in flight at
    /// once. `0` means unlimited.
    pub max_in_flight: usize,
    /// Queue-depth budget: maximum helper task items queued for this
    /// tenant. Admission counts it, and `scan` enqueues fewer helpers
    /// rather than growing past it. `0` means unlimited.
    pub max_queued: usize,
    /// Over-budget behaviour: `true` sheds immediately with a typed
    /// [`ShedError`] (mirroring ingest `try_submit`), `false` blocks
    /// until capacity frees (backpressure).
    pub best_effort: bool,
    /// Latency target for the rebalance feedback loop: while the
    /// tenant's windowed `query_total` p99 exceeds this, its effective
    /// share is raised. `0` opts out of rebalancing.
    pub target_p99_micros: u64,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            weight: 1,
            max_in_flight: 0,
            max_queued: 0,
            best_effort: false,
            target_p99_micros: 0,
        }
    }
}

impl TenantPolicy {
    /// Sets the scheduling weight (clamped to at least 1).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Sets the in-flight admission budget (`0` = unlimited).
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Sets the queued-task budget (`0` = unlimited).
    pub fn with_max_queued(mut self, max_queued: usize) -> Self {
        self.max_queued = max_queued;
        self
    }

    /// Marks the tenant best-effort: over-budget admissions shed
    /// instead of blocking.
    pub fn best_effort(mut self) -> Self {
        self.best_effort = true;
        self
    }

    /// Sets the p99 latency target the rebalance loop steers toward
    /// (`0` opts out).
    pub fn with_target_p99_micros(mut self, micros: u64) -> Self {
        self.target_p99_micros = micros;
        self
    }
}

/// Construction parameters of a [`MorselPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolConfig {
    /// Number of long-lived worker threads. `0` sizes to the machine:
    /// available parallelism minus one (the calling thread always
    /// participates in its own scan), at least 1.
    pub workers: usize,
    /// Policy applied to every tenant until
    /// [`MorselPool::set_policy`] overrides it.
    pub default_policy: TenantPolicy,
}

impl PoolConfig {
    /// Sets the worker-thread count (`0` = machine-sized).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the policy tenants start with.
    pub fn with_default_policy(mut self, policy: TenantPolicy) -> Self {
        self.default_policy = policy;
        self
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map_or(1, |n| n.get())
                .saturating_sub(1)
                .max(1)
        }
    }
}

/// Typed admission rejection: the tenant's budget was exhausted and its
/// policy is best-effort. Carries the state observed at the decision so
/// the web tier can surface an actionable rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedError {
    /// The tenant that was shed.
    pub class: ClassId,
    /// Queries of the tenant in flight at the decision.
    pub in_flight: usize,
    /// Helper task items of the tenant queued at the decision.
    pub queued: usize,
    /// The in-flight budget that was exceeded (`0` = unlimited).
    pub max_in_flight: usize,
    /// The queue-depth budget that was exceeded (`0` = unlimited).
    pub max_queued: usize,
}

impl fmt::Display for ShedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query shed: class {} over budget ({} in flight / limit {}, {} queued / limit {})",
            self.class.0, self.in_flight, self.max_in_flight, self.queued, self.max_queued
        )
    }
}

impl std::error::Error for ShedError {}

/// Outcome of the deadline-bounded admission gate
/// [`MorselPool::admit_until`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The tenant is best-effort and over budget: shed immediately.
    Shed(ShedError),
    /// The tenant is guaranteed, but its query's deadline expired while
    /// it was blocked waiting for capacity.
    DeadlineExceeded {
        /// The tenant whose wait timed out.
        class: ClassId,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::Shed(shed) => shed.fmt(f),
            AdmitError::DeadlineExceeded { class } => write!(
                f,
                "query deadline expired while class {} waited for admission",
                class.0
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

/// RAII admission slot from [`MorselPool::try_admit`]: the tenant's
/// in-flight count is released on drop, so no execution path — error or
/// success — can leak budget.
pub struct AdmissionGuard {
    shared: Arc<Shared>,
    tenant: usize,
}

impl fmt::Debug for AdmissionGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdmissionGuard")
            .field("tenant", &self.tenant)
            .finish()
    }
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        let mut inner = self.shared.lock_inner();
        inner.in_flight[self.tenant] -= 1;
        drop(inner);
        self.shared.admit_released.notify_all();
    }
}

/// Scheduler state of one tenant, as reported by [`MorselPool::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant.
    pub class: ClassId,
    /// Helper task items currently queued.
    pub queued: usize,
    /// Admitted queries currently in flight.
    pub in_flight: usize,
    /// Configured scheduling weight.
    pub weight: u32,
    /// Effective share after rebalancing (equals `weight` until the
    /// feedback loop boosts it).
    pub share: u32,
    /// Task items dispatched to workers so far.
    pub dispatched_total: u64,
    /// Admissions shed so far.
    pub shed_total: u64,
}

/// Point-in-time scheduler statistics of the whole pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Long-lived worker threads.
    pub workers: usize,
    /// One entry per tenant slot, index-aligned with [`ClassId`].
    pub tenants: Vec<TenantStats>,
}

/// One query's submission to the pool: the lifetime-erased scan closure
/// plus the completion latch the submitting thread blocks on. Queued
/// `helpers` times; every dispatch runs the same closure (participants
/// share the query's morsel counter).
struct TaskSet {
    /// The scan loop. Really borrows the submitting `scan` call's stack
    /// frame; the `'static` is a lie made sound by `scan` not returning
    /// until `outstanding` reaches zero.
    work: &'static (dyn Fn() + Send + Sync),
    /// The query's cancellation token, when it runs on the cancellable
    /// path: a panicking helper poisons it so the other participants
    /// stop scanning. Borrows the same stack frame as `work`, under the
    /// same soundness argument.
    cancel: Option<&'static CancelToken>,
    tenant: usize,
    enqueued: Instant,
    state: Mutex<TaskState>,
    done: Condvar,
}

struct TaskState {
    /// Queued-or-running items not yet finished. `scan` waits for zero.
    outstanding: usize,
    /// Whether any dispatched item panicked; re-raised by `scan` to
    /// match the scoped executor's behaviour.
    panicked: bool,
}

impl TaskSet {
    /// Marks one dispatched item finished and wakes the submitter when
    /// it was the last.
    fn complete(&self, panicked: bool) {
        let mut state = self.state.lock().expect("task latch poisoned");
        state.panicked |= panicked;
        state.outstanding -= 1;
        if state.outstanding == 0 {
            drop(state);
            self.done.notify_all();
        }
    }
}

/// Scheduler state, all under one mutex. The lock is taken per *task
/// item* (a whole scan-join, milliseconds of work) and per admission —
/// never per morsel — so a single mutex does not contend.
struct PoolInner {
    queues: Vec<VecDeque<Arc<TaskSet>>>,
    /// Deficit round-robin credits; replenished from `shares` when the
    /// cursor visits a backlogged tenant with no credit left.
    deficit: Vec<u32>,
    /// Effective weights the scheduler serves by: the configured
    /// [`TenantPolicy::weight`] times the rebalance boost.
    shares: Vec<u32>,
    policies: Vec<TenantPolicy>,
    in_flight: Vec<usize>,
    /// Cumulative `query_total` histogram at the last rebalance, per
    /// tenant — the baseline the windowed delta is computed against.
    rebalance_seen: Vec<HistogramSnapshot>,
    cursor: usize,
    shutdown: bool,
}

struct Shared {
    inner: Mutex<PoolInner>,
    /// Signalled when task items are queued (workers wait here).
    work_available: Condvar,
    /// Signalled when in-flight or queue capacity frees (blocking
    /// admissions wait here).
    admit_released: Condvar,
    /// Signalled only at shutdown (the autotune thread sleeps here).
    shutdown_cv: Condvar,
    registry: Option<Arc<MetricsRegistry>>,
    dispatched: Vec<AtomicU64>,
    shed: Vec<AtomicU64>,
    workers: usize,
}

impl Shared {
    fn lock_inner(&self) -> MutexGuard<'_, PoolInner> {
        // Worker panics are confined by `catch_unwind` before any pool
        // lock is taken, so poisoning here means a bug in the pool
        // itself — propagate it loudly.
        self.inner.lock().expect("morsel pool scheduler poisoned")
    }
}

/// Picks the next task item by weighted deficit round-robin. Visiting a
/// backlogged tenant with no credit replenishes its deficit from its
/// share, then items are served until the credit or the backlog runs
/// out — so over any busy period tenants are served in proportion to
/// their shares, and idle tenants are skipped for free.
fn next_item(inner: &mut PoolInner) -> Option<Arc<TaskSet>> {
    if inner.queues.iter().all(VecDeque::is_empty) {
        return None;
    }
    loop {
        let t = inner.cursor;
        if inner.queues[t].is_empty() {
            inner.deficit[t] = 0;
            inner.cursor = (t + 1) % MAX_TENANTS;
            continue;
        }
        if inner.deficit[t] == 0 {
            inner.deficit[t] = inner.shares[t].max(1);
        }
        let set = inner.queues[t].pop_front().expect("backlog checked");
        inner.deficit[t] -= 1;
        if inner.queues[t].is_empty() || inner.deficit[t] == 0 {
            inner.deficit[t] = if inner.queues[t].is_empty() {
                0
            } else {
                inner.deficit[t]
            };
            inner.cursor = (t + 1) % MAX_TENANTS;
        }
        return Some(set);
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let set = {
            let mut inner = shared.lock_inner();
            loop {
                if inner.shutdown {
                    return;
                }
                if let Some(set) = next_item(&mut inner) {
                    break set;
                }
                inner = shared
                    .work_available
                    .wait(inner)
                    .expect("morsel pool scheduler poisoned");
            }
        };
        // The queue shrank: a blocking admission bounded by
        // `max_queued` may now proceed.
        shared.admit_released.notify_all();
        if let Some(registry) = &shared.registry {
            registry.record_micros(
                Stage::SchedulerWait,
                ClassId(set.tenant as u8),
                set.enqueued.elapsed().as_micros() as u64,
            );
        }
        shared.dispatched[set.tenant].fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            crate::fail_point!("pool.helper.start");
            (set.work)()
        }));
        if outcome.is_err() {
            // Contain the panic to its query: poison the query's token
            // (cancellable path) so surviving participants stop pulling
            // morsels, and record it on the latch. The worker itself
            // keeps serving other tenants either way.
            if let Some(token) = set.cancel {
                token.poison();
            }
        }
        set.complete(outcome.is_err());
    }
}

/// Runs the calling thread's side of a scan. On the cancellable path a
/// caller panic is contained exactly like a helper panic: the token is
/// poisoned (so helpers stop) and the unwind is swallowed — the
/// executor turns the poisoned token into a typed error.
fn run_participant(cancel: Option<&CancelToken>, work: &(dyn Fn() + Send + Sync)) {
    match cancel {
        None => work(),
        Some(token) => {
            if catch_unwind(AssertUnwindSafe(work)).is_err() {
                token.poison();
            }
        }
    }
}

/// Joins the caller's submission on every exit path: removes
/// still-queued items under the scheduler lock, waits for running ones,
/// and re-raises a helper panic. Being a `Drop` guard makes the wait
/// unconditional even when the caller's own scan panics — without it
/// the unwind would free stack frames helper threads still borrow.
struct ScanJoin<'a> {
    shared: &'a Shared,
    set: &'a Arc<TaskSet>,
    /// Legacy (`scan`) behaviour: re-raise a helper panic in the
    /// submitting thread, matching `thread::scope`. The cancellable
    /// path turns the panic into a poisoned token instead.
    reraise: bool,
}

impl Drop for ScanJoin<'_> {
    fn drop(&mut self) {
        let removed = {
            let mut inner = self.shared.lock_inner();
            let queue = &mut inner.queues[self.set.tenant];
            let before = queue.len();
            queue.retain(|queued| !Arc::ptr_eq(queued, self.set));
            before - queue.len()
        };
        if removed > 0 {
            self.shared.admit_released.notify_all();
        }
        let mut state = self.set.state.lock().expect("task latch poisoned");
        state.outstanding -= removed;
        while state.outstanding > 0 {
            state = self.set.done.wait(state).expect("task latch poisoned");
        }
        if state.panicked && self.reraise && !std::thread::panicking() {
            panic!("morsel worker panicked");
        }
    }
}

/// The shared, engine-lifetime morsel worker pool. See the module docs
/// for the scheduling and admission model. Dropping the pool shuts the
/// workers down and joins them.
pub struct MorselPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    autotune: Mutex<Option<JoinHandle<()>>>,
}

impl fmt::Debug for MorselPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MorselPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl MorselPool {
    /// Creates a pool with no metrics attachment (wait times are not
    /// recorded; shedding is still counted in [`MorselPool::stats`]).
    pub fn new(config: PoolConfig) -> Self {
        Self::build(config, None)
    }

    /// Creates a pool recording scheduler wait times into `registry`
    /// (as [`Stage::SchedulerWait`] keyed by tenant class) and reading
    /// per-tenant `query_total` latencies back out of it in
    /// [`MorselPool::rebalance`].
    pub fn with_registry(config: PoolConfig, registry: Arc<MetricsRegistry>) -> Self {
        Self::build(config, Some(registry))
    }

    fn build(config: PoolConfig, registry: Option<Arc<MetricsRegistry>>) -> Self {
        let workers = config.effective_workers();
        let policy = TenantPolicy {
            weight: config.default_policy.weight.max(1),
            ..config.default_policy
        };
        let shared = Arc::new(Shared {
            inner: Mutex::new(PoolInner {
                queues: (0..MAX_TENANTS).map(|_| VecDeque::new()).collect(),
                deficit: vec![0; MAX_TENANTS],
                shares: vec![policy.weight; MAX_TENANTS],
                policies: vec![policy; MAX_TENANTS],
                in_flight: vec![0; MAX_TENANTS],
                rebalance_seen: vec![HistogramSnapshot::empty(); MAX_TENANTS],
                cursor: 0,
                shutdown: false,
            }),
            work_available: Condvar::new(),
            admit_released: Condvar::new(),
            shutdown_cv: Condvar::new(),
            registry,
            dispatched: (0..MAX_TENANTS).map(|_| AtomicU64::new(0)).collect(),
            shed: (0..MAX_TENANTS).map(|_| AtomicU64::new(0)).collect(),
            workers,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sdwp-morsel-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn morsel pool worker")
            })
            .collect();
        MorselPool {
            shared,
            workers: handles,
            autotune: Mutex::new(None),
        }
    }

    /// Number of long-lived worker threads.
    pub fn worker_count(&self) -> usize {
        self.shared.workers
    }

    /// Replaces a tenant's policy. Resets the tenant's effective share
    /// to the new weight (any rebalance boost is dropped).
    pub fn set_policy(&self, class: ClassId, policy: TenantPolicy) {
        let t = tenant_index(class);
        let normalized = TenantPolicy {
            weight: policy.weight.max(1),
            ..policy
        };
        let mut inner = self.shared.lock_inner();
        inner.policies[t] = normalized;
        inner.shares[t] = normalized.weight;
        drop(inner);
        // A raised budget may unblock a waiting guaranteed admission.
        self.shared.admit_released.notify_all();
    }

    /// A tenant's current policy.
    pub fn policy(&self, class: ClassId) -> TenantPolicy {
        self.shared.lock_inner().policies[tenant_index(class)]
    }

    /// The admission gate. Returns a slot guard when the tenant is
    /// within its in-flight and queue-depth budgets; otherwise sheds
    /// immediately (best-effort tenants) or blocks until capacity frees
    /// (guaranteed tenants — the ingest `submit` analogue).
    pub fn try_admit(&self, class: ClassId) -> Result<AdmissionGuard, ShedError> {
        self.admit_until(class, None).map_err(|error| match error {
            AdmitError::Shed(shed) => shed,
            // Without a deadline the guaranteed branch waits forever.
            AdmitError::DeadlineExceeded { .. } => unreachable!("no deadline was given"),
        })
    }

    /// The deadline-bounded admission gate: like
    /// [`MorselPool::try_admit`], but a *guaranteed* tenant blocks only
    /// until `deadline` — a query whose budget expires while parked in
    /// admission comes back with a typed
    /// [`AdmitError::DeadlineExceeded`] instead of waiting forever.
    pub fn admit_until(
        &self,
        class: ClassId,
        deadline: Option<Instant>,
    ) -> Result<AdmissionGuard, AdmitError> {
        let t = tenant_index(class);
        let mut inner = self.shared.lock_inner();
        loop {
            let policy = inner.policies[t];
            let over_in_flight =
                policy.max_in_flight > 0 && inner.in_flight[t] >= policy.max_in_flight;
            let over_queued = policy.max_queued > 0 && inner.queues[t].len() >= policy.max_queued;
            if !over_in_flight && !over_queued {
                inner.in_flight[t] += 1;
                return Ok(AdmissionGuard {
                    shared: Arc::clone(&self.shared),
                    tenant: t,
                });
            }
            if policy.best_effort {
                self.shared.shed[t].fetch_add(1, Ordering::Relaxed);
                return Err(AdmitError::Shed(ShedError {
                    class: ClassId(t as u8),
                    in_flight: inner.in_flight[t],
                    queued: inner.queues[t].len(),
                    max_in_flight: policy.max_in_flight,
                    max_queued: policy.max_queued,
                }));
            }
            match deadline {
                None => {
                    inner = self
                        .shared
                        .admit_released
                        .wait(inner)
                        .expect("morsel pool scheduler poisoned");
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(AdmitError::DeadlineExceeded {
                            class: ClassId(t as u8),
                        });
                    }
                    let (guard, _timed_out) = self
                        .shared
                        .admit_released
                        .wait_timeout(inner, deadline - now)
                        .expect("morsel pool scheduler poisoned");
                    inner = guard;
                }
            }
        }
    }

    /// Runs `work` on the calling thread and on up to `helpers` pool
    /// workers concurrently; returns once every participant finished.
    ///
    /// `work` is the query's morsel loop: all participants pull from
    /// the same atomic morsel counter, so extra invocations past
    /// exhaustion return immediately and the result is independent of
    /// how many helpers actually ran. Helper items still queued when
    /// the caller's own loop completes are cancelled; a helper panic is
    /// re-raised here, matching `thread::scope`.
    pub fn scan(&self, class: ClassId, helpers: usize, work: &(dyn Fn() + Send + Sync)) {
        self.scan_inner(class, helpers, None, work);
    }

    /// Like [`MorselPool::scan`], but with a shared [`CancelToken`]
    /// instead of `thread::scope` panic semantics: a panicking
    /// participant — helper *or* caller — **poisons the token** rather
    /// than re-raising, the other participants observe it between
    /// morsels and stop, and `scan_cancellable` returns normally. The
    /// caller reads the typed outcome from
    /// [`CancelToken::terminal_error`]; the pool, its scheduler lock
    /// and the tenant's admission slot all stay healthy.
    pub fn scan_cancellable(
        &self,
        class: ClassId,
        helpers: usize,
        cancel: &CancelToken,
        work: &(dyn Fn() + Send + Sync),
    ) {
        self.scan_inner(class, helpers, Some(cancel), work);
    }

    fn scan_inner(
        &self,
        class: ClassId,
        helpers: usize,
        cancel: Option<&CancelToken>,
        work: &(dyn Fn() + Send + Sync),
    ) {
        if helpers == 0 || self.shared.workers == 0 {
            run_participant(cancel, work);
            return;
        }
        // SAFETY: the closure borrows the caller's stack frame, but
        // every queued item is either executed to completion or removed
        // from the queue under the scheduler lock before `scan` returns
        // (`ScanJoin::drop` runs even when `work` unwinds), so no
        // worker can dereference `work` after this frame is gone. The
        // token borrows the same frame under the same argument.
        let work: &'static (dyn Fn() + Send + Sync) = unsafe { std::mem::transmute(work) };
        let cancel: Option<&'static CancelToken> = unsafe { std::mem::transmute(cancel) };
        let t = tenant_index(class);
        let set = Arc::new(TaskSet {
            work,
            cancel,
            tenant: t,
            enqueued: Instant::now(),
            state: Mutex::new(TaskState {
                outstanding: 0,
                panicked: false,
            }),
            done: Condvar::new(),
        });
        let queued = {
            let mut inner = self.shared.lock_inner();
            let policy = inner.policies[t];
            let room = if policy.max_queued == 0 {
                helpers
            } else {
                policy
                    .max_queued
                    .saturating_sub(inner.queues[t].len())
                    .min(helpers)
            };
            if room > 0 {
                set.state.lock().expect("task latch poisoned").outstanding = room;
                for _ in 0..room {
                    inner.queues[t].push_back(Arc::clone(&set));
                }
            }
            room
        };
        if queued == 1 {
            self.shared.work_available.notify_one();
        } else if queued > 1 {
            self.shared.work_available.notify_all();
        }
        let join = ScanJoin {
            shared: &self.shared,
            set: &set,
            reraise: cancel.is_none(),
        };
        run_participant(cancel, work);
        drop(join);
    }

    /// One step of the latency-target feedback loop. For every tenant
    /// with a [`TenantPolicy::target_p99_micros`], reads the
    /// `query_total` histogram delta since the previous call from the
    /// attached registry and steers the tenant's effective share:
    /// doubled (up to `weight × 8`) while the windowed p99 misses the
    /// target, halved back toward the configured weight while it runs
    /// under half the target. Returns the tenants whose share changed.
    /// No-op without a registry.
    pub fn rebalance(&self) -> Vec<(ClassId, u32)> {
        let Some(registry) = &self.shared.registry else {
            return Vec::new();
        };
        let mut changed = Vec::new();
        let mut inner = self.shared.lock_inner();
        for t in 0..MAX_TENANTS {
            let policy = inner.policies[t];
            if policy.target_p99_micros == 0 {
                continue;
            }
            let class = ClassId(t as u8);
            let current = registry.stage_histogram(Stage::QueryTotal, class);
            let seen = &inner.rebalance_seen[t];
            let window = HistogramSnapshot {
                buckets: current
                    .buckets
                    .iter()
                    .zip(seen.buckets.iter().chain(std::iter::repeat(&0)))
                    .map(|(now, then)| now.saturating_sub(*then))
                    .collect(),
                count: current.count.saturating_sub(seen.count),
                sum_micros: current.sum_micros.saturating_sub(seen.sum_micros),
            };
            if window.count < REBALANCE_MIN_SAMPLES {
                continue; // keep accumulating the window
            }
            inner.rebalance_seen[t] = current;
            let p99 = window.quantile(0.99);
            let base = policy.weight.max(1);
            let share = inner.shares[t].max(1);
            let next = if p99 > policy.target_p99_micros {
                (share * 2).min(base * MAX_BOOST)
            } else if p99 * 2 < policy.target_p99_micros {
                (share / 2).max(base)
            } else {
                share
            };
            if next != share {
                inner.shares[t] = next;
                changed.push((class, next));
            }
        }
        changed
    }

    /// Spawns a background controller calling
    /// [`MorselPool::rebalance`] every `interval` until the pool drops.
    /// Idempotent: a second call keeps the first controller.
    pub fn start_autotune(self: &Arc<Self>, interval: Duration) {
        let mut slot = self.autotune.lock().expect("autotune slot poisoned");
        if slot.is_some() {
            return;
        }
        let pool = Arc::clone(self);
        *slot = Some(
            std::thread::Builder::new()
                .name("sdwp-morsel-autotune".to_string())
                .spawn(move || loop {
                    {
                        let inner = pool.shared.lock_inner();
                        if inner.shutdown {
                            return;
                        }
                        let (inner, _) = pool
                            .shared
                            .shutdown_cv
                            .wait_timeout(inner, interval)
                            .expect("morsel pool scheduler poisoned");
                        if inner.shutdown {
                            return;
                        }
                    }
                    pool.rebalance();
                })
                .expect("spawn morsel pool autotune"),
        );
    }

    /// Point-in-time scheduler statistics.
    pub fn stats(&self) -> PoolStats {
        let inner = self.shared.lock_inner();
        let tenants = (0..MAX_TENANTS)
            .map(|t| TenantStats {
                class: ClassId(t as u8),
                queued: inner.queues[t].len(),
                in_flight: inner.in_flight[t],
                weight: inner.policies[t].weight,
                share: inner.shares[t],
                dispatched_total: self.shared.dispatched[t].load(Ordering::Relaxed),
                shed_total: self.shared.shed[t].load(Ordering::Relaxed),
            })
            .collect();
        PoolStats {
            workers: self.shared.workers,
            tenants,
        }
    }
}

impl Drop for MorselPool {
    fn drop(&mut self) {
        self.shared.lock_inner().shutdown = true;
        self.shared.work_available.notify_all();
        self.shared.shutdown_cv.notify_all();
        self.shared.admit_released.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.autotune.lock().expect("autotune slot poisoned").take() {
            let _ = handle.join();
        }
    }
}

/// Clamps a class id onto a tenant queue index (out-of-range ids — the
/// registry never hands these out — alias to the last slot, matching
/// the registry's own histogram clamping).
fn tenant_index(class: ClassId) -> usize {
    (class.0 as usize).min(MAX_TENANTS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize};

    /// Tag appended by a pool *worker* (never by the submitting
    /// thread), so dispatch order is observable.
    fn record_worker(order: &Mutex<Vec<u8>>, tag: u8) {
        let from_pool = std::thread::current()
            .name()
            .is_some_and(|name| name.starts_with("sdwp-morsel-"));
        if from_pool {
            order.lock().unwrap().push(tag);
        }
    }

    #[test]
    fn scan_runs_caller_and_helpers_to_completion() {
        let pool = MorselPool::new(PoolConfig::default().with_workers(3));
        let counter = AtomicUsize::new(0);
        let work = || {
            counter.fetch_add(1, Ordering::Relaxed);
        };
        pool.scan(ClassId::DEFAULT, 3, &work);
        // The caller ran exactly once; helpers ran at most 3 times
        // (cancelled ones not at all).
        let ran = counter.load(Ordering::Relaxed);
        assert!((1..=4).contains(&ran), "ran {ran} times");
    }

    #[test]
    fn helper_panic_is_reraised_like_thread_scope() {
        let pool = MorselPool::new(PoolConfig::default().with_workers(2));
        let armed = AtomicBool::new(true);
        let work = || {
            let is_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("sdwp-morsel-"));
            if is_worker && armed.swap(false, Ordering::Relaxed) {
                panic!("boom");
            }
            if !is_worker {
                // Give the idle workers time to dequeue the helper item
                // before the join cancels it.
                std::thread::sleep(Duration::from_millis(2));
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Keep submitting until a helper actually took the grenade
            // (a queued helper may be cancelled before running); the
            // scan that enqueued the panicking helper re-raises.
            while armed.load(Ordering::Relaxed) {
                pool.scan(ClassId::DEFAULT, 2, &work);
            }
        }));
        assert!(outcome.is_err(), "helper panic must re-raise in scan()");
    }

    #[test]
    fn weighted_scheduling_prefers_heavier_tenant() {
        // One worker, gated: queue items for a weight-1 and a weight-4
        // tenant while the worker is busy, then release the gate and
        // observe the dispatch interleaving.
        let pool = Arc::new(MorselPool::new(PoolConfig::default().with_workers(1)));
        let light = ClassId(1);
        let heavy = ClassId(2);
        pool.set_policy(light, TenantPolicy::default().with_weight(1));
        pool.set_policy(heavy, TenantPolicy::default().with_weight(4));

        let gate = Arc::new((Mutex::new(true), Condvar::new()));
        let order = Arc::new(Mutex::new(Vec::new()));

        // Occupy the single worker until the gate opens. The submitting
        // thread spins until the worker has actually dequeued the item
        // (so its join cannot cancel it), then parks on the latch.
        let gate_scan = {
            let pool = Arc::clone(&pool);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let work = {
                    let pool = Arc::clone(&pool);
                    let gate = Arc::clone(&gate);
                    move || {
                        if std::thread::current()
                            .name()
                            .is_some_and(|n| n.starts_with("sdwp-morsel-"))
                        {
                            let (lock, cv) = &*gate;
                            let mut closed = lock.lock().unwrap();
                            while *closed {
                                closed = cv.wait(closed).unwrap();
                            }
                        } else {
                            while pool.stats().tenants[0].dispatched_total == 0 {
                                std::thread::yield_now();
                            }
                        }
                    }
                };
                pool.scan(ClassId::DEFAULT, 1, &work);
            })
        };
        // Wait until the worker is actually parked inside the gate.
        while pool.stats().tenants[0].dispatched_total == 0 {
            std::thread::yield_now();
        }

        // Submitters queue 6 items each behind the gated worker; their
        // own loop (the caller side) holds the task set open until both
        // queues have fully drained, so no item is cancelled and the
        // recorded dispatch order is exactly the scheduler's.
        let submit = |class: ClassId, tag: u8, items: usize| {
            let pool = Arc::clone(&pool);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                let work = {
                    let pool = Arc::clone(&pool);
                    let order = Arc::clone(&order);
                    move || {
                        record_worker(&order, tag);
                        let caller = !std::thread::current()
                            .name()
                            .is_some_and(|n| n.starts_with("sdwp-morsel-"));
                        if caller {
                            loop {
                                let stats = pool.stats();
                                if stats.tenants[1].queued == 0 && stats.tenants[2].queued == 0 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                };
                pool.scan(class, items, &work);
            })
        };
        let light_scan = submit(light, b'l', 6);
        let heavy_scan = submit(heavy, b'h', 6);
        // Both tenants fully queued behind the gated worker.
        loop {
            let stats = pool.stats();
            if stats.tenants[1].queued == 6 && stats.tenants[2].queued == 6 {
                break;
            }
            std::thread::yield_now();
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = false;
            cv.notify_all();
        }
        gate_scan.join().unwrap();
        light_scan.join().unwrap();
        heavy_scan.join().unwrap();

        let order = order.lock().unwrap();
        assert_eq!(order.len(), 12, "every queued item was dispatched");
        // Weight 4 vs 1: at any prefix of the dispatch order the heavy
        // tenant has been served at least as many items as the light
        // one (give or take the one-item round the cursor may start
        // on), and its backlog drains far earlier than strict
        // alternation would allow.
        let mut light_seen = 0usize;
        let mut heavy_seen = 0usize;
        for &tag in order.iter() {
            match tag {
                b'l' => light_seen += 1,
                b'h' => heavy_seen += 1,
                _ => unreachable!(),
            }
            assert!(
                heavy_seen + 1 >= light_seen,
                "weight-4 tenant fell behind weight-1 tenant: order {:?}",
                String::from_utf8_lossy(&order)
            );
        }
        let last_heavy = order.iter().rposition(|&t| t == b'h').unwrap();
        assert!(
            last_heavy <= 8,
            "weight-4 backlog should drain within 9 dispatches, order {:?}",
            String::from_utf8_lossy(&order)
        );
    }

    #[test]
    fn best_effort_admission_sheds_over_budget() {
        let pool = MorselPool::new(PoolConfig::default().with_workers(1));
        let class = ClassId(3);
        pool.set_policy(
            class,
            TenantPolicy::default().with_max_in_flight(1).best_effort(),
        );
        let first = pool.try_admit(class).expect("within budget");
        let shed = pool.try_admit(class).expect_err("over budget must shed");
        assert_eq!(shed.class, class);
        assert_eq!(shed.in_flight, 1);
        assert_eq!(shed.max_in_flight, 1);
        assert_eq!(pool.stats().tenants[3].shed_total, 1);
        drop(first);
        // Capacity released: admission succeeds again.
        let again = pool.try_admit(class).expect("slot freed");
        drop(again);
    }

    #[test]
    fn guaranteed_admission_blocks_until_capacity_frees() {
        let pool = Arc::new(MorselPool::new(PoolConfig::default().with_workers(1)));
        let class = ClassId(4);
        pool.set_policy(class, TenantPolicy::default().with_max_in_flight(1));
        let held = pool.try_admit(class).expect("within budget");
        let admitted = Arc::new(AtomicBool::new(false));
        let waiter = {
            let pool = Arc::clone(&pool);
            let admitted = Arc::clone(&admitted);
            std::thread::spawn(move || {
                let guard = pool.try_admit(class).expect("guaranteed never sheds");
                admitted.store(true, Ordering::SeqCst);
                drop(guard);
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            !admitted.load(Ordering::SeqCst),
            "guaranteed admission must block while the budget is full"
        );
        drop(held);
        waiter.join().unwrap();
        assert!(admitted.load(Ordering::SeqCst));
    }

    #[test]
    fn rebalance_boosts_missing_tenant_and_decays_back() {
        let registry = Arc::new(MetricsRegistry::new());
        let pool =
            MorselPool::with_registry(PoolConfig::default().with_workers(1), Arc::clone(&registry));
        let class = ClassId(1);
        pool.set_policy(
            class,
            TenantPolicy::default()
                .with_weight(2)
                .with_target_p99_micros(1_000),
        );
        // A window of slow queries: p99 far over the 1 ms target.
        for _ in 0..16 {
            registry.record_micros(Stage::QueryTotal, class, 50_000);
        }
        let changed = pool.rebalance();
        assert_eq!(changed, vec![(class, 4)], "share doubles on a miss");
        // Keep missing: boost saturates at weight × 8.
        for _ in 0..4 {
            for _ in 0..16 {
                registry.record_micros(Stage::QueryTotal, class, 50_000);
            }
            pool.rebalance();
        }
        assert_eq!(pool.stats().tenants[1].share, 16);
        // A fast window decays the share back toward the weight.
        for _ in 0..5 {
            for _ in 0..16 {
                registry.record_micros(Stage::QueryTotal, class, 10);
            }
            pool.rebalance();
        }
        assert_eq!(pool.stats().tenants[1].share, 2, "decays to base weight");
    }

    #[test]
    fn stats_report_queue_and_worker_shape() {
        let pool = MorselPool::new(PoolConfig::default().with_workers(2));
        let stats = pool.stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.tenants.len(), MAX_TENANTS);
        assert!(stats.tenants.iter().all(|t| t.queued == 0));
    }

    #[test]
    fn cancellable_scan_contains_helper_panic_and_balances_stats() {
        let pool = MorselPool::new(PoolConfig::default().with_workers(2));
        let class = ClassId(5);
        let slot = pool.try_admit(class).expect("within budget");
        let token = CancelToken::new();
        let armed = AtomicBool::new(true);
        let work = || {
            let is_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("sdwp-morsel-"));
            if is_worker && armed.swap(false, Ordering::Relaxed) {
                panic!("boom");
            }
            if !is_worker {
                // Give idle workers time to dequeue the helper item
                // before the join cancels it.
                std::thread::sleep(Duration::from_millis(2));
            }
        };
        // Keep submitting until a helper actually took the grenade (a
        // queued item may be cancelled before running). The panic must
        // NOT re-raise here: it poisons the token instead.
        while armed.load(Ordering::Relaxed) {
            pool.scan_cancellable(class, 2, &token, &work);
        }
        assert!(token.is_panicked(), "helper panic poisons the token");
        assert_eq!(
            token.terminal_error(),
            Some(crate::error::OlapError::ExecutionPanicked)
        );
        // The admission slot releases normally — nothing leaked.
        drop(slot);
        let stats = pool.stats();
        let tenant = &stats.tenants[5];
        assert_eq!(
            (tenant.queued, tenant.in_flight),
            (0, 0),
            "panic must leave the scheduler balanced"
        );
        // The pool (and its scheduler mutex) keeps serving.
        let counter = AtomicUsize::new(0);
        pool.scan(class, 2, &|| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert!(counter.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn cancellable_scan_contains_caller_panic() {
        let pool = MorselPool::new(PoolConfig::default().with_workers(1));
        let token = CancelToken::new();
        // Every participant panics — including the calling thread. The
        // call still returns instead of unwinding.
        pool.scan_cancellable(ClassId::DEFAULT, 1, &token, &|| panic!("boom"));
        assert!(token.is_panicked());
    }

    #[test]
    fn admit_until_bounds_a_guaranteed_wait_by_the_deadline() {
        let pool = MorselPool::new(PoolConfig::default().with_workers(1));
        let class = ClassId(6);
        pool.set_policy(class, TenantPolicy::default().with_max_in_flight(1));
        let held = pool.try_admit(class).expect("within budget");
        let err = pool
            .admit_until(class, Some(Instant::now() + Duration::from_millis(20)))
            .expect_err("budget stays full past the deadline");
        assert_eq!(err, AdmitError::DeadlineExceeded { class });
        drop(held);
        let slot = pool
            .admit_until(class, Some(Instant::now() + Duration::from_secs(5)))
            .expect("slot freed well before the deadline");
        drop(slot);
    }
}
