//! Typed columnar storage with dictionary encoding for text.
//!
//! Columns are backed by the chunked copy-on-write storage of
//! [`crate::chunk`]: fixed-size `Arc`-shared chunks, so cloning a column
//! (snapshot publication) is a refcount bump per chunk and a write copies
//! only the chunk it touches. Numeric columns additionally expose their
//! chunks to the vectorised aggregation kernels of [`crate::kernels`].

use crate::chunk::{GeometryColumn, PrimitiveChunk, PrimitiveColumn, DEFAULT_CHUNK_ROWS};
use crate::error::OlapError;
use crate::kernels::{self, NumericAgg};
use crate::value::CellValue;
use sdwp_geometry::Geometry;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// The physical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit integers.
    Integer,
    /// 64-bit floats.
    Float,
    /// Dictionary-encoded text.
    Text,
    /// Booleans.
    Boolean,
    /// Dates (days since epoch).
    Date,
    /// Geometries.
    Geometry,
}

/// A string dictionary: interns strings to dense `u32` codes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dictionary {
    values: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Interns a string, returning its code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = self.values.len() as u32;
        self.values.push(s.to_string());
        self.index.insert(s.to_string(), code);
        code
    }

    /// Looks up the string for a code.
    pub fn resolve(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Looks up the code for a string, if already interned.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied().or_else(|| {
            // Fall back to a scan when the index was lost to serde skip.
            self.values.iter().position(|v| v == s).map(|p| p as u32)
        })
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A typed column of nullable values over chunked copy-on-write storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Integer column.
    Integer(PrimitiveColumn<i64>),
    /// Float column.
    Float(PrimitiveColumn<f64>),
    /// Dictionary-encoded text column.
    Text {
        /// Per-row dictionary codes (null rows carry no code).
        codes: PrimitiveColumn<u32>,
        /// The shared dictionary for this column. `Arc`-shared between a
        /// snapshot and the write master; interning copies it on write.
        dictionary: Arc<Dictionary>,
    },
    /// Boolean column.
    Boolean(PrimitiveColumn<bool>),
    /// Date column (days since epoch).
    Date(PrimitiveColumn<i64>),
    /// Geometry column.
    Geometry(GeometryColumn),
}

impl Column {
    /// Creates an empty column of the given type with the default chunk
    /// size.
    pub fn new(column_type: ColumnType) -> Self {
        Column::with_chunk_rows(column_type, DEFAULT_CHUNK_ROWS)
    }

    /// Creates an empty column of the given type with an explicit chunk
    /// size (rows per chunk, ≥ 1).
    pub fn with_chunk_rows(column_type: ColumnType, chunk_rows: usize) -> Self {
        match column_type {
            ColumnType::Integer => Column::Integer(PrimitiveColumn::new(chunk_rows)),
            ColumnType::Float => Column::Float(PrimitiveColumn::new(chunk_rows)),
            ColumnType::Text => Column::Text {
                codes: PrimitiveColumn::new(chunk_rows),
                dictionary: Arc::new(Dictionary::new()),
            },
            ColumnType::Boolean => Column::Boolean(PrimitiveColumn::new(chunk_rows)),
            ColumnType::Date => Column::Date(PrimitiveColumn::new(chunk_rows)),
            ColumnType::Geometry => Column::Geometry(GeometryColumn::new(chunk_rows)),
        }
    }

    /// The column's physical type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Column::Integer(_) => ColumnType::Integer,
            Column::Float(_) => ColumnType::Float,
            Column::Text { .. } => ColumnType::Text,
            Column::Boolean(_) => ColumnType::Boolean,
            Column::Date(_) => ColumnType::Date,
            Column::Geometry(_) => ColumnType::Geometry,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Integer(v) | Column::Date(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Text { codes, .. } => codes.len(),
            Column::Boolean(v) => v.len(),
            Column::Geometry(v) => v.len(),
        }
    }

    /// Returns `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` when [`Column::push`] / [`Column::set`] would accept
    /// the value (same coercions: integers into float and date columns,
    /// nulls everywhere). Lets callers validate a whole row — or a whole
    /// delta batch — *before* mutating anything, so a failed write can
    /// never leave ragged columns behind.
    pub fn accepts(&self, value: &CellValue) -> bool {
        if matches!(value, CellValue::Null) {
            return true;
        }
        match self {
            Column::Integer(_) => matches!(value, CellValue::Integer(_)),
            Column::Float(_) => matches!(value, CellValue::Float(_) | CellValue::Integer(_)),
            Column::Text { .. } => matches!(value, CellValue::Text(_)),
            Column::Boolean(_) => matches!(value, CellValue::Boolean(_)),
            Column::Date(_) => matches!(value, CellValue::Date(_) | CellValue::Integer(_)),
            Column::Geometry(_) => matches!(value, CellValue::Geometry(_)),
        }
    }

    /// Appends a value, coercing compatible types (integers into float
    /// columns, integers into date columns). Returns an error on an
    /// incompatible value.
    pub fn push(&mut self, value: CellValue) -> Result<(), OlapError> {
        let mismatch = |found: &CellValue, expected: &'static str| OlapError::TypeMismatch {
            expected,
            found: found.type_name().to_string(),
        };
        match self {
            Column::Integer(v) => match value {
                CellValue::Integer(i) => v.push(Some(i)),
                CellValue::Null => v.push(None),
                other => return Err(mismatch(&other, "integer")),
            },
            Column::Float(v) => match value {
                CellValue::Float(f) => v.push(Some(f)),
                CellValue::Integer(i) => v.push(Some(i as f64)),
                CellValue::Null => v.push(None),
                other => return Err(mismatch(&other, "float")),
            },
            Column::Text { codes, dictionary } => match value {
                CellValue::Text(s) => codes.push(Some(Arc::make_mut(dictionary).intern(&s))),
                CellValue::Null => codes.push(None),
                other => return Err(mismatch(&other, "text")),
            },
            Column::Boolean(v) => match value {
                CellValue::Boolean(b) => v.push(Some(b)),
                CellValue::Null => v.push(None),
                other => return Err(mismatch(&other, "boolean")),
            },
            Column::Date(v) => match value {
                CellValue::Date(d) | CellValue::Integer(d) => v.push(Some(d)),
                CellValue::Null => v.push(None),
                other => return Err(mismatch(&other, "date")),
            },
            Column::Geometry(v) => match value {
                CellValue::Geometry(g) => v.push(Some(g)),
                CellValue::Null => v.push(None),
                other => return Err(mismatch(&other, "geometry")),
            },
        }
        Ok(())
    }

    /// Overwrites the value at `row` in place (the ingest path's cell
    /// upsert), with the same coercions as [`Column::push`]. Errors on an
    /// out-of-range row or an incompatible value, leaving the column
    /// untouched. Copy-on-write: only the chunk holding `row` is copied
    /// when it is shared with a published snapshot.
    pub fn set(&mut self, row: usize, value: CellValue) -> Result<(), OlapError> {
        if row >= self.len() {
            return Err(OlapError::RowShape {
                message: format!("row {row} out of range ({} rows)", self.len()),
            });
        }
        if !self.accepts(&value) {
            return Err(OlapError::TypeMismatch {
                expected: match self {
                    Column::Integer(_) => "integer",
                    Column::Float(_) => "float",
                    Column::Text { .. } => "text",
                    Column::Boolean(_) => "boolean",
                    Column::Date(_) => "date",
                    Column::Geometry(_) => "geometry",
                },
                found: value.type_name().to_string(),
            });
        }
        match self {
            Column::Integer(v) => v.set(
                row,
                match value {
                    CellValue::Integer(i) => Some(i),
                    _ => None,
                },
            ),
            Column::Float(v) => v.set(
                row,
                match value {
                    CellValue::Float(f) => Some(f),
                    CellValue::Integer(i) => Some(i as f64),
                    _ => None,
                },
            ),
            Column::Text { codes, dictionary } => codes.set(
                row,
                match value {
                    CellValue::Text(s) => Some(Arc::make_mut(dictionary).intern(&s)),
                    _ => None,
                },
            ),
            Column::Boolean(v) => v.set(
                row,
                match value {
                    CellValue::Boolean(b) => Some(b),
                    _ => None,
                },
            ),
            Column::Date(v) => v.set(
                row,
                match value {
                    CellValue::Date(d) | CellValue::Integer(d) => Some(d),
                    _ => None,
                },
            ),
            Column::Geometry(v) => v.set(
                row,
                match value {
                    CellValue::Geometry(g) => Some(g),
                    _ => None,
                },
            ),
        }
        Ok(())
    }

    /// Reads the value at `row`, returning `CellValue::Null` when the row
    /// is out of range or null.
    pub fn get(&self, row: usize) -> CellValue {
        match self {
            Column::Integer(v) => v
                .get(row)
                .map(CellValue::Integer)
                .unwrap_or(CellValue::Null),
            Column::Float(v) => v.get(row).map(CellValue::Float).unwrap_or(CellValue::Null),
            Column::Text { codes, dictionary } => codes
                .get(row)
                .and_then(|c| dictionary.resolve(c))
                .map(|s| CellValue::Text(s.to_string()))
                .unwrap_or(CellValue::Null),
            Column::Boolean(v) => v
                .get(row)
                .map(CellValue::Boolean)
                .unwrap_or(CellValue::Null),
            Column::Date(v) => v.get(row).map(CellValue::Date).unwrap_or(CellValue::Null),
            Column::Geometry(v) => v
                .get(row)
                .cloned()
                .map(CellValue::Geometry)
                .unwrap_or(CellValue::Null),
        }
    }

    /// Fast numeric accessor used by aggregation.
    pub fn get_number(&self, row: usize) -> Option<f64> {
        match self {
            Column::Integer(v) | Column::Date(v) => v.get(row).map(|i| i as f64),
            Column::Float(v) => v.get(row),
            _ => None,
        }
    }

    /// Borrowed geometry accessor used by spatial filters (avoids cloning).
    pub fn get_geometry(&self, row: usize) -> Option<&Geometry> {
        match self {
            Column::Geometry(v) => v.get(row),
            _ => None,
        }
    }

    /// Typed batch read of a foreign-key column: appends the member ids of
    /// the given (ascending) row indices to `out`. Mirrors
    /// [`crate::Cube::fact_member`]'s semantics value-for-value — the
    /// float round trip (so a pathological negative key clamps to member 0
    /// exactly like the serial reference), the saturation of oversized
    /// ids, and the error on a null or non-integer cell — but touches each
    /// storage chunk once instead of doing a name lookup and a `CellValue`
    /// materialisation per row.
    pub fn gather_members(&self, rows: &[u32], out: &mut Vec<u32>) -> Result<(), OlapError> {
        // The serial reference widens through f64 and casts to usize; the
        // closures keep the exact same clamping for negative or oversized
        // keys (negative → member 0), so a pathological key resolves to
        // the same member on both executors.
        let clamp = |member: f64| (member as usize).min(u32::MAX as usize) as u32;
        out.reserve(rows.len());
        let mut null_row = false;
        match self {
            Column::Integer(column) | Column::Date(column) => {
                for_each_gathered(column, rows, |_, value| match value {
                    Some(member) => out.push(clamp(member as f64)),
                    None => null_row = true,
                });
            }
            Column::Float(column) => {
                for_each_gathered(column, rows, |_, value| match value {
                    Some(member) => out.push(clamp(member)),
                    None => null_row = true,
                });
            }
            other => {
                return Err(OlapError::TypeMismatch {
                    expected: "integer foreign key",
                    found: match other.column_type() {
                        ColumnType::Text => "text",
                        ColumnType::Boolean => "boolean",
                        ColumnType::Geometry => "geometry",
                        _ => "unknown",
                    }
                    .to_string(),
                })
            }
        }
        if null_row {
            return Err(OlapError::TypeMismatch {
                expected: "integer foreign key",
                found: "null".to_string(),
            });
        }
        Ok(())
    }

    /// Gathers the numeric values of the given (ascending) row indices
    /// into `values`, carrying the group slot of each surviving row along
    /// into `out_slots` (`rows` and `slots` are parallel): null rows are
    /// dropped from both, so the grouped kernels downstream run mask-free.
    /// All-valid chunks take a branch-free fast path; chunks with nulls
    /// consult the validity mask per row. Returns `false` (gathering
    /// nothing) for non-numeric columns.
    pub fn gather_numeric(
        &self,
        rows: &[u32],
        slots: &[u32],
        values: &mut Vec<f64>,
        out_slots: &mut Vec<u32>,
    ) -> bool {
        debug_assert_eq!(rows.len(), slots.len());
        match self {
            Column::Integer(column) | Column::Date(column) => {
                for_each_gathered(column, rows, |index, value| {
                    if let Some(v) = value {
                        values.push(v as f64);
                        out_slots.push(slots[index]);
                    }
                });
            }
            Column::Float(column) => {
                for_each_gathered(column, rows, |index, value| {
                    if let Some(v) = value {
                        values.push(v);
                        out_slots.push(slots[index]);
                    }
                });
            }
            _ => return false,
        }
        true
    }

    /// Runs the vectorised SUM/MIN/MAX/COUNT kernel over a row range
    /// (clamped to the column length), one chunk sub-slice at a time, or
    /// `None` for non-numeric columns. All-valid chunks stream through the
    /// bare value slice; chunks with nulls consult the validity mask.
    ///
    /// Observation order is ascending row order, so on exactly
    /// representable data the partial agrees bit-for-bit with feeding each
    /// row through [`crate::aggregate::Accumulator::update`].
    pub fn numeric_agg(&self, rows: Range<usize>) -> Option<NumericAgg> {
        let mut agg = NumericAgg::default();
        match self {
            Column::Integer(column) | Column::Date(column) => {
                for (chunk, local) in column.chunks_in(rows) {
                    let part = match chunk.validity() {
                        None => kernels::agg_i64(&chunk.values()[local]),
                        Some(mask) => {
                            kernels::agg_i64_masked(&chunk.values()[local.clone()], &mask[local])
                        }
                    };
                    agg.merge(&part);
                }
            }
            Column::Float(column) => {
                for (chunk, local) in column.chunks_in(rows) {
                    let part = match chunk.validity() {
                        None => kernels::agg_f64(&chunk.values()[local]),
                        Some(mask) => {
                            kernels::agg_f64_masked(&chunk.values()[local.clone()], &mask[local])
                        }
                    };
                    agg.merge(&part);
                }
            }
            _ => return None,
        }
        Some(agg)
    }
}

/// Drives a gather over the chunk sub-runs covering the (ascending) row
/// indices in `rows`: `visit(index, value)` is called once per row, where
/// `index` is the position in `rows` and `value` is `None` for nulls.
/// Each storage chunk is located once per contiguous run of selected rows
/// inside it, and all-valid chunks skip the per-row validity test.
fn for_each_gathered<T, F>(column: &PrimitiveColumn<T>, rows: &[u32], mut visit: F)
where
    T: Copy + Default + PartialEq,
    F: FnMut(usize, Option<T>),
{
    let chunk_rows = column.chunk_rows();
    let chunks = column.chunks();
    let mut i = 0;
    while i < rows.len() {
        let chunk_index = rows[i] as usize / chunk_rows;
        let chunk: &PrimitiveChunk<T> = &chunks[chunk_index];
        let base = chunk_index * chunk_rows;
        let chunk_end = (base + chunk.len()) as u32;
        let run_start = i;
        while i < rows.len() && rows[i] < chunk_end {
            i += 1;
        }
        let values = chunk.values();
        match chunk.validity() {
            None => {
                for (j, &row) in rows[run_start..i].iter().enumerate() {
                    visit(run_start + j, Some(values[row as usize - base]));
                }
            }
            Some(mask) => {
                for (j, &row) in rows[run_start..i].iter().enumerate() {
                    let local = row as usize - base;
                    visit(run_start + j, mask[local].then(|| values[local]));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdwp_geometry::Point;

    #[test]
    fn dictionary_interning() {
        let mut d = Dictionary::new();
        assert!(d.is_empty());
        let a = d.intern("Alicante");
        let b = d.intern("Madrid");
        let a2 = d.intern("Alicante");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.resolve(a), Some("Alicante"));
        assert_eq!(d.resolve(99), None);
        assert_eq!(d.code_of("Madrid"), Some(b));
        assert_eq!(d.code_of("Valencia"), None);
    }

    #[test]
    fn typed_push_and_get() {
        let mut c = Column::new(ColumnType::Integer);
        c.push(CellValue::Integer(5)).unwrap();
        c.push(CellValue::Null).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), CellValue::Integer(5));
        assert_eq!(c.get(1), CellValue::Null);
        assert_eq!(c.get(9), CellValue::Null);
        assert!(c.push(CellValue::Text("x".into())).is_err());
        assert_eq!(c.column_type(), ColumnType::Integer);
    }

    #[test]
    fn float_column_accepts_integers() {
        let mut c = Column::new(ColumnType::Float);
        c.push(CellValue::Integer(2)).unwrap();
        c.push(CellValue::Float(1.5)).unwrap();
        assert_eq!(c.get_number(0), Some(2.0));
        assert_eq!(c.get_number(1), Some(1.5));
    }

    #[test]
    fn text_column_round_trips_through_dictionary() {
        let mut c = Column::new(ColumnType::Text);
        c.push(CellValue::from("Alicante")).unwrap();
        c.push(CellValue::from("Madrid")).unwrap();
        c.push(CellValue::from("Alicante")).unwrap();
        c.push(CellValue::Null).unwrap();
        assert_eq!(c.get(0), CellValue::Text("Alicante".into()));
        assert_eq!(c.get(2), CellValue::Text("Alicante".into()));
        assert_eq!(c.get(3), CellValue::Null);
        if let Column::Text { dictionary, .. } = &c {
            assert_eq!(dictionary.len(), 2);
        } else {
            panic!("expected text column");
        }
    }

    #[test]
    fn text_dictionary_is_copy_on_write() {
        let mut c = Column::new(ColumnType::Text);
        c.push(CellValue::from("a")).unwrap();
        let snapshot = c.clone();
        c.push(CellValue::from("b")).unwrap();
        // The snapshot's dictionary is unaffected by the later intern.
        if let (Column::Text { dictionary: d1, .. }, Column::Text { dictionary: d2, .. }) =
            (&snapshot, &c)
        {
            assert_eq!(d1.len(), 1);
            assert_eq!(d2.len(), 2);
        } else {
            panic!("expected text columns");
        }
        assert_eq!(snapshot.get(0), CellValue::Text("a".into()));
    }

    #[test]
    fn geometry_column() {
        let mut c = Column::new(ColumnType::Geometry);
        let g: Geometry = Point::new(1.0, 2.0).into();
        c.push(CellValue::Geometry(g.clone())).unwrap();
        c.push(CellValue::Null).unwrap();
        assert_eq!(c.get_geometry(0), Some(&g));
        assert_eq!(c.get_geometry(1), None);
        assert!(c.push(CellValue::Integer(1)).is_err());
    }

    #[test]
    fn accepts_mirrors_push() {
        let mut f = Column::new(ColumnType::Float);
        assert!(f.accepts(&CellValue::Float(1.0)));
        assert!(f.accepts(&CellValue::Integer(1)));
        assert!(f.accepts(&CellValue::Null));
        assert!(!f.accepts(&CellValue::from("x")));
        assert!(f.push(CellValue::Integer(1)).is_ok());
        let t = Column::new(ColumnType::Text);
        assert!(t.accepts(&CellValue::from("x")));
        assert!(!t.accepts(&CellValue::Float(1.0)));
    }

    #[test]
    fn set_overwrites_in_place() {
        let mut c = Column::new(ColumnType::Float);
        c.push(CellValue::Float(1.0)).unwrap();
        c.push(CellValue::Float(2.0)).unwrap();
        c.set(1, CellValue::Float(9.5)).unwrap();
        assert_eq!(c.get(1), CellValue::Float(9.5));
        c.set(0, CellValue::Null).unwrap();
        assert_eq!(c.get(0), CellValue::Null);
        // Integer coercion, like push.
        c.set(0, CellValue::Integer(3)).unwrap();
        assert_eq!(c.get(0), CellValue::Float(3.0));
        assert!(c.set(5, CellValue::Float(0.0)).is_err());
        assert!(c.set(0, CellValue::from("x")).is_err());
        // The failed set left the previous value in place.
        assert_eq!(c.get(0), CellValue::Float(3.0));

        let mut t = Column::new(ColumnType::Text);
        t.push(CellValue::from("old")).unwrap();
        t.set(0, CellValue::from("new")).unwrap();
        assert_eq!(t.get(0), CellValue::Text("new".into()));
    }

    #[test]
    fn boolean_and_date_columns() {
        let mut b = Column::new(ColumnType::Boolean);
        b.push(CellValue::Boolean(true)).unwrap();
        assert_eq!(b.get(0), CellValue::Boolean(true));
        assert!(b.push(CellValue::Float(0.0)).is_err());

        let mut d = Column::new(ColumnType::Date);
        d.push(CellValue::Date(100)).unwrap();
        d.push(CellValue::Integer(200)).unwrap();
        assert_eq!(d.get(1), CellValue::Date(200));
        assert_eq!(d.get_number(0), Some(100.0));
    }

    #[test]
    fn gather_members_matches_per_row_fk_reads() {
        let mut fk = Column::with_chunk_rows(ColumnType::Integer, 3);
        for v in [2i64, 0, 5, 1, 4, 0, 3] {
            fk.push(CellValue::Integer(v)).unwrap();
        }
        let rows = [0u32, 2, 3, 6];
        let mut out = Vec::new();
        fk.gather_members(&rows, &mut out).unwrap();
        assert_eq!(out, vec![2, 5, 1, 3]);
        // Negative keys clamp to member 0 exactly like the serial cast.
        let mut weird = Column::new(ColumnType::Integer);
        weird.push(CellValue::Integer(-7)).unwrap();
        let mut out = Vec::new();
        weird.gather_members(&[0], &mut out).unwrap();
        assert_eq!(out, vec![0]);
        // Null keys error like `Cube::fact_member`.
        let mut nullable = Column::new(ColumnType::Integer);
        nullable.push(CellValue::Null).unwrap();
        let err = nullable.gather_members(&[0], &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("integer foreign key"));
        // Non-numeric columns error with the serial reference's wording.
        let mut text = Column::new(ColumnType::Text);
        text.push(CellValue::from("x")).unwrap();
        assert!(text.gather_members(&[0], &mut Vec::new()).is_err());
    }

    #[test]
    fn gather_numeric_drops_nulls_and_keeps_slots_parallel() {
        let mut c = Column::with_chunk_rows(ColumnType::Float, 2);
        for v in [
            Some(1.0),
            None,
            Some(3.0),
            Some(4.0),
            None,
            Some(6.0),
            Some(7.0),
        ] {
            c.push(v.map(CellValue::Float).unwrap_or(CellValue::Null))
                .unwrap();
        }
        let rows = [0u32, 1, 3, 4, 6];
        let slots = [10u32, 11, 12, 13, 14];
        let mut values = Vec::new();
        let mut out_slots = Vec::new();
        assert!(c.gather_numeric(&rows, &slots, &mut values, &mut out_slots));
        assert_eq!(values, vec![1.0, 4.0, 7.0]);
        assert_eq!(out_slots, vec![10, 12, 14]);
        // Integer columns widen like get_number.
        let mut i = Column::with_chunk_rows(ColumnType::Integer, 3);
        for v in [1i64, 2, 3] {
            i.push(CellValue::Integer(v)).unwrap();
        }
        values.clear();
        out_slots.clear();
        assert!(i.gather_numeric(&[1, 2], &[0, 1], &mut values, &mut out_slots));
        assert_eq!(values, vec![2.0, 3.0]);
        // Non-numeric columns decline.
        let t = Column::new(ColumnType::Text);
        assert!(!t.gather_numeric(&[], &[], &mut values, &mut out_slots));
    }

    #[test]
    fn numeric_agg_matches_per_row_reads() {
        let mut c = Column::with_chunk_rows(ColumnType::Float, 3);
        let values = [
            Some(1.25),
            None,
            Some(-2.5),
            Some(0.75),
            None,
            None,
            Some(8.0),
        ];
        for v in values {
            c.push(v.map(CellValue::Float).unwrap_or(CellValue::Null))
                .unwrap();
        }
        // Boundary-straddling range 1..6 covers parts of three chunks.
        let agg = c.numeric_agg(1..6).unwrap();
        assert_eq!(agg.count, 2);
        assert_eq!(agg.sum, -2.5 + 0.75);
        assert_eq!((agg.min, agg.max), (Some(-2.5), Some(0.75)));
        // Full range, clamped past the end.
        let full = c.numeric_agg(0..99).unwrap();
        assert_eq!(full.count, 4);
        // Non-numeric columns have no kernel.
        let t = Column::new(ColumnType::Text);
        assert!(t.numeric_agg(0..1).is_none());
        // Integer kernel widens like get_number.
        let mut i = Column::with_chunk_rows(ColumnType::Integer, 2);
        for v in [Some(1), Some(2), None, Some(-7)] {
            i.push(v.map(CellValue::Integer).unwrap_or(CellValue::Null))
                .unwrap();
        }
        let ia = i.numeric_agg(0..4).unwrap();
        assert_eq!((ia.count, ia.sum, ia.min), (3, -4.0, Some(-7.0)));
    }
}
