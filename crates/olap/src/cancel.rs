//! Cooperative query cancellation: a shared token scan loops check
//! between morsels.
//!
//! A [`CancelToken`] is created per query execution and shared (by
//! reference) between the calling thread and every pool helper joining
//! the same morsel loop. It carries two things:
//!
//! - an optional **deadline**: the first participant to observe the
//!   clock past it trips the token, and every later check fails fast
//!   without reading the clock again;
//! - a **poison flag**: when a helper panics mid-morsel, the pool
//!   poisons the token so the surviving participants stop pulling
//!   morsels instead of scanning to completion for a result that can no
//!   longer be merged.
//!
//! Checks are one relaxed atomic load plus (while live, with a deadline)
//! one monotonic clock read per morsel — morsels are thousands of rows,
//! so the cost vanishes. Crucially the token is *terminal-state* based,
//! not clock based: once every morsel has been scanned, a deadline that
//! expires during merge no longer fails the query (the work is done;
//! throwing it away helps nobody). The executors therefore check
//! [`CancelToken::terminal_error`] after the scan instead of re-checking
//! the clock.

use crate::error::OlapError;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

const LIVE: u8 = 0;
const DEADLINE: u8 = 1;
const PANICKED: u8 = 2;

/// Shared cancellation state of one query execution. See the module
/// docs for the checking discipline.
#[derive(Debug)]
pub struct CancelToken {
    deadline: Option<Instant>,
    state: AtomicU8,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token with no deadline: it only trips if poisoned by a panic.
    pub fn new() -> Self {
        Self::with_deadline(None)
    }

    /// A token that trips once the monotonic clock passes `deadline`.
    pub fn with_deadline(deadline: Option<Instant>) -> Self {
        CancelToken {
            deadline,
            state: AtomicU8::new(LIVE),
        }
    }

    /// The deadline this token enforces, if any (admission waits bound
    /// their `wait_timeout` against it).
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The per-morsel check: `Ok(())` while the query should keep
    /// scanning, a typed error once it should stop. The first caller to
    /// observe an expired deadline trips the token for everyone.
    #[inline]
    pub fn check(&self) -> Result<(), OlapError> {
        match self.state.load(Ordering::Relaxed) {
            LIVE => {}
            DEADLINE => return Err(OlapError::DeadlineExceeded),
            _ => return Err(OlapError::ExecutionPanicked),
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                let _ = self.state.compare_exchange(
                    LIVE,
                    DEADLINE,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                return Err(OlapError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Marks the token panicked: a participant unwound mid-morsel, so
    /// the morsel set can no longer be completed. Panic dominates a
    /// concurrent deadline trip — the stronger diagnosis wins.
    pub fn poison(&self) {
        self.state.store(PANICKED, Ordering::Release);
    }

    /// Whether a participant panicked.
    pub fn is_panicked(&self) -> bool {
        self.state.load(Ordering::Acquire) == PANICKED
    }

    /// The terminal outcome, if the token tripped: what the executor
    /// returns after the scan joined. `None` means the query ran (and
    /// merged) to completion — an expired deadline observed by *no*
    /// scan participant does not fail the query.
    pub fn terminal_error(&self) -> Option<OlapError> {
        match self.state.load(Ordering::Acquire) {
            LIVE => None,
            DEADLINE => Some(OlapError::DeadlineExceeded),
            _ => Some(OlapError::ExecutionPanicked),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn live_token_checks_clean() {
        let token = CancelToken::new();
        assert!(token.check().is_ok());
        assert_eq!(token.terminal_error(), None);
        assert!(!token.is_panicked());
    }

    #[test]
    fn expired_deadline_trips_for_every_later_check() {
        let token = CancelToken::with_deadline(Some(Instant::now() - Duration::from_millis(1)));
        assert_eq!(token.check(), Err(OlapError::DeadlineExceeded));
        // Later checks fail from state alone, deadline or not.
        assert_eq!(token.check(), Err(OlapError::DeadlineExceeded));
        assert_eq!(token.terminal_error(), Some(OlapError::DeadlineExceeded));
    }

    #[test]
    fn unexpired_deadline_stays_live() {
        let token = CancelToken::with_deadline(Some(Instant::now() + Duration::from_secs(60)));
        assert!(token.check().is_ok());
        assert_eq!(token.terminal_error(), None);
    }

    #[test]
    fn poison_dominates_deadline() {
        let token = CancelToken::with_deadline(Some(Instant::now() - Duration::from_millis(1)));
        let _ = token.check(); // trips DEADLINE first
        token.poison();
        assert!(token.is_panicked());
        assert_eq!(token.check(), Err(OlapError::ExecutionPanicked));
        assert_eq!(token.terminal_error(), Some(OlapError::ExecutionPanicked));
    }
}
