//! Cached dense group-key dictionaries.
//!
//! Building a group-key dictionary walks the whole dimension table —
//! O(members) per group-by attribute per query. But the dictionary
//! depends only on the dimension table, which changes far less often
//! than queries arrive: ingest epochs touch fact tables only, and even
//! schema personalization grows dimensions additively per publish. So
//! the serving layer keeps a [`GroupDictCache`] next to its result
//! cache: dictionaries are cached per (snapshot generation, group-by
//! attribute) and shared by every query — and every member of a query
//! batch — until the generation moves on.
//!
//! Invalidation mirrors the result cache's split: publishes that
//! provably leave dimension tables untouched (ingest epochs, fact
//! compaction) [`advance`](GroupDictCache::advance) the generation and
//! keep every entry; publishes that may have changed dimensions (rule
//! firing) [`invalidate`](GroupDictCache::invalidate) and flush. A
//! lookup at a generation *newer* than the cache's conservatively
//! flushes too — the cache cannot prove what that publish changed.

use crate::column::Column;
use crate::cube::{attribute_column, Cube};
use crate::error::OlapError;
use crate::hash::FxHashMap;
use crate::query::AttributeRef;
use crate::value::CellValue;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Dense id every group-key dictionary reserves for the `Null` key
/// value.
pub(crate) const NULL_KEY: u32 = 0;

/// The dimension-side half of a group-key dictionary: member row id →
/// dense key id, plus the key `CellValue` per dense id. Depends only on
/// the dimension table — never on the fact — so one instance can back
/// the same group-by attribute in every query against a snapshot.
#[derive(Debug)]
pub(crate) struct GroupKeys {
    /// Member row id → dense key id. Members sharing an attribute value
    /// (the serial reference collapses them by `CellValue::group_key`)
    /// share a dense id.
    pub(crate) member_to_key: Vec<u32>,
    /// Dense key id → the key `CellValue`, resolved once here and read
    /// back only at finalisation. Entry 0 is reserved for `Null`, which
    /// is also what the serial reference reads for an out-of-range
    /// member.
    pub(crate) key_values: Vec<CellValue>,
}

impl GroupKeys {
    /// Walks one group-by attribute's dimension table into a dense
    /// dictionary. Deterministic: rebuilding over the same table yields
    /// the same ids (and, for a broken attribute, the same error), so a
    /// cached and a freshly built dictionary are interchangeable.
    pub(crate) fn build(cube: &Cube, attr: &AttributeRef) -> Result<GroupKeys, OlapError> {
        let table = &cube.dimension_table(&attr.dimension)?.table;
        let column = table.column(&attribute_column(&attr.level, &attr.attribute))?;
        // Text attributes are already dictionary-encoded in storage, and
        // the interner guarantees distinct codes ↔ distinct strings —
        // exactly the grouping identity `group_key` provides — so the
        // dense dictionary is the storage dictionary shifted by the
        // reserved null id, with no per-member string materialisation at
        // all.
        if let Column::Text { codes, dictionary } = column {
            let mut key_values = Vec::with_capacity(dictionary.len() + 1);
            key_values.push(CellValue::Null);
            for code in 0..dictionary.len() as u32 {
                let text = dictionary.resolve(code).expect("codes are dense");
                key_values.push(CellValue::Text(text.to_string()));
            }
            let member_to_key = (0..table.len())
                .map(|member| codes.get(member).map_or(NULL_KEY, |code| code + 1))
                .collect();
            return Ok(GroupKeys {
                member_to_key,
                key_values,
            });
        }
        let mut key_values = vec![CellValue::Null];
        let mut interned: HashMap<String, u32> = HashMap::new();
        interned.insert(CellValue::Null.group_key(), NULL_KEY);
        let mut member_to_key = Vec::with_capacity(table.len());
        for member in 0..table.len() {
            let cell = column.get(member);
            let dense = match interned.entry(cell.group_key()) {
                Entry::Occupied(entry) => *entry.get(),
                Entry::Vacant(entry) => {
                    let dense = key_values.len() as u32;
                    key_values.push(cell);
                    entry.insert(dense);
                    dense
                }
            };
            member_to_key.push(dense);
        }
        Ok(GroupKeys {
            member_to_key,
            key_values,
        })
    }
}

/// The cache key of one group-by attribute.
pub(crate) fn attr_key(attr: &AttributeRef) -> (String, String, String) {
    (
        attr.dimension.clone(),
        attr.level.clone(),
        attr.attribute.clone(),
    )
}

/// Counters describing a dictionary cache's behaviour so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DictCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the dictionary.
    pub misses: u64,
    /// Dictionaries currently stored.
    pub entries: usize,
    /// Dictionaries dropped because their generation became stale.
    pub invalidations: u64,
}

#[derive(Debug, Default)]
struct DictInner {
    /// The snapshot generation the stored dictionaries are valid for.
    generation: u64,
    entries: FxHashMap<(String, String, String), Arc<GroupKeys>>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl DictInner {
    fn flush(&mut self) {
        self.invalidations += self.entries.len() as u64;
        self.entries.clear();
    }
}

/// A thread-safe cache of group-key dictionaries, keyed by (snapshot
/// generation, group-by attribute). One instance lives next to each
/// cube's result cache; the executor consults it through
/// `QueryEngine::execute_with_view_cached` /
/// `QueryEngine::execute_batch_cached`.
#[derive(Debug, Default)]
pub struct GroupDictCache {
    inner: Mutex<DictInner>,
}

impl GroupDictCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        GroupDictCache::default()
    }

    /// Advances the valid generation after a publish that provably left
    /// every dimension table untouched (an ingest epoch, a fact-table
    /// compaction): the stored dictionaries stay correct, so they keep
    /// hitting at the new generation.
    pub fn advance(&self, generation: u64) {
        let mut inner = self.inner.lock().expect("dict cache poisoned");
        inner.generation = inner.generation.max(generation);
    }

    /// Advances the valid generation after a publish that may have
    /// changed dimension tables (rule-driven personalization): every
    /// stored dictionary is flushed.
    pub fn invalidate(&self, generation: u64) {
        let mut inner = self.inner.lock().expect("dict cache poisoned");
        inner.flush();
        inner.generation = inner.generation.max(generation);
    }

    /// Returns the attribute's dictionary for `generation`, building it
    /// from `cube` on a miss (outside the lock — builds walk whole
    /// dimension tables). A lookup at a newer generation than the
    /// cache's flushes first: the cache cannot prove what that publish
    /// changed. A lookup at an *older* generation (a query pinned to an
    /// old snapshot racing a publish) builds uncached instead of
    /// poisoning newer entries.
    pub(crate) fn get_or_build(
        &self,
        generation: u64,
        cube: &Cube,
        attr: &AttributeRef,
    ) -> Result<Arc<GroupKeys>, OlapError> {
        let key = attr_key(attr);
        {
            let mut inner = self.inner.lock().expect("dict cache poisoned");
            if generation > inner.generation {
                inner.flush();
                inner.generation = generation;
            }
            if generation == inner.generation {
                if let Some(keys) = inner.entries.get(&key).map(Arc::clone) {
                    inner.hits += 1;
                    return Ok(keys);
                }
            }
            inner.misses += 1;
        }
        let keys = Arc::new(GroupKeys::build(cube, attr)?);
        let mut inner = self.inner.lock().expect("dict cache poisoned");
        if generation == inner.generation {
            // A racing builder may have inserted first; keep whichever
            // is stored (both were built from the same snapshot).
            inner
                .entries
                .entry(key)
                .or_insert_with(|| Arc::clone(&keys));
        }
        Ok(keys)
    }

    /// A snapshot of the cache's counters.
    pub fn stats(&self) -> DictCacheStats {
        let inner = self.inner.lock().expect("dict cache poisoned");
        DictCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.entries.len(),
            invalidations: inner.invalidations,
        }
    }
}
