//! An in-memory spatial OLAP engine (the SDW substrate).
//!
//! The paper assumes a spatial data warehouse platform underneath its
//! personalization layer: something that stores fact and dimension
//! instances for an MD/GeoMD schema, evaluates spatial predicates, and
//! answers aggregate (OLAP) queries. This crate is that substrate, built
//! from scratch:
//!
//! * [`Column`] / [`Table`] — typed columnar storage with dictionary
//!   encoding for text, over fixed-size `Arc`-shared copy-on-write
//!   chunks ([`chunk`]) so snapshot clones share every clean chunk, plus
//!   tombstone compaction ([`Table::compact`] / [`RowRemap`]) that
//!   rewrites live rows and remaps stable row ids;
//! * [`kernels`] — vectorised per-chunk SUM/MIN/MAX/COUNT/AVG slice
//!   kernels the morsel executor pushes numeric aggregation down to,
//!   plus grouped per-slot kernels fed by dense group ids and selection
//!   vectors (no string keys anywhere on the parallel grouped path);
//! * [`Cube`] — a star-schema instance bound to an [`sdwp_model::Schema`]:
//!   one dimension table per dimension (leaf grain, one column per level
//!   attribute plus per-level geometry columns), layer tables for GeoMD
//!   layers, and a fact table with foreign keys and measures;
//! * [`Filter`] — boolean and spatial predicates over dimension members and
//!   facts;
//! * [`Query`] / [`QueryEngine`] — morsel-parallel group-by aggregation
//!   (roll-up, slice, dice) with optional [`InstanceView`] restriction:
//!   fixed-size fact-row chunks are filtered and partially aggregated on
//!   scoped worker threads ([`ExecutionConfig`] sets the worker count and
//!   morsel size), then the partial [`aggregate::Accumulator`] states are
//!   merged in morsel order, so results are identical for any worker
//!   count;
//! * [`QueryCache`] — a snapshot-generation-keyed result cache the serving
//!   layer puts in front of the executor;
//! * [`InstanceView`] — the personalized selection produced by the paper's
//!   `SelectInstance` action: a subset of dimension members / fact rows
//!   that every subsequent query is evaluated through;
//! * [`spatial`] — R-tree-accelerated within-distance and predicate
//!   selection over dimension geometry columns.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod cache;
pub mod cancel;
pub mod chunk;
pub mod column;
pub mod cube;
pub mod dicts;
pub mod engine;
pub mod error;
#[cfg(feature = "failpoints")]
pub mod fault;
pub mod filter;
mod hash;
pub mod kernels;
pub mod pool;
pub mod query;
pub mod spatial;
pub mod table;
pub mod value;
pub mod view;

pub use cache::{CacheKey, CacheStats, QueryCache};
pub use cancel::CancelToken;
pub use chunk::DEFAULT_CHUNK_ROWS;
pub use column::{Column, ColumnType, Dictionary};
pub use cube::{Cube, CubeBuilder, DimensionTable, FactTable, FactTableStats, LayerTable};
pub use dicts::{DictCacheStats, GroupDictCache};
pub use engine::{
    ExecutionConfig, QueryEngine, QueryObs, DEFAULT_GROUP_SLOT_LIMIT, DEFAULT_MORSEL_ROWS,
};
pub use error::OlapError;
pub use filter::{CompareOp, Filter, SpatialPredicateOp};
pub use kernels::NumericAgg;
pub use pool::{
    AdmissionGuard, AdmitError, MorselPool, PoolConfig, PoolStats, ShedError, TenantPolicy,
    TenantStats, MAX_TENANTS,
};
pub use query::{AttributeRef, MeasureRef, Query, QueryResult, ResultRow};
pub use table::{RowRemap, Table};
pub use value::CellValue;
pub use view::{InstanceView, ResolvedViewCheck};

/// Evaluates a named failpoint (see [`fault`]) — a zero-cost no-op
/// unless the invoking crate's `failpoints` feature is enabled.
///
/// Two forms:
///
/// ```ignore
/// fail_point!("pool.helper.start");              // panic / sleep only
/// fail_point!("ingest.apply", |msg: String| {    // injected errors
///     Err(IngestError::from_injected(msg))
/// });
/// ```
///
/// The second form `return`s the handler's value from the enclosing
/// function when the armed action is [`fault::FailAction::Error`].
///
/// The `#[cfg]` inside the expansion is evaluated in the **invoking**
/// crate, so every crate placing failpoints must declare its own
/// `failpoints` cargo feature forwarding to `sdwp_olap/failpoints`.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        #[cfg(feature = "failpoints")]
        {
            if let Some(message) = $crate::fault::eval($name) {
                // Panic and sleep actions act inside `eval`; an Error
                // action is meaningless without a handler — ignore it.
                let _ = message;
            }
        }
    };
    ($name:expr, $handler:expr) => {
        #[cfg(feature = "failpoints")]
        {
            if let Some(message) = $crate::fault::eval($name) {
                return $handler(message);
            }
        }
    };
}
