//! Property tests: every index answers queries exactly like the linear scan.

use proptest::prelude::*;
use sdwp_geometry::{BoundingBox, Coord};
use sdwp_index::{GridIndex, IndexEntry, LinearScan, RTree, SpatialQuery};

fn entry_strategy() -> impl Strategy<Value = IndexEntry<u32>> {
    (
        -500.0f64..500.0,
        -500.0f64..500.0,
        0.0f64..20.0,
        0.0f64..20.0,
        any::<u32>(),
    )
        .prop_map(|(x, y, w, h, id)| IndexEntry::new(BoundingBox::new(x, y, x + w, y + h), id))
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rtree_bbox_query_matches_linear_scan(
        entries in prop::collection::vec(entry_strategy(), 0..200),
        qx in -600.0f64..600.0, qy in -600.0f64..600.0,
        qw in 0.0f64..300.0, qh in 0.0f64..300.0,
    ) {
        let query = BoundingBox::new(qx, qy, qx + qw, qy + qh);
        let scan = LinearScan::bulk_load(entries.clone());
        let tree = RTree::bulk_load(entries.clone());
        let expected = sorted(scan.query_bbox(&query).into_iter().copied().collect());
        let actual = sorted(tree.query_bbox(&query).into_iter().copied().collect());
        prop_assert_eq!(expected, actual);
    }

    #[test]
    fn rtree_incremental_matches_bulk(
        entries in prop::collection::vec(entry_strategy(), 0..150),
        qx in -600.0f64..600.0, qy in -600.0f64..600.0,
        qw in 0.0f64..300.0, qh in 0.0f64..300.0,
    ) {
        let query = BoundingBox::new(qx, qy, qx + qw, qy + qh);
        let bulk = RTree::bulk_load(entries.clone());
        let mut incremental = RTree::with_capacity(6);
        for e in entries {
            incremental.insert(e);
        }
        let a = sorted(bulk.query_bbox(&query).into_iter().copied().collect());
        let b = sorted(incremental.query_bbox(&query).into_iter().copied().collect());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn grid_bbox_query_matches_linear_scan(
        entries in prop::collection::vec(entry_strategy(), 0..200),
        cell in 1.0f64..100.0,
        qx in -600.0f64..600.0, qy in -600.0f64..600.0,
        qw in 0.0f64..300.0, qh in 0.0f64..300.0,
    ) {
        let query = BoundingBox::new(qx, qy, qx + qw, qy + qh);
        let scan = LinearScan::bulk_load(entries.clone());
        let grid = GridIndex::bulk_load(cell, entries);
        let expected = sorted(scan.query_bbox(&query).into_iter().copied().collect());
        let actual = sorted(grid.query_bbox(&query).into_iter().copied().collect());
        prop_assert_eq!(expected, actual);
    }

    #[test]
    fn within_distance_matches_linear_scan(
        entries in prop::collection::vec(entry_strategy(), 0..200),
        cx in -600.0f64..600.0, cy in -600.0f64..600.0,
        radius in 0.0f64..200.0,
    ) {
        let center = Coord::new(cx, cy);
        let scan = LinearScan::bulk_load(entries.clone());
        let tree = RTree::bulk_load(entries.clone());
        let grid = GridIndex::bulk_load(25.0, entries);
        let expected = sorted(scan.query_within_distance(&center, radius).into_iter().copied().collect());
        let tree_actual = sorted(tree.query_within_distance(&center, radius).into_iter().copied().collect());
        let grid_actual = sorted(grid.query_within_distance(&center, radius).into_iter().copied().collect());
        prop_assert_eq!(expected.clone(), tree_actual);
        prop_assert_eq!(expected, grid_actual);
    }

    #[test]
    fn knn_distances_match_linear_scan(
        entries in prop::collection::vec(entry_strategy(), 1..150),
        cx in -600.0f64..600.0, cy in -600.0f64..600.0,
        k in 1usize..20,
    ) {
        let center = Coord::new(cx, cy);
        let scan = LinearScan::bulk_load(entries.clone());
        let tree = RTree::bulk_load(entries.clone());
        // Payloads can tie at the same distance, so compare the distance
        // profile rather than the identity of the neighbours.
        let dist_of = |id: u32| -> f64 {
            entries
                .iter()
                .filter(|e| e.item == id)
                .map(|e| e.bbox.distance_to_coord(&center))
                .fold(f64::INFINITY, f64::min)
        };
        let expected: Vec<f64> = scan
            .nearest_neighbors(&center, k)
            .into_iter()
            .map(|id| dist_of(*id))
            .collect();
        let actual: Vec<f64> = tree
            .nearest_neighbors(&center, k)
            .into_iter()
            .map(|id| dist_of(*id))
            .collect();
        prop_assert_eq!(expected.len(), actual.len());
        for (e, a) in expected.iter().zip(actual.iter()) {
            prop_assert!((e - a).abs() < 1e-9, "expected {e}, got {a}");
        }
    }

    #[test]
    fn rtree_len_matches_inserted(entries in prop::collection::vec(entry_strategy(), 0..300)) {
        let n = entries.len();
        let tree = RTree::bulk_load(entries);
        prop_assert_eq!(tree.len(), n);
        let mut visited = 0;
        tree.for_each(|_, _| visited += 1);
        prop_assert_eq!(visited, n);
    }
}
