//! An R-tree with quadratic-split insertion and STR bulk loading.

use crate::knn::KnnCandidate;
use crate::traits::{IndexEntry, SpatialQuery};
use sdwp_geometry::{BoundingBox, Coord};
use std::collections::BinaryHeap;

/// Default maximum number of entries per node.
pub const DEFAULT_MAX_ENTRIES: usize = 16;

/// An R-tree over payloads of type `T`.
///
/// Supports incremental insertion (quadratic split, Guttman 1984) and
/// Sort-Tile-Recursive bulk loading, bounding-box queries, within-radius
/// queries and k-nearest-neighbour search. Payloads are stored at the
/// leaves; interior nodes only carry bounding boxes.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
    max_entries: usize,
    min_entries: usize,
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf {
        entries: Vec<IndexEntry<T>>,
    },
    Internal {
        children: Vec<(BoundingBox, Node<T>)>,
    },
}

impl<T> Node<T> {
    fn bbox(&self) -> Option<BoundingBox> {
        match self {
            Node::Leaf { entries } => {
                let mut it = entries.iter().map(|e| e.bbox);
                let first = it.next()?;
                Some(it.fold(first, |acc, b| acc.union(&b)))
            }
            Node::Internal { children } => {
                let mut it = children.iter().map(|(b, _)| *b);
                let first = it.next()?;
                Some(it.fold(first, |acc, b| acc.union(&b)))
            }
        }
    }
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        RTree::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty R-tree with the default node capacity.
    pub fn new() -> Self {
        RTree::with_capacity(DEFAULT_MAX_ENTRIES)
    }

    /// Creates an empty R-tree with the given maximum node fan-out
    /// (clamped to at least 4).
    pub fn with_capacity(max_entries: usize) -> Self {
        let max_entries = max_entries.max(4);
        RTree {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            len: 0,
            max_entries,
            min_entries: (max_entries / 2).max(2),
        }
    }

    /// Bulk loads the tree with Sort-Tile-Recursive packing. Much faster
    /// and better-packed than repeated insertion for static data sets such
    /// as dimension levels loaded at cube-build time.
    pub fn bulk_load(mut entries: Vec<IndexEntry<T>>) -> Self {
        let mut tree = RTree::new();
        tree.len = entries.len();
        if entries.is_empty() {
            return tree;
        }
        let cap = tree.max_entries;

        // STR: sort by centre x, slice into vertical strips, sort each
        // strip by centre y, pack leaves.
        entries.sort_by(|a, b| {
            a.bbox
                .center()
                .x
                .partial_cmp(&b.bbox.center().x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let leaf_count = entries.len().div_ceil(cap);
        let strip_count = (leaf_count as f64).sqrt().ceil() as usize;
        let per_strip = entries.len().div_ceil(strip_count.max(1));

        let mut leaves: Vec<Node<T>> = Vec::with_capacity(leaf_count);
        let mut strip_buffer: Vec<IndexEntry<T>> = Vec::with_capacity(per_strip);
        let mut iter = entries.into_iter().peekable();
        while iter.peek().is_some() {
            strip_buffer.clear();
            for _ in 0..per_strip {
                match iter.next() {
                    Some(e) => strip_buffer.push(e),
                    None => break,
                }
            }
            strip_buffer.sort_by(|a, b| {
                a.bbox
                    .center()
                    .y
                    .partial_cmp(&b.bbox.center().y)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut strip = std::mem::take(&mut strip_buffer);
            while !strip.is_empty() {
                let take = strip.len().min(cap);
                let chunk: Vec<IndexEntry<T>> = strip.drain(..take).collect();
                leaves.push(Node::Leaf { entries: chunk });
            }
            strip_buffer = strip;
        }

        // Pack upper levels until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next: Vec<Node<T>> = Vec::with_capacity(level.len().div_ceil(cap));
            let mut children: Vec<(BoundingBox, Node<T>)> = Vec::with_capacity(cap);
            for node in level {
                let bbox = node.bbox().expect("packed nodes are never empty");
                children.push((bbox, node));
                if children.len() == cap {
                    next.push(Node::Internal {
                        children: std::mem::take(&mut children),
                    });
                }
            }
            if !children.is_empty() {
                next.push(Node::Internal { children });
            }
            level = next;
        }
        tree.root = level.pop().unwrap_or(Node::Leaf {
            entries: Vec::new(),
        });
        tree
    }

    /// Inserts a single entry.
    pub fn insert(&mut self, entry: IndexEntry<T>) {
        self.len += 1;
        let max = self.max_entries;
        let min = self.min_entries;
        if let Some((left, right)) = Self::insert_recursive(&mut self.root, entry, max, min) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    entries: Vec::new(),
                },
            );
            drop(old_root); // the old root's content has moved into left/right
            let children = vec![
                (left.bbox().expect("split node non-empty"), left),
                (right.bbox().expect("split node non-empty"), right),
            ];
            self.root = Node::Internal { children };
        }
    }

    fn insert_recursive(
        node: &mut Node<T>,
        entry: IndexEntry<T>,
        max: usize,
        min: usize,
    ) -> Option<(Node<T>, Node<T>)> {
        match node {
            Node::Leaf { entries } => {
                entries.push(entry);
                if entries.len() > max {
                    let (a, b) = split_entries(std::mem::take(entries), min);
                    Some((Node::Leaf { entries: a }, Node::Leaf { entries: b }))
                } else {
                    None
                }
            }
            Node::Internal { children } => {
                // Choose the child needing the least enlargement.
                let best = children
                    .iter()
                    .enumerate()
                    .min_by(|(_, (ba, _)), (_, (bb, _))| {
                        let ea = ba.enlargement(&entry.bbox);
                        let eb = bb.enlargement(&entry.bbox);
                        ea.partial_cmp(&eb)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then_with(|| {
                                ba.area()
                                    .partial_cmp(&bb.area())
                                    .unwrap_or(std::cmp::Ordering::Equal)
                            })
                    })
                    .map(|(i, _)| i)
                    .expect("internal node always has children");

                let entry_bbox = entry.bbox;
                let split = Self::insert_recursive(&mut children[best].1, entry, max, min);
                match split {
                    None => {
                        children[best].0 = children[best].0.union(&entry_bbox);
                        None
                    }
                    Some((left, right)) => {
                        children.remove(best);
                        children.push((left.bbox().expect("non-empty"), left));
                        children.push((right.bbox().expect("non-empty"), right));
                        if children.len() > max {
                            let (a, b) = split_children(std::mem::take(children), min);
                            Some((
                                Node::Internal { children: a },
                                Node::Internal { children: b },
                            ))
                        } else {
                            None
                        }
                    }
                }
            }
        }
    }

    /// Height of the tree (a single leaf has height 1).
    pub fn height(&self) -> usize {
        fn depth<T>(node: &Node<T>) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Internal { children } => {
                    1 + children.first().map(|(_, c)| depth(c)).unwrap_or(0)
                }
            }
        }
        depth(&self.root)
    }

    /// The bounding box of everything in the tree.
    pub fn bbox(&self) -> Option<BoundingBox> {
        self.root.bbox()
    }

    fn collect_bbox<'a>(node: &'a Node<T>, bbox: &BoundingBox, out: &mut Vec<&'a T>) {
        match node {
            Node::Leaf { entries } => {
                for e in entries {
                    if e.bbox.intersects(bbox) {
                        out.push(&e.item);
                    }
                }
            }
            Node::Internal { children } => {
                for (b, child) in children {
                    if b.intersects(bbox) {
                        Self::collect_bbox(child, bbox, out);
                    }
                }
            }
        }
    }

    fn collect_within<'a>(node: &'a Node<T>, center: &Coord, radius: f64, out: &mut Vec<&'a T>) {
        match node {
            Node::Leaf { entries } => {
                for e in entries {
                    if e.bbox.distance_to_coord(center) <= radius {
                        out.push(&e.item);
                    }
                }
            }
            Node::Internal { children } => {
                for (b, child) in children {
                    if b.distance_to_coord(center) <= radius {
                        Self::collect_within(child, center, radius, out);
                    }
                }
            }
        }
    }

    /// Visits every entry in the tree (in unspecified order).
    pub fn for_each(&self, mut f: impl FnMut(&BoundingBox, &T)) {
        fn walk<T>(node: &Node<T>, f: &mut impl FnMut(&BoundingBox, &T)) {
            match node {
                Node::Leaf { entries } => {
                    for e in entries {
                        f(&e.bbox, &e.item);
                    }
                }
                Node::Internal { children } => {
                    for (_, child) in children {
                        walk(child, f);
                    }
                }
            }
        }
        walk(&self.root, &mut f);
    }
}

impl<T> SpatialQuery<T> for RTree<T> {
    fn len(&self) -> usize {
        self.len
    }

    fn query_bbox(&self, bbox: &BoundingBox) -> Vec<&T> {
        let mut out = Vec::new();
        Self::collect_bbox(&self.root, bbox, &mut out);
        out
    }

    fn query_within_distance(&self, center: &Coord, radius: f64) -> Vec<&T> {
        let mut out = Vec::new();
        Self::collect_within(&self.root, center, radius, &mut out);
        out
    }

    fn nearest_neighbors(&self, center: &Coord, k: usize) -> Vec<&T> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        // Best-first search over nodes and entries using a min-heap keyed by
        // bounding-box distance.
        enum Item<'a, T> {
            Node(&'a Node<T>),
            Entry(&'a T),
        }
        let mut heap: BinaryHeap<KnnCandidate<Item<'_, T>>> = BinaryHeap::new();
        heap.push(KnnCandidate::new(0.0, Item::Node(&self.root)));
        let mut result = Vec::with_capacity(k);
        while let Some(candidate) = heap.pop() {
            match candidate.payload {
                Item::Entry(t) => {
                    result.push(t);
                    if result.len() == k {
                        break;
                    }
                }
                Item::Node(Node::Leaf { entries }) => {
                    for e in entries {
                        heap.push(KnnCandidate::new(
                            e.bbox.distance_to_coord(center),
                            Item::Entry(&e.item),
                        ));
                    }
                }
                Item::Node(Node::Internal { children }) => {
                    for (b, child) in children {
                        heap.push(KnnCandidate::new(
                            b.distance_to_coord(center),
                            Item::Node(child),
                        ));
                    }
                }
            }
        }
        result
    }
}

/// Quadratic split of leaf entries.
fn split_entries<T>(
    entries: Vec<IndexEntry<T>>,
    min: usize,
) -> (Vec<IndexEntry<T>>, Vec<IndexEntry<T>>) {
    let boxes: Vec<BoundingBox> = entries.iter().map(|e| e.bbox).collect();
    let (seed_a, seed_b) = pick_seeds(&boxes);
    distribute(entries, seed_a, seed_b, min, |e| e.bbox)
}

/// A child entry of an internal node: its bounding box plus subtree.
type ChildEntry<T> = (BoundingBox, Node<T>);

/// Quadratic split of internal children.
fn split_children<T>(
    children: Vec<ChildEntry<T>>,
    min: usize,
) -> (Vec<ChildEntry<T>>, Vec<ChildEntry<T>>) {
    let boxes: Vec<BoundingBox> = children.iter().map(|(b, _)| *b).collect();
    let (seed_a, seed_b) = pick_seeds(&boxes);
    distribute(children, seed_a, seed_b, min, |(b, _)| *b)
}

/// Guttman's quadratic seed picking: the pair wasting the most area.
fn pick_seeds(boxes: &[BoundingBox]) -> (usize, usize) {
    let mut worst = (0, 1);
    let mut worst_waste = f64::NEG_INFINITY;
    for i in 0..boxes.len() {
        for j in (i + 1)..boxes.len() {
            let waste = boxes[i].union(&boxes[j]).area() - boxes[i].area() - boxes[j].area();
            if waste > worst_waste {
                worst_waste = waste;
                worst = (i, j);
            }
        }
    }
    worst
}

fn distribute<E>(
    mut items: Vec<E>,
    seed_a: usize,
    seed_b: usize,
    min: usize,
    bbox_of: impl Fn(&E) -> BoundingBox,
) -> (Vec<E>, Vec<E>) {
    // Remove the later index first so the earlier one stays valid.
    let (hi, lo) = if seed_a > seed_b {
        (seed_a, seed_b)
    } else {
        (seed_b, seed_a)
    };
    let item_hi = items.remove(hi);
    let item_lo = items.remove(lo);

    let mut group_a = vec![item_lo];
    let mut group_b = vec![item_hi];
    let mut bbox_a = bbox_of(&group_a[0]);
    let mut bbox_b = bbox_of(&group_b[0]);

    for item in items {
        let b = bbox_of(&item);
        // Honour minimum fill: if one group risks falling short, force-assign.
        let remaining_needed_a = min.saturating_sub(group_a.len());
        let remaining_needed_b = min.saturating_sub(group_b.len());
        let total_left = 1; // this item
        if remaining_needed_a >= total_left && remaining_needed_a > remaining_needed_b {
            bbox_a.expand(&b);
            group_a.push(item);
            continue;
        }
        if remaining_needed_b >= total_left && remaining_needed_b > remaining_needed_a {
            bbox_b.expand(&b);
            group_b.push(item);
            continue;
        }
        let enlarge_a = bbox_a.enlargement(&b);
        let enlarge_b = bbox_b.enlargement(&b);
        if enlarge_a < enlarge_b || (enlarge_a == enlarge_b && group_a.len() <= group_b.len()) {
            bbox_a.expand(&b);
            group_a.push(item);
        } else {
            bbox_b.expand(&b);
            group_b.push(item);
        }
    }
    (group_a, group_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_entries(n: usize) -> Vec<IndexEntry<usize>> {
        // n*n points on an integer grid.
        let mut v = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                v.push(IndexEntry::point(Coord::new(i as f64, j as f64), i * n + j));
            }
        }
        v
    }

    #[test]
    fn empty_tree() {
        let tree: RTree<u32> = RTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert!(tree.bbox().is_none());
        assert!(tree
            .query_bbox(&BoundingBox::new(0.0, 0.0, 1.0, 1.0))
            .is_empty());
        assert!(tree.nearest_neighbors(&Coord::new(0.0, 0.0), 3).is_empty());
    }

    #[test]
    fn insert_and_query() {
        let mut tree = RTree::with_capacity(4);
        for e in grid_entries(10) {
            tree.insert(e);
        }
        assert_eq!(tree.len(), 100);
        assert!(tree.height() > 1);
        let found = tree.query_bbox(&BoundingBox::new(2.5, 2.5, 4.5, 4.5));
        assert_eq!(found.len(), 4); // (3,3),(3,4),(4,3),(4,4)
    }

    #[test]
    fn bulk_load_matches_insertion_results() {
        let entries = grid_entries(12);
        let bulk = RTree::bulk_load(entries.clone());
        let mut incremental = RTree::with_capacity(8);
        for e in entries {
            incremental.insert(e);
        }
        let query = BoundingBox::new(1.5, 1.5, 7.5, 3.5);
        let mut a: Vec<usize> = bulk.query_bbox(&query).into_iter().copied().collect();
        let mut b: Vec<usize> = incremental
            .query_bbox(&query)
            .into_iter()
            .copied()
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(bulk.len(), incremental.len());
    }

    #[test]
    fn bulk_load_empty_and_single() {
        let tree: RTree<u32> = RTree::bulk_load(Vec::new());
        assert!(tree.is_empty());
        let tree = RTree::bulk_load(vec![IndexEntry::point(Coord::new(1.0, 1.0), 42u32)]);
        assert_eq!(tree.len(), 1);
        let found = tree.query_bbox(&BoundingBox::new(0.0, 0.0, 2.0, 2.0));
        assert_eq!(found, vec![&42]);
    }

    #[test]
    fn within_distance_query() {
        let tree = RTree::bulk_load(grid_entries(20));
        let center = Coord::new(10.0, 10.0);
        let found = tree.query_within_distance(&center, 1.5);
        // Points within box-distance 1.5 of (10,10): the 3x3 block around it.
        assert_eq!(found.len(), 9);
    }

    #[test]
    fn knn_returns_closest_first() {
        let tree = RTree::bulk_load(grid_entries(10));
        let nn = tree.nearest_neighbors(&Coord::new(0.1, 0.1), 3);
        assert_eq!(nn.len(), 3);
        assert_eq!(*nn[0], 0); // (0,0)
                               // k larger than the tree returns everything.
        let all = tree.nearest_neighbors(&Coord::new(0.0, 0.0), 1000);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn knn_zero_k() {
        let tree = RTree::bulk_load(grid_entries(3));
        assert!(tree.nearest_neighbors(&Coord::new(0.0, 0.0), 0).is_empty());
    }

    #[test]
    fn tree_bbox_covers_everything() {
        let tree = RTree::bulk_load(grid_entries(5));
        let bbox = tree.bbox().unwrap();
        assert!(bbox.contains(&BoundingBox::new(0.0, 0.0, 4.0, 4.0)));
    }

    #[test]
    fn for_each_visits_all() {
        let tree = RTree::bulk_load(grid_entries(6));
        let mut count = 0;
        tree.for_each(|_, _| count += 1);
        assert_eq!(count, 36);
    }

    #[test]
    fn duplicate_positions_are_kept() {
        let mut tree = RTree::with_capacity(4);
        for i in 0..10 {
            tree.insert(IndexEntry::point(Coord::new(1.0, 1.0), i));
        }
        assert_eq!(tree.len(), 10);
        let found = tree.query_bbox(&BoundingBox::new(0.0, 0.0, 2.0, 2.0));
        assert_eq!(found.len(), 10);
    }

    #[test]
    fn non_point_boxes() {
        let mut tree = RTree::with_capacity(4);
        tree.insert(IndexEntry::new(
            BoundingBox::new(0.0, 0.0, 10.0, 10.0),
            "big",
        ));
        tree.insert(IndexEntry::new(
            BoundingBox::new(2.0, 2.0, 3.0, 3.0),
            "small",
        ));
        tree.insert(IndexEntry::new(
            BoundingBox::new(20.0, 20.0, 30.0, 30.0),
            "far",
        ));
        let found = tree.query_bbox(&BoundingBox::new(2.5, 2.5, 2.6, 2.6));
        assert_eq!(found.len(), 2);
        assert!(found.contains(&&"big"));
        assert!(found.contains(&&"small"));
    }
}
