//! Common interface implemented by every spatial index.

use sdwp_geometry::{BoundingBox, Coord};

/// An entry stored in a spatial index: a bounding box plus an opaque
/// payload (typically a row id of the OLAP cube or a dimension member id).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexEntry<T> {
    /// Bounding box of the indexed geometry.
    pub bbox: BoundingBox,
    /// The indexed payload.
    pub item: T,
}

impl<T> IndexEntry<T> {
    /// Creates an entry from a bounding box and payload.
    pub fn new(bbox: BoundingBox, item: T) -> Self {
        IndexEntry { bbox, item }
    }

    /// Creates an entry for a point payload.
    pub fn point(c: Coord, item: T) -> Self {
        IndexEntry {
            bbox: BoundingBox::from_coord(c),
            item,
        }
    }
}

/// The query interface shared by [`crate::RTree`], [`crate::GridIndex`] and
/// the [`LinearScan`] baseline.
pub trait SpatialQuery<T> {
    /// Number of indexed entries.
    fn len(&self) -> usize;

    /// Returns `true` when the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns references to the payloads whose bounding box intersects the
    /// query box.
    fn query_bbox(&self, bbox: &BoundingBox) -> Vec<&T>;

    /// Returns references to the payloads whose bounding box lies within
    /// `radius` of the coordinate (measured as minimum distance from the
    /// box — callers refine with exact geometry when needed).
    fn query_within_distance(&self, center: &Coord, radius: f64) -> Vec<&T> {
        let window = BoundingBox::new(
            center.x - radius,
            center.y - radius,
            center.x + radius,
            center.y + radius,
        );
        self.query_bbox(&window).into_iter().collect()
    }

    /// Returns up to `k` payloads closest to the coordinate, ordered by
    /// ascending bounding-box distance.
    fn nearest_neighbors(&self, center: &Coord, k: usize) -> Vec<&T>;
}

/// A trivial index that scans every entry — the baseline used by benchmark
/// B2 and by property tests asserting index/scan equivalence.
#[derive(Debug, Clone, Default)]
pub struct LinearScan<T> {
    entries: Vec<IndexEntry<T>>,
}

impl<T> LinearScan<T> {
    /// Creates an empty scan baseline.
    pub fn new() -> Self {
        LinearScan {
            entries: Vec::new(),
        }
    }

    /// Builds the baseline from a list of entries.
    pub fn bulk_load(entries: Vec<IndexEntry<T>>) -> Self {
        LinearScan { entries }
    }

    /// Adds an entry.
    pub fn insert(&mut self, entry: IndexEntry<T>) {
        self.entries.push(entry);
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &IndexEntry<T>> {
        self.entries.iter()
    }
}

impl<T> SpatialQuery<T> for LinearScan<T> {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn query_bbox(&self, bbox: &BoundingBox) -> Vec<&T> {
        self.entries
            .iter()
            .filter(|e| e.bbox.intersects(bbox))
            .map(|e| &e.item)
            .collect()
    }

    fn query_within_distance(&self, center: &Coord, radius: f64) -> Vec<&T> {
        self.entries
            .iter()
            .filter(|e| e.bbox.distance_to_coord(center) <= radius)
            .map(|e| &e.item)
            .collect()
    }

    fn nearest_neighbors(&self, center: &Coord, k: usize) -> Vec<&T> {
        let mut with_distance: Vec<(f64, &T)> = self
            .entries
            .iter()
            .map(|e| (e.bbox.distance_to_coord(center), &e.item))
            .collect();
        with_distance.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        with_distance.into_iter().take(k).map(|(_, t)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<IndexEntry<u32>> {
        (0..10)
            .map(|i| IndexEntry::point(Coord::new(i as f64, 0.0), i))
            .collect()
    }

    #[test]
    fn entry_constructors() {
        let e = IndexEntry::point(Coord::new(1.0, 2.0), "store");
        assert_eq!(e.bbox.min_x, 1.0);
        assert_eq!(e.item, "store");
        let b = IndexEntry::new(BoundingBox::new(0.0, 0.0, 1.0, 1.0), 7u8);
        assert_eq!(b.bbox.area(), 1.0);
    }

    #[test]
    fn linear_scan_bbox_query() {
        let scan = LinearScan::bulk_load(entries());
        assert_eq!(scan.len(), 10);
        assert!(!scan.is_empty());
        let found = scan.query_bbox(&BoundingBox::new(2.5, -1.0, 5.5, 1.0));
        let mut ids: Vec<u32> = found.into_iter().copied().collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![3, 4, 5]);
    }

    #[test]
    fn linear_scan_distance_query() {
        let scan = LinearScan::bulk_load(entries());
        let found = scan.query_within_distance(&Coord::new(0.0, 0.0), 2.0);
        let mut ids: Vec<u32> = found.into_iter().copied().collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn linear_scan_knn() {
        let scan = LinearScan::bulk_load(entries());
        let found = scan.nearest_neighbors(&Coord::new(9.2, 0.0), 3);
        let ids: Vec<u32> = found.into_iter().copied().collect();
        assert_eq!(ids, vec![9, 8, 7]);
    }

    #[test]
    fn empty_scan() {
        let scan: LinearScan<u32> = LinearScan::new();
        assert!(scan.is_empty());
        assert!(scan
            .query_bbox(&BoundingBox::new(0.0, 0.0, 1.0, 1.0))
            .is_empty());
        assert!(scan.nearest_neighbors(&Coord::new(0.0, 0.0), 5).is_empty());
    }

    #[test]
    fn insert_and_iterate() {
        let mut scan = LinearScan::new();
        scan.insert(IndexEntry::point(Coord::new(0.0, 0.0), 1u32));
        scan.insert(IndexEntry::point(Coord::new(1.0, 1.0), 2u32));
        assert_eq!(scan.iter().count(), 2);
    }
}
