//! A uniform grid index.

use crate::traits::{IndexEntry, SpatialQuery};
use sdwp_geometry::{BoundingBox, Coord};
use std::collections::HashMap;

/// A uniform grid over the plane with a fixed cell size.
///
/// Entries are registered in every cell their bounding box overlaps. The
/// grid is unbounded (cells are created lazily in a hash map), so it works
/// for any coordinate range, but query performance depends on choosing a
/// cell size close to the typical query radius.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell_size: f64,
    cells: HashMap<(i64, i64), Vec<usize>>,
    entries: Vec<IndexEntry<T>>,
}

impl<T> GridIndex<T> {
    /// Creates an empty grid with the given cell size (must be positive;
    /// non-positive sizes are clamped to 1.0).
    pub fn new(cell_size: f64) -> Self {
        GridIndex {
            cell_size: if cell_size > 0.0 { cell_size } else { 1.0 },
            cells: HashMap::new(),
            entries: Vec::new(),
        }
    }

    /// Builds a grid from a list of entries.
    pub fn bulk_load(cell_size: f64, entries: Vec<IndexEntry<T>>) -> Self {
        let mut grid = GridIndex::new(cell_size);
        for e in entries {
            grid.insert(e);
        }
        grid
    }

    /// The configured cell size.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of non-empty cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    fn cell_of(&self, x: f64, y: f64) -> (i64, i64) {
        (
            (x / self.cell_size).floor() as i64,
            (y / self.cell_size).floor() as i64,
        )
    }

    fn cells_overlapping(&self, bbox: &BoundingBox) -> Vec<(i64, i64)> {
        let (min_cx, min_cy) = self.cell_of(bbox.min_x, bbox.min_y);
        let (max_cx, max_cy) = self.cell_of(bbox.max_x, bbox.max_y);
        let mut out =
            Vec::with_capacity(((max_cx - min_cx + 1) * (max_cy - min_cy + 1)).max(0) as usize);
        for cx in min_cx..=max_cx {
            for cy in min_cy..=max_cy {
                out.push((cx, cy));
            }
        }
        out
    }

    /// Inserts an entry, registering it in every overlapping cell.
    pub fn insert(&mut self, entry: IndexEntry<T>) {
        let idx = self.entries.len();
        for cell in self.cells_overlapping(&entry.bbox) {
            self.cells.entry(cell).or_default().push(idx);
        }
        self.entries.push(entry);
    }

    fn candidates(&self, bbox: &BoundingBox) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .cells_overlapping(bbox)
            .into_iter()
            .filter_map(|c| self.cells.get(&c))
            .flatten()
            .copied()
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

impl<T> SpatialQuery<T> for GridIndex<T> {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn query_bbox(&self, bbox: &BoundingBox) -> Vec<&T> {
        self.candidates(bbox)
            .into_iter()
            .filter(|&i| self.entries[i].bbox.intersects(bbox))
            .map(|i| &self.entries[i].item)
            .collect()
    }

    fn query_within_distance(&self, center: &Coord, radius: f64) -> Vec<&T> {
        let window = BoundingBox::new(
            center.x - radius,
            center.y - radius,
            center.x + radius,
            center.y + radius,
        );
        self.candidates(&window)
            .into_iter()
            .filter(|&i| self.entries[i].bbox.distance_to_coord(center) <= radius)
            .map(|i| &self.entries[i].item)
            .collect()
    }

    fn nearest_neighbors(&self, center: &Coord, k: usize) -> Vec<&T> {
        if k == 0 || self.entries.is_empty() {
            return Vec::new();
        }
        // Expanding-ring search: examine cells in growing square rings until
        // enough candidates are found, then rank exactly.
        let mut radius_cells = 1i64;
        let max_radius_cells = 1 + (self.entries.len() as f64).sqrt() as i64 * 4;
        loop {
            let window = BoundingBox::new(
                center.x - radius_cells as f64 * self.cell_size,
                center.y - radius_cells as f64 * self.cell_size,
                center.x + radius_cells as f64 * self.cell_size,
                center.y + radius_cells as f64 * self.cell_size,
            );
            let candidates = self.candidates(&window);
            if candidates.len() >= k || radius_cells > max_radius_cells {
                let mut with_d: Vec<(f64, &T)> = if radius_cells > max_radius_cells {
                    // Fall back to scanning everything.
                    self.entries
                        .iter()
                        .map(|e| (e.bbox.distance_to_coord(center), &e.item))
                        .collect()
                } else {
                    candidates
                        .into_iter()
                        .map(|i| {
                            (
                                self.entries[i].bbox.distance_to_coord(center),
                                &self.entries[i].item,
                            )
                        })
                        .collect()
                };
                with_d.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
                if with_d.len() >= k || radius_cells > max_radius_cells {
                    return with_d.into_iter().take(k).map(|(_, t)| t).collect();
                }
            }
            radius_cells *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize, cell: f64) -> GridIndex<usize> {
        let entries = (0..n * n)
            .map(|id| IndexEntry::point(Coord::new((id % n) as f64, (id / n) as f64), id))
            .collect();
        GridIndex::bulk_load(cell, entries)
    }

    #[test]
    fn empty_grid() {
        let g: GridIndex<u32> = GridIndex::new(10.0);
        assert!(g.is_empty());
        assert_eq!(g.num_cells(), 0);
        assert!(g
            .query_bbox(&BoundingBox::new(0.0, 0.0, 1.0, 1.0))
            .is_empty());
        assert!(g.nearest_neighbors(&Coord::new(0.0, 0.0), 2).is_empty());
    }

    #[test]
    fn cell_size_is_clamped() {
        let g: GridIndex<u32> = GridIndex::new(-3.0);
        assert_eq!(g.cell_size(), 1.0);
        let g2: GridIndex<u32> = GridIndex::new(0.0);
        assert_eq!(g2.cell_size(), 1.0);
    }

    #[test]
    fn bbox_query_matches_expectation() {
        let g = grid_points(10, 2.5);
        let found = g.query_bbox(&BoundingBox::new(2.5, 2.5, 4.5, 4.5));
        assert_eq!(found.len(), 4);
    }

    #[test]
    fn distance_query() {
        let g = grid_points(10, 3.0);
        let found = g.query_within_distance(&Coord::new(5.0, 5.0), 1.0);
        // (5,5), (4,5), (6,5), (5,4), (5,6)
        assert_eq!(found.len(), 5);
    }

    #[test]
    fn knn_ordering() {
        let g = grid_points(10, 2.0);
        let nn = g.nearest_neighbors(&Coord::new(0.1, 0.2), 4);
        assert_eq!(nn.len(), 4);
        assert_eq!(*nn[0], 0);
    }

    #[test]
    fn knn_more_than_population() {
        let g = grid_points(3, 1.0);
        let nn = g.nearest_neighbors(&Coord::new(100.0, 100.0), 50);
        assert_eq!(nn.len(), 9);
    }

    #[test]
    fn entries_spanning_multiple_cells() {
        let mut g: GridIndex<&str> = GridIndex::new(1.0);
        g.insert(IndexEntry::new(
            BoundingBox::new(0.0, 0.0, 5.0, 5.0),
            "wide",
        ));
        assert!(g.num_cells() >= 25);
        // The entry is reported exactly once despite living in many cells.
        let found = g.query_bbox(&BoundingBox::new(0.0, 0.0, 10.0, 10.0));
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn negative_coordinates() {
        let mut g: GridIndex<u32> = GridIndex::new(2.0);
        g.insert(IndexEntry::point(Coord::new(-5.0, -5.0), 1));
        g.insert(IndexEntry::point(Coord::new(5.0, 5.0), 2));
        let found = g.query_within_distance(&Coord::new(-5.0, -5.0), 1.0);
        assert_eq!(found, vec![&1]);
    }
}
