//! Support types for best-first k-nearest-neighbour search.

use std::cmp::Ordering;

/// A candidate in a best-first search priority queue, ordered so that the
/// *smallest* distance pops first from a `std::collections::BinaryHeap`
/// (which is a max-heap).
#[derive(Debug)]
pub struct KnnCandidate<P> {
    /// Distance from the query point to this candidate.
    pub distance: f64,
    /// The node or entry carried by this candidate.
    pub payload: P,
}

impl<P> KnnCandidate<P> {
    /// Creates a candidate with the given distance key.
    pub fn new(distance: f64, payload: P) -> Self {
        KnnCandidate { distance, payload }
    }
}

impl<P> PartialEq for KnnCandidate<P> {
    fn eq(&self, other: &Self) -> bool {
        self.distance == other.distance
    }
}

impl<P> Eq for KnnCandidate<P> {}

impl<P> PartialOrd for KnnCandidate<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> Ord for KnnCandidate<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse the comparison: smaller distances are "greater" so they
        // pop first from the max-heap. NaN distances sort last.
        other
            .distance
            .partial_cmp(&self.distance)
            .unwrap_or(Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn heap_pops_smallest_distance_first() {
        let mut heap = BinaryHeap::new();
        heap.push(KnnCandidate::new(5.0, "e"));
        heap.push(KnnCandidate::new(1.0, "a"));
        heap.push(KnnCandidate::new(3.0, "c"));
        assert_eq!(heap.pop().unwrap().payload, "a");
        assert_eq!(heap.pop().unwrap().payload, "c");
        assert_eq!(heap.pop().unwrap().payload, "e");
    }

    #[test]
    fn equality_is_by_distance() {
        let a = KnnCandidate::new(2.0, 1u32);
        let b = KnnCandidate::new(2.0, 2u32);
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), Ordering::Equal);
    }

    #[test]
    fn ordering_is_reversed() {
        let near = KnnCandidate::new(1.0, ());
        let far = KnnCandidate::new(9.0, ());
        assert!(near > far);
    }
}
