//! Spatial indexes for the SDWP spatial OLAP engine.
//!
//! The paper's instance-personalization rules (e.g. Example 5.2: *"select
//! the stores at less than 5 km of the decision maker's location"*) run a
//! spatial predicate over every member of a potentially large dimension
//! level. This crate provides the index structures the OLAP engine uses to
//! avoid the full scan:
//!
//! * [`RTree`] — an R-tree with quadratic-split insertion and
//!   Sort-Tile-Recursive (STR) bulk loading, supporting bounding-box range
//!   queries, distance (within-radius) queries and k-nearest-neighbour
//!   search;
//! * [`GridIndex`] — a uniform grid (fixed cell size) used as a simpler
//!   baseline and as the ablation comparator in benchmark B2.
//!
//! Both implement the [`SpatialQuery`] trait so the OLAP layer can switch
//! between them (and a plain linear scan) at runtime.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod grid;
pub mod knn;
pub mod rtree;
pub mod traits;

pub use grid::GridIndex;
pub use rtree::RTree;
pub use traits::{IndexEntry, LinearScan, SpatialQuery};
