//! Fact deltas: the unit of streaming change to a cube's fact tables.
//!
//! A [`DeltaBatch`] is the atom of ingestion: either every delta in the
//! batch becomes visible to readers, or none does. Atomicity is enforced
//! in two layers — [`DeltaBatch::validate`] checks the *whole* batch
//! against the cube before [`DeltaBatch::apply`] mutates anything (so a
//! bad delta can never leave the write master half-updated), and the
//! ingest worker only publishes snapshots at batch boundaries (so readers
//! can never observe a torn batch even while the master is mid-apply).

use sdwp_olap::cube::fk_column;
use sdwp_olap::{CellValue, Cube, OlapError};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One change to one fact table.
///
/// Deltas address rows by their stable row id (row ids never shift:
/// retraction tombstones). Foreign keys are immutable — correcting a
/// mis-keyed fact is a [`FactDelta::Retract`] plus a fresh
/// [`FactDelta::Append`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FactDelta {
    /// Appends a fact row: foreign keys (dimension name → member row id)
    /// plus measure values.
    Append {
        /// The fact to append to.
        fact: String,
        /// Foreign keys as `(dimension, member row id)` pairs.
        foreign_keys: Vec<(String, usize)>,
        /// Measure values as `(measure column, value)` pairs.
        measures: Vec<(String, CellValue)>,
    },
    /// Overwrites one measure cell of a live fact row (e.g. a price
    /// correction).
    UpsertCell {
        /// The fact to update.
        fact: String,
        /// The fact row id.
        row: usize,
        /// The measure column to overwrite.
        column: String,
        /// The new value.
        value: CellValue,
    },
    /// Tombstones a fact row; its id is never reused.
    Retract {
        /// The fact to retract from.
        fact: String,
        /// The fact row id.
        row: usize,
    },
}

impl FactDelta {
    /// The fact table this delta touches.
    pub fn fact(&self) -> &str {
        match self {
            FactDelta::Append { fact, .. }
            | FactDelta::UpsertCell { fact, .. }
            | FactDelta::Retract { fact, .. } => fact,
        }
    }
}

/// What applying a batch did, aggregated for ingest statistics and for
/// scoping cache invalidation to the facts that actually changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Fact rows appended.
    pub rows_appended: u64,
    /// Measure cells overwritten.
    pub cells_upserted: u64,
    /// Fact rows newly tombstoned (retracting an already-dead row does not
    /// count — it changed nothing).
    pub rows_retracted: u64,
    /// The facts whose tables changed. Empty for an empty (or fully
    /// no-op) batch — the epoch worker then publishes nothing and the
    /// result cache keeps every entry.
    pub changed_facts: BTreeSet<String>,
}

impl BatchOutcome {
    /// Total mutations applied — the epoch policy's row counter.
    pub fn mutations(&self) -> u64 {
        self.rows_appended + self.cells_upserted + self.rows_retracted
    }
}

/// An ordered batch of fact deltas, applied atomically.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeltaBatch {
    /// The deltas, applied in order.
    pub deltas: Vec<FactDelta>,
}

/// Per-fact bookkeeping while validating a batch: deltas later in the
/// batch may address rows appended — or rows retracted — earlier in it.
struct VirtualFact {
    len: usize,
    retracted_in_batch: BTreeSet<usize>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// Adds an append delta (builder style).
    pub fn append(
        mut self,
        fact: impl Into<String>,
        foreign_keys: Vec<(impl Into<String>, usize)>,
        measures: Vec<(impl Into<String>, CellValue)>,
    ) -> Self {
        self.deltas.push(FactDelta::Append {
            fact: fact.into(),
            foreign_keys: foreign_keys
                .into_iter()
                .map(|(d, m)| (d.into(), m))
                .collect(),
            measures: measures.into_iter().map(|(c, v)| (c.into(), v)).collect(),
        });
        self
    }

    /// Adds a cell-upsert delta (builder style).
    pub fn upsert_cell(
        mut self,
        fact: impl Into<String>,
        row: usize,
        column: impl Into<String>,
        value: CellValue,
    ) -> Self {
        self.deltas.push(FactDelta::UpsertCell {
            fact: fact.into(),
            row,
            column: column.into(),
            value,
        });
        self
    }

    /// Adds a retraction delta (builder style).
    pub fn retract(mut self, fact: impl Into<String>, row: usize) -> Self {
        self.deltas.push(FactDelta::Retract {
            fact: fact.into(),
            row,
        });
        self
    }

    /// Number of deltas in the batch.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// Returns `true` when the batch holds no deltas.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Checks every delta against the cube *without mutating it*: facts,
    /// dimensions and columns must exist, foreign keys and row ids must be
    /// in range, targeted rows must be live, values must match their
    /// column types. Row-id arithmetic accounts for appends and
    /// retractions earlier in the same batch.
    ///
    /// This is what makes [`DeltaBatch::apply`] all-or-nothing: a batch
    /// that validates cannot fail mid-apply, and a batch that does not
    /// validate never touches the cube.
    pub fn validate(&self, cube: &Cube) -> Result<(), OlapError> {
        let mut virtual_facts: BTreeMap<&str, VirtualFact> = BTreeMap::new();
        for delta in &self.deltas {
            let fact_name = delta.fact();
            let table = &cube.fact_table(fact_name)?.table;
            let state = virtual_facts
                .entry(fact_name)
                .or_insert_with(|| VirtualFact {
                    len: table.len(),
                    retracted_in_batch: BTreeSet::new(),
                });
            match delta {
                FactDelta::Append {
                    fact,
                    foreign_keys,
                    measures,
                } => {
                    // Every dimension of the fact must get exactly one
                    // foreign key: a missing one would be stored as a
                    // Null `__fk_` cell, which poisons every later
                    // group-by / view scan over that dimension with a
                    // type error.
                    let fact_def =
                        cube.schema()
                            .fact(fact)
                            .ok_or_else(|| OlapError::UnknownElement {
                                kind: "fact",
                                name: fact.clone(),
                            })?;
                    for dimension in &fact_def.dimensions {
                        match foreign_keys.iter().filter(|(d, _)| d == dimension).count() {
                            1 => {}
                            0 => {
                                return Err(OlapError::RowShape {
                                    message: format!(
                                        "append to fact '{fact}' is missing the foreign key \
                                         for dimension '{dimension}'"
                                    ),
                                })
                            }
                            n => {
                                return Err(OlapError::RowShape {
                                    message: format!(
                                        "append to fact '{fact}' supplies {n} foreign keys \
                                         for dimension '{dimension}'"
                                    ),
                                })
                            }
                        }
                    }
                    for (dimension, member) in foreign_keys {
                        if !fact_def.references_dimension(dimension)
                            || table.column_index(&fk_column(dimension)).is_none()
                        {
                            return Err(OlapError::InvalidQuery {
                                message: format!(
                                    "fact '{fact}' is not analysed by dimension '{dimension}'"
                                ),
                            });
                        }
                        let dim_table = &cube.dimension_table(dimension)?.table;
                        if *member >= dim_table.len() {
                            return Err(OlapError::RowShape {
                                message: format!(
                                    "foreign key {member} out of range for dimension \
                                     '{dimension}' ({} members)",
                                    dim_table.len()
                                ),
                            });
                        }
                    }
                    for (i, (column, value)) in measures.iter().enumerate() {
                        if column.starts_with("__fk_") {
                            return Err(OlapError::InvalidQuery {
                                message: format!(
                                    "foreign-key column '{column}' cannot be set as a measure"
                                ),
                            });
                        }
                        // Ambiguous like a duplicate FK: `push_row` would
                        // silently keep the first value only.
                        if measures[..i].iter().any(|(c, _)| c == column) {
                            return Err(OlapError::RowShape {
                                message: format!(
                                    "append to fact '{fact}' supplies measure column \
                                     '{column}' more than once"
                                ),
                            });
                        }
                        if !table.column(column)?.accepts(value) {
                            return Err(OlapError::TypeMismatch {
                                expected: "a value matching the column type",
                                found: format!("{} for column '{column}'", value.type_name()),
                            });
                        }
                    }
                    state.len += 1;
                }
                FactDelta::UpsertCell {
                    row, column, value, ..
                } => {
                    if column.starts_with("__fk_") {
                        return Err(OlapError::InvalidQuery {
                            message: format!(
                                "foreign-key column '{column}' is immutable; retract the row \
                                 and append a corrected one"
                            ),
                        });
                    }
                    let dead_in_cube = *row < table.len() && !table.is_live(*row);
                    if *row >= state.len || dead_in_cube || state.retracted_in_batch.contains(row) {
                        return Err(OlapError::RowShape {
                            message: format!(
                                "cannot update fact row {row}: out of range or retracted"
                            ),
                        });
                    }
                    if !table.column(column)?.accepts(value) {
                        return Err(OlapError::TypeMismatch {
                            expected: "a value matching the column type",
                            found: format!("{} for column '{column}'", value.type_name()),
                        });
                    }
                }
                FactDelta::Retract { row, .. } => {
                    if *row >= state.len {
                        return Err(OlapError::RowShape {
                            message: format!(
                                "cannot retract fact row {row}: only {} rows exist",
                                state.len
                            ),
                        });
                    }
                    state.retracted_in_batch.insert(*row);
                }
            }
        }
        Ok(())
    }

    /// Applies a *validated* batch to the cube, in order. Panics on a
    /// delta [`DeltaBatch::validate`] would have rejected — callers must
    /// validate first; the ingest worker does.
    pub fn apply(&self, cube: &mut Cube) -> BatchOutcome {
        let mut outcome = BatchOutcome::default();
        for delta in &self.deltas {
            match delta {
                FactDelta::Append {
                    fact,
                    foreign_keys,
                    measures,
                } => {
                    let fks: Vec<(&str, usize)> =
                        foreign_keys.iter().map(|(d, m)| (d.as_str(), *m)).collect();
                    let ms: Vec<(&str, CellValue)> = measures
                        .iter()
                        .map(|(c, v)| (c.as_str(), v.clone()))
                        .collect();
                    cube.add_fact_row(fact, fks, ms)
                        .expect("validated append applies");
                    outcome.rows_appended += 1;
                    outcome.changed_facts.insert(fact.clone());
                }
                FactDelta::UpsertCell {
                    fact,
                    row,
                    column,
                    value,
                } => {
                    cube.upsert_fact_cell(fact, *row, column, value.clone())
                        .expect("validated upsert applies");
                    outcome.cells_upserted += 1;
                    outcome.changed_facts.insert(fact.clone());
                }
                FactDelta::Retract { fact, row } => {
                    let was_live = cube
                        .fact_table(fact)
                        .expect("validated fact exists")
                        .table
                        .is_live(*row);
                    cube.retract_fact_row(fact, *row)
                        .expect("validated retraction applies");
                    if was_live {
                        outcome.rows_retracted += 1;
                        outcome.changed_facts.insert(fact.clone());
                    }
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};

    fn cube() -> Cube {
        let schema = SchemaBuilder::new("DW")
            .dimension(
                DimensionBuilder::new("Store")
                    .simple_level("Store", "name")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .dimension("Store")
                    .build(),
            )
            .build()
            .unwrap();
        let mut cube = Cube::new(schema);
        for i in 0..2 {
            cube.add_dimension_member(
                "Store",
                vec![("Store.name", CellValue::from(format!("S{i}")))],
            )
            .unwrap();
        }
        cube.add_fact_row(
            "Sales",
            vec![("Store", 0)],
            vec![("UnitSales", CellValue::Float(1.0))],
        )
        .unwrap();
        cube
    }

    #[test]
    fn batch_builder_and_accessors() {
        let batch = DeltaBatch::new()
            .append(
                "Sales",
                vec![("Store", 1usize)],
                vec![("UnitSales", CellValue::Float(2.0))],
            )
            .upsert_cell("Sales", 0, "UnitSales", CellValue::Float(5.0))
            .retract("Sales", 0);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert!(batch.deltas.iter().all(|d| d.fact() == "Sales"));
        assert!(DeltaBatch::new().is_empty());
    }

    #[test]
    fn valid_batch_applies_in_order() {
        let mut c = cube();
        let batch = DeltaBatch::new()
            .upsert_cell("Sales", 0, "UnitSales", CellValue::Float(9.0))
            .append(
                "Sales",
                vec![("Store", 1usize)],
                vec![("UnitSales", CellValue::Float(2.0))],
            )
            // Upsert the row appended earlier in this same batch …
            .upsert_cell("Sales", 1, "UnitSales", CellValue::Float(3.0))
            // … then retract the original row.
            .retract("Sales", 0);
        batch.validate(&c).unwrap();
        let outcome = batch.apply(&mut c);
        assert_eq!(
            (
                outcome.rows_appended,
                outcome.cells_upserted,
                outcome.rows_retracted
            ),
            (1, 2, 1)
        );
        assert_eq!(outcome.mutations(), 4);
        assert!(outcome.changed_facts.contains("Sales"));
        let table = &c.fact_table("Sales").unwrap().table;
        assert_eq!((table.len(), table.live_len()), (2, 1));
        assert_eq!(table.get(1, "UnitSales").unwrap(), CellValue::Float(3.0));
    }

    #[test]
    fn invalid_batches_are_rejected_before_any_mutation() {
        let c = cube();
        let bad: [DeltaBatch; 7] = [
            DeltaBatch::new().append(
                "Returns",
                vec![("Store", 0usize)],
                vec![("X", CellValue::Null)],
            ),
            DeltaBatch::new().append(
                "Sales",
                vec![("Store", 9usize)],
                Vec::<(String, CellValue)>::new(),
            ),
            DeltaBatch::new().append(
                "Sales",
                vec![("Ghost", 0usize)],
                Vec::<(String, CellValue)>::new(),
            ),
            DeltaBatch::new().append(
                "Sales",
                vec![("Store", 0usize)],
                vec![("UnitSales", CellValue::from("not a number"))],
            ),
            DeltaBatch::new().upsert_cell("Sales", 7, "UnitSales", CellValue::Float(1.0)),
            DeltaBatch::new().upsert_cell("Sales", 0, "__fk_Store", CellValue::Integer(1)),
            DeltaBatch::new().retract("Sales", 7),
        ];
        for batch in &bad {
            assert!(batch.validate(&c).is_err(), "{batch:?} should not validate");
        }
        // A good delta after a bad one does not save the batch.
        let mixed = DeltaBatch::new().retract("Sales", 7).upsert_cell(
            "Sales",
            0,
            "UnitSales",
            CellValue::Float(2.0),
        );
        assert!(mixed.validate(&c).is_err());
    }

    #[test]
    fn appends_must_cover_every_dimension_exactly_once() {
        let c = cube();
        // Missing FK: would store Null in __fk_Store and poison every
        // later group-by over Store.
        let missing = DeltaBatch::new().append(
            "Sales",
            Vec::<(String, usize)>::new(),
            vec![("UnitSales", CellValue::Float(1.0))],
        );
        assert!(missing.validate(&c).is_err());
        // Duplicate FK for one dimension is ambiguous.
        let duplicate = DeltaBatch::new().append(
            "Sales",
            vec![("Store", 0usize), ("Store", 1usize)],
            vec![("UnitSales", CellValue::Float(1.0))],
        );
        assert!(duplicate.validate(&c).is_err());
        // A duplicate measure column would be silently deduplicated by
        // push_row; reject it as ambiguous too.
        let dup_measure = DeltaBatch::new().append(
            "Sales",
            vec![("Store", 0usize)],
            vec![
                ("UnitSales", CellValue::Float(1.0)),
                ("UnitSales", CellValue::Float(2.0)),
            ],
        );
        assert!(dup_measure.validate(&c).is_err());
        // Complete coverage validates.
        let complete = DeltaBatch::new().append(
            "Sales",
            vec![("Store", 0usize)],
            vec![("UnitSales", CellValue::Float(1.0))],
        );
        complete.validate(&c).unwrap();
    }

    #[test]
    fn batch_internal_row_arithmetic() {
        let c = cube();
        // Upserting a row that only exists after the batch's own append is
        // valid; upserting past it is not.
        let ok = DeltaBatch::new()
            .append(
                "Sales",
                vec![("Store", 0usize)],
                vec![("UnitSales", CellValue::Float(1.0))],
            )
            .upsert_cell("Sales", 1, "UnitSales", CellValue::Float(2.0));
        ok.validate(&c).unwrap();
        let past = DeltaBatch::new().upsert_cell("Sales", 1, "UnitSales", CellValue::Float(2.0));
        assert!(past.validate(&c).is_err());
        // A row retracted earlier in the batch cannot be upserted later.
        let dead = DeltaBatch::new().retract("Sales", 0).upsert_cell(
            "Sales",
            0,
            "UnitSales",
            CellValue::Float(2.0),
        );
        assert!(dead.validate(&c).is_err());
    }

    #[test]
    fn retracting_a_dead_row_is_a_no_op_not_a_change() {
        let mut c = cube();
        c.retract_fact_row("Sales", 0).unwrap();
        let batch = DeltaBatch::new().retract("Sales", 0);
        batch.validate(&c).unwrap();
        let outcome = batch.apply(&mut c);
        assert_eq!(outcome.rows_retracted, 0);
        assert!(outcome.changed_facts.is_empty());
        assert_eq!(outcome.mutations(), 0);
    }
}
