//! Streaming ingestion for the spatial data warehouse: epoch-batched fact
//! deltas with atomic snapshot publication.
//!
//! The read side of the system serves OLAP queries from immutable cube
//! snapshots; this crate is the write side that keeps those snapshots
//! *live*. Producers submit [`DeltaBatch`]es of [`FactDelta`]s (append a
//! fact row, upsert a measure cell, retract a row) into a bounded channel;
//! a dedicated worker applies them to the mutex-guarded write master and,
//! per [`EpochPolicy`] (N mutations or T milliseconds, whichever first),
//! publishes a fresh immutable snapshot. Readers never block on ingestion
//! and never observe a torn batch: visibility only ever advances at batch
//! boundaries, whole epochs at a time.
//!
//! The pipeline talks to the warehouse through the [`CubeSink`] trait, so
//! it has no dependency on the serving engine — `sdwp-core` implements the
//! sink over its write master, `VersionedSwap` snapshot and result cache,
//! and exposes the pipeline via `PersonalizationEngine::start_ingest`.
//!
//! Design influences: epoch/batch amortisation of concurrent work (GLADE's
//! batched multi-query processing) and bounded ingest queues protecting
//! serving latency under sustained write pressure (Tempo).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod delta;
pub mod error;
pub mod pipeline;

pub use delta::{BatchOutcome, DeltaBatch, FactDelta};
pub use error::IngestError;
pub use pipeline::{
    CompactionOutcome, CompactionPolicy, CubeSink, EpochPolicy, IngestConfig, IngestHandle,
    IngestPipeline, IngestStats,
};
pub use sdwp_olap::FactTableStats;
