//! The bounded-channel ingestion pipeline and its epoch worker.
//!
//! Producers ([`IngestHandle`], cheaply cloneable) submit [`DeltaBatch`]es
//! into a bounded channel; one dedicated worker thread drains it, applies
//! each batch atomically to the write master through the [`CubeSink`]
//! trait, and publishes an immutable cube snapshot whenever the
//! [`EpochPolicy`] says an epoch is over — after `max_rows` mutations or
//! `max_interval` of wall clock, whichever comes first. Readers only ever
//! see published snapshots, so a batch is either entirely visible or not
//! at all, and queries in flight keep the snapshot they loaded.
//!
//! Backpressure is the bounded channel: [`IngestHandle::submit`] blocks
//! when the queue is full (slowing the producer to the apply rate), while
//! [`IngestHandle::try_submit`] refuses with
//! [`IngestError::Backpressure`] so latency-sensitive producers can shed
//! load instead of stalling.

use crate::delta::{BatchOutcome, DeltaBatch};
use crate::error::IngestError;
use parking_lot::Mutex;
use sdwp_olap::{FactTableStats, OlapError};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where applied batches go: the engine's write master and snapshot
/// publisher. Implemented by `sdwp-core` over its mutex-guarded master
/// cube, `VersionedSwap` snapshot and result cache; kept as a trait so
/// the pipeline (and its tests) do not depend on the engine crate.
pub trait CubeSink: Send + Sync {
    /// Applies one batch **atomically** to the write master: validate
    /// against the current master first, mutate only if the whole batch is
    /// valid, and hold the master lock across the batch so concurrent
    /// writers (rule firing) never interleave inside it.
    fn apply_batch(&self, batch: &DeltaBatch) -> Result<BatchOutcome, OlapError>;

    /// Publishes the current master as a new immutable snapshot and
    /// returns the new generation. `changed_facts` is the union of the
    /// fact tables the epoch's batches changed — the implementor scopes
    /// result-cache invalidation to exactly those facts.
    fn publish_epoch(&self, changed_facts: &BTreeSet<String>) -> u64;

    /// Compacts every fact table whose tombstone pressure crosses the
    /// policy, publishing a fresh snapshot (and remapping whatever
    /// long-lived row-id selections the implementor tracks) per compacted
    /// table. Called by the epoch worker right after each publication.
    /// The default does nothing — sinks without compaction support stay
    /// valid.
    fn maybe_compact(&self, _policy: &CompactionPolicy) -> Vec<CompactionOutcome> {
        Vec::new()
    }

    /// Per-fact storage counters (total / live rows, tombstone ratio,
    /// compactions) of the write master, surfaced through
    /// [`IngestStats::fact_tables`]. The default reports nothing.
    fn fact_stats(&self) -> Vec<FactTableStats> {
        Vec::new()
    }

    /// Called by the supervisor after the epoch worker panicked and
    /// before it is restarted. Implementors re-establish a consistent
    /// externally visible state — `sdwp-core` republishes the write
    /// master as a fresh snapshot, so mutations applied before the panic
    /// but never published become visible instead of lingering
    /// master-only. The default does nothing.
    fn on_worker_restart(&self) {}

    /// Registers `producer`'s anchored compaction version for `fact`:
    /// the sink must retain the remap chain back to `version` (i.e.
    /// never trim past the minimum registered floor), so an id-addressed
    /// producer that lags behind the compaction cadence can still
    /// translate its stale row ids. The default does nothing.
    fn set_producer_floor(&self, _producer: &str, _fact: &str, _version: u64) {}

    /// Drops every floor registered under `producer`, releasing the
    /// remap history it pinned. The default does nothing.
    fn clear_producer_floor(&self, _producer: &str) {}
}

/// When the epoch worker rewrites a tombstone-heavy fact table.
///
/// Disabled by default: compaction remaps stable row ids, so producers
/// that address rows by id (upserts, retractions) must either re-resolve
/// ids after a compaction (via the published remap chain) or only ever
/// append. Enable it by setting a ratio ≤ 1.0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Tombstone ratio (dead rows / total rows) at or above which a fact
    /// table is compacted. A value above `1.0` disables compaction.
    pub max_tombstone_ratio: f64,
    /// Minimum total rows before a table is considered (small tables are
    /// never worth rewriting).
    pub min_rows: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy::disabled()
    }
}

impl CompactionPolicy {
    /// A policy that never compacts (the default).
    pub fn disabled() -> Self {
        CompactionPolicy {
            max_tombstone_ratio: 2.0,
            min_rows: 1024,
        }
    }

    /// Sets the tombstone-ratio trigger (≤ 1.0 enables compaction).
    pub fn with_max_tombstone_ratio(mut self, ratio: f64) -> Self {
        self.max_tombstone_ratio = ratio;
        self
    }

    /// Sets the minimum table size considered for compaction.
    pub fn with_min_rows(mut self, min_rows: usize) -> Self {
        self.min_rows = min_rows;
        self
    }

    /// Whether this policy can ever trigger.
    pub fn is_enabled(&self) -> bool {
        self.max_tombstone_ratio <= 1.0
    }

    /// Whether a table with the given row counts should be compacted now.
    pub fn should_compact(&self, total_rows: usize, live_rows: usize) -> bool {
        self.is_enabled() && total_rows >= self.min_rows.max(1) && {
            let dead = (total_rows - live_rows) as f64;
            dead / total_rows as f64 >= self.max_tombstone_ratio
        }
    }
}

/// What one compaction did, as reported by [`CubeSink::maybe_compact`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// The compacted fact table.
    pub fact: String,
    /// Rows (live + dead) before the rewrite.
    pub rows_before: usize,
    /// Live rows after the rewrite (all of them, by construction).
    pub live_rows: usize,
    /// The generation of the snapshot that published the rewrite.
    pub generation: u64,
}

/// When to close an epoch and publish a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochPolicy {
    /// Publish after this many mutations (appended rows + upserted cells +
    /// retracted rows) have accumulated.
    pub max_rows: usize,
    /// Publish this long after the epoch's first unpublished mutation,
    /// even if `max_rows` was not reached — bounds staleness under a
    /// trickle of updates.
    pub max_interval: Duration,
}

impl Default for EpochPolicy {
    fn default() -> Self {
        EpochPolicy {
            max_rows: 1024,
            max_interval: Duration::from_millis(50),
        }
    }
}

impl EpochPolicy {
    /// Sets the mutation-count trigger (clamped to at least 1).
    pub fn with_max_rows(mut self, max_rows: usize) -> Self {
        self.max_rows = max_rows.max(1);
        self
    }

    /// Sets the wall-clock trigger.
    pub fn with_max_interval(mut self, max_interval: Duration) -> Self {
        self.max_interval = max_interval;
        self
    }
}

/// Configuration of an ingestion pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestConfig {
    /// Capacity of the bounded submission queue (in batches).
    pub queue_depth: usize,
    /// The epoch publication policy.
    pub epoch: EpochPolicy,
    /// The tombstone-compaction policy (disabled by default).
    pub compaction: CompactionPolicy,
    /// How many times the supervisor restarts a panicking epoch worker
    /// before declaring the pipeline down (submissions then refuse with
    /// [`IngestError::WorkerDown`] instead of queueing forever).
    pub max_worker_restarts: u32,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            queue_depth: 64,
            epoch: EpochPolicy::default(),
            compaction: CompactionPolicy::disabled(),
            max_worker_restarts: 16,
        }
    }
}

impl IngestConfig {
    /// Sets the submission-queue depth (clamped to at least 1).
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth.max(1);
        self
    }

    /// Sets the epoch policy.
    pub fn with_epoch(mut self, epoch: EpochPolicy) -> Self {
        self.epoch = epoch;
        self
    }

    /// Sets the compaction policy.
    pub fn with_compaction(mut self, compaction: CompactionPolicy) -> Self {
        self.compaction = compaction;
        self
    }

    /// Sets the supervisor's worker-restart budget.
    pub fn with_max_worker_restarts(mut self, max_worker_restarts: u32) -> Self {
        self.max_worker_restarts = max_worker_restarts;
        self
    }
}

/// Counters describing a pipeline's behaviour so far.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestStats {
    /// Batches accepted into the queue.
    pub batches_submitted: u64,
    /// Batches refused by `try_submit` because the queue was full.
    pub batches_rejected: u64,
    /// Batches applied to the write master.
    pub batches_applied: u64,
    /// Batches dropped because they failed validation (the master is
    /// untouched by a failed batch).
    pub batches_failed: u64,
    /// Fact rows appended.
    pub rows_appended: u64,
    /// Measure cells overwritten.
    pub cells_upserted: u64,
    /// Fact rows retracted.
    pub rows_retracted: u64,
    /// Snapshots published by the epoch worker.
    pub epochs_published: u64,
    /// Generation of the last published snapshot (0 before the first).
    pub last_generation: u64,
    /// Fact-table compactions performed by the epoch worker.
    pub compactions: u64,
    /// Batches accepted but not yet applied or failed — the queue's
    /// current backlog (instantaneous, derived from the counters).
    pub queue_depth: u64,
    /// Times the supervisor restarted a panicked epoch worker.
    pub worker_restarts: u64,
    /// Wall-clock micros (since the Unix epoch) of the worker's most
    /// recent loop iteration — a liveness heartbeat; 0 before the worker
    /// first runs.
    pub last_heartbeat_micros: u64,
    /// True once the supervisor exhausted its restart budget; every
    /// subsequent submission gets [`IngestError::WorkerDown`].
    pub worker_down: bool,
    /// Description of the most recent batch failure, when any.
    pub last_error: Option<String>,
    /// Per-fact storage counters of the write master (live rows,
    /// tombstone ratio, compactions) — the operator's compaction-pressure
    /// gauge.
    pub fact_tables: Vec<FactTableStats>,
}

/// Lock-free counter block shared by handles, the worker and the pipeline.
#[derive(Default)]
struct Shared {
    batches_submitted: AtomicU64,
    batches_rejected: AtomicU64,
    batches_applied: AtomicU64,
    batches_failed: AtomicU64,
    rows_appended: AtomicU64,
    cells_upserted: AtomicU64,
    rows_retracted: AtomicU64,
    epochs_published: AtomicU64,
    last_generation: AtomicU64,
    compactions: AtomicU64,
    worker_restarts: AtomicU64,
    last_heartbeat_micros: AtomicU64,
    worker_down: AtomicBool,
    /// True while the worker holds a received batch it has not yet
    /// counted as applied or failed. A panic mid-apply leaves it set, and
    /// the supervisor converts the orphan into `batches_failed` so the
    /// derived `queue_depth` stays balanced across restarts.
    inflight_batch: AtomicBool,
    closed: AtomicBool,
    /// Submission gate: every submission holds a read guard across its
    /// channel send, and shutdown flips `closed` under the write guard —
    /// so once the worker observes `closed`, every submission that
    /// returned `Ok` is already enqueued and its graceful drain cannot
    /// miss a batch (a bare flag would race a producer blocked inside
    /// `send` on a full queue).
    gate: parking_lot::RwLock<()>,
    last_error: Mutex<Option<String>>,
}

impl Shared {
    fn snapshot(&self) -> IngestStats {
        let submitted = self.batches_submitted.load(Ordering::Relaxed);
        let applied = self.batches_applied.load(Ordering::Relaxed);
        let failed = self.batches_failed.load(Ordering::Relaxed);
        IngestStats {
            batches_submitted: submitted,
            batches_rejected: self.batches_rejected.load(Ordering::Relaxed),
            batches_applied: applied,
            batches_failed: failed,
            rows_appended: self.rows_appended.load(Ordering::Relaxed),
            cells_upserted: self.cells_upserted.load(Ordering::Relaxed),
            rows_retracted: self.rows_retracted.load(Ordering::Relaxed),
            epochs_published: self.epochs_published.load(Ordering::Relaxed),
            last_generation: self.last_generation.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            queue_depth: submitted.saturating_sub(applied + failed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            last_heartbeat_micros: self.last_heartbeat_micros.load(Ordering::Relaxed),
            worker_down: self.worker_down.load(Ordering::Acquire),
            last_error: self.last_error.lock().clone(),
            fact_tables: Vec::new(),
        }
    }
}

enum Msg {
    Batch(DeltaBatch),
    /// Publish anything pending and reply with the last generation — the
    /// producer-side barrier: every batch submitted before the flush is
    /// applied and published once the reply arrives.
    Flush(mpsc::SyncSender<u64>),
}

/// A cloneable producer handle onto an [`IngestPipeline`].
#[derive(Clone)]
pub struct IngestHandle {
    tx: mpsc::SyncSender<Msg>,
    shared: Arc<Shared>,
    sink: Arc<dyn CubeSink>,
}

impl IngestHandle {
    /// Submits a batch, **blocking** while the queue is full (the
    /// backpressure path for bulk producers). Errors once the pipeline is
    /// shut down.
    pub fn submit(&self, batch: DeltaBatch) -> Result<(), IngestError> {
        // Held across the (possibly blocking) send: see `Shared::gate`.
        // No deadlock with shutdown's write guard — the worker keeps
        // consuming until `closed` is set, which only happens after every
        // in-flight send completes and releases its read guard.
        let _gate = self.shared.gate.read();
        self.refuse_if_unserviceable()?;
        self.tx
            .send(Msg::Batch(batch))
            .map_err(|_| self.channel_gone())?;
        self.shared
            .batches_submitted
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Submits a batch without blocking: a full queue is refused with
    /// [`IngestError::Backpressure`] (and counted), protecting the
    /// producer's latency under overload. The refused batch rides back
    /// inside the error ([`IngestError::into_batch`]) so a retrying
    /// producer never has to clone what it submits.
    pub fn try_submit(&self, batch: DeltaBatch) -> Result<(), IngestError> {
        let _gate = self.shared.gate.read();
        self.refuse_if_unserviceable()?;
        match self.tx.try_send(Msg::Batch(batch)) {
            Ok(()) => {
                self.shared
                    .batches_submitted
                    .fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(Msg::Batch(batch))) => {
                self.shared.batches_rejected.fetch_add(1, Ordering::Relaxed);
                Err(IngestError::Backpressure(Box::new(batch)))
            }
            Err(_) => Err(self.channel_gone()),
        }
    }

    /// Blocks until every batch submitted before this call has been
    /// applied and published; returns the generation of the last published
    /// snapshot. The deterministic synchronisation point for tests,
    /// examples and graceful drains.
    pub fn flush(&self) -> Result<u64, IngestError> {
        self.refuse_if_unserviceable()?;
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        self.tx
            .send(Msg::Flush(reply_tx))
            .map_err(|_| self.channel_gone())?;
        // A panic between the worker receiving the flush and replying
        // drops `reply_tx`; map the broken reply channel through the
        // same worker-state triage instead of reporting a shutdown.
        reply_rx.recv().map_err(|_| self.channel_gone())
    }

    /// Registers this producer's anchored compaction version for `fact`
    /// with the sink: the remap chain is retained back to `version`, so
    /// the producer's id-addressed batches keep translating even when it
    /// lags behind the compaction cadence. Forwards to
    /// [`CubeSink::set_producer_floor`].
    pub fn set_producer_floor(&self, producer: &str, fact: &str, version: u64) {
        self.sink.set_producer_floor(producer, fact, version);
    }

    /// Releases every remap floor registered under `producer`. Forwards
    /// to [`CubeSink::clear_producer_floor`].
    pub fn clear_producer_floor(&self, producer: &str) {
        self.sink.clear_producer_floor(producer);
    }

    /// A snapshot of the pipeline's counters, including the per-fact
    /// storage gauges of the sink's write master.
    pub fn stats(&self) -> IngestStats {
        let mut stats = self.shared.snapshot();
        stats.fact_tables = self.sink.fact_stats();
        stats
    }

    fn refuse_if_unserviceable(&self) -> Result<(), IngestError> {
        if self.shared.worker_down.load(Ordering::Acquire) {
            return Err(IngestError::WorkerDown);
        }
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(IngestError::Closed);
        }
        Ok(())
    }

    /// The error for a dead channel: the receiver is only ever dropped by
    /// shutdown or by the supervisor giving up, so pick the matching one.
    fn channel_gone(&self) -> IngestError {
        if self.shared.worker_down.load(Ordering::Acquire) {
            IngestError::WorkerDown
        } else {
            IngestError::Closed
        }
    }
}

/// The ingestion pipeline: owns the epoch worker thread.
///
/// Dropping the pipeline shuts it down gracefully: pending batches are
/// drained and applied, a final epoch is published, and the worker is
/// joined.
pub struct IngestPipeline {
    handle: IngestHandle,
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl IngestPipeline {
    /// Starts a pipeline over a sink.
    pub fn start(sink: Arc<dyn CubeSink>, config: IngestConfig) -> Self {
        let shared = Arc::new(Shared::default());
        let (tx, rx) = mpsc::sync_channel(config.queue_depth.max(1));
        let worker = {
            let sink = Arc::clone(&sink);
            let shared = Arc::clone(&shared);
            let policy = config.epoch;
            let compaction = config.compaction;
            let max_restarts = config.max_worker_restarts;
            std::thread::Builder::new()
                .name("sdwp-ingest".into())
                .spawn(move || supervisor_loop(rx, sink, shared, policy, compaction, max_restarts))
                .expect("spawning the ingest worker")
        };
        IngestPipeline {
            handle: IngestHandle {
                tx,
                shared: Arc::clone(&shared),
                sink,
            },
            shared,
            worker: Some(worker),
        }
    }

    /// A new producer handle.
    pub fn handle(&self) -> IngestHandle {
        self.handle.clone()
    }

    /// A snapshot of the pipeline's counters, including the per-fact
    /// storage gauges of the sink's write master.
    pub fn stats(&self) -> IngestStats {
        self.handle.stats()
    }

    /// Shuts the pipeline down: already-accepted batches are applied, a
    /// final epoch is published, the worker joins. Outstanding handles
    /// get [`IngestError::Closed`] from then on. Returns the final
    /// counters.
    pub fn shutdown(mut self) -> IngestStats {
        self.shutdown_in_place();
        self.shared.snapshot()
    }

    fn shutdown_in_place(&mut self) {
        if let Some(worker) = self.worker.take() {
            // The write guard waits for every in-flight submission's read
            // guard, so all `Ok`-returning submits are enqueued before
            // `closed` becomes observable and the worker's drain starts.
            {
                let _gate = self.shared.gate.write();
                self.shared.closed.store(true, Ordering::Release);
            }
            // Wake the worker if it is parked in recv_timeout; a full
            // queue is fine (it is about to wake and drain anyway).
            let (reply_tx, _reply_rx) = mpsc::sync_channel(1);
            let _ = self.handle.tx.try_send(Msg::Flush(reply_tx));
            // The supervisor contains worker panics, so a join error would
            // mean the supervisor itself died — nothing useful remains to
            // do with the process at that point; don't poison shutdown.
            let _ = worker.join();
        }
    }
}

impl Drop for IngestPipeline {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Wall-clock micros since the Unix epoch, for the worker heartbeat.
fn now_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|elapsed| elapsed.as_micros() as u64)
        .unwrap_or(0)
}

/// Runs the epoch worker under a panic supervisor: a panicking
/// [`worker_loop`] is contained with `catch_unwind`, the sink is asked to
/// re-establish a consistent published state
/// ([`CubeSink::on_worker_restart`]), and the worker restarts on the same
/// receiver after a capped exponential backoff — submitted batches keep
/// draining across restarts. A batch orphaned mid-apply is converted to
/// `batches_failed` so the derived queue depth stays balanced. Once the
/// restart budget is exhausted the pipeline is declared down: the
/// receiver drops, and every producer gets [`IngestError::WorkerDown`].
fn supervisor_loop(
    rx: mpsc::Receiver<Msg>,
    sink: Arc<dyn CubeSink>,
    shared: Arc<Shared>,
    policy: EpochPolicy,
    compaction: CompactionPolicy,
    max_restarts: u32,
) {
    let mut restarts: u32 = 0;
    loop {
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            worker_loop(&rx, &sink, &shared, policy, compaction)
        }));
        if run.is_ok() {
            // Graceful exit: shutdown drain finished or every sender hung
            // up. Nothing to supervise.
            return;
        }
        if shared.inflight_batch.swap(false, Ordering::AcqRel) {
            shared.batches_failed.fetch_add(1, Ordering::Relaxed);
            *shared.last_error.lock() =
                Some("ingest worker panicked mid-apply; the batch was dropped".to_string());
        } else {
            *shared.last_error.lock() =
                Some("ingest worker panicked between batches; restarted".to_string());
        }
        shared.worker_restarts.fetch_add(1, Ordering::Relaxed);
        restarts += 1;
        if restarts > max_restarts {
            shared.worker_down.store(true, Ordering::Release);
            return;
        }
        // Unpublished-but-applied mutations must not linger master-only
        // across the restart; let the sink republish last-good state.
        sink.on_worker_restart();
        // Capped exponential backoff: 2 ms, 4 ms, … capped at 64 ms, so a
        // crash loop cannot spin the CPU but recovery stays prompt.
        std::thread::sleep(Duration::from_millis(1u64 << restarts.min(6)));
    }
}

/// The epoch worker: drain → apply → publish on policy triggers, with a
/// tombstone-compaction check after every publication. Borrows the
/// receiver so the supervisor can re-enter it after a contained panic;
/// epoch-in-progress state (pending rows, changed facts) is rebuilt from
/// scratch on each entry — the restart hook has already republished
/// whatever the lost epoch had applied.
fn worker_loop(
    rx: &mpsc::Receiver<Msg>,
    sink: &Arc<dyn CubeSink>,
    shared: &Arc<Shared>,
    policy: EpochPolicy,
    compaction: CompactionPolicy,
) {
    let mut pending_rows: u64 = 0;
    let mut changed_facts: BTreeSet<String> = BTreeSet::new();
    let mut epoch_started: Option<Instant> = None;

    shared
        .last_heartbeat_micros
        .store(now_micros(), Ordering::Relaxed);

    let apply = |batch: &DeltaBatch,
                 pending_rows: &mut u64,
                 changed_facts: &mut BTreeSet<String>,
                 epoch_started: &mut Option<Instant>| {
        // From here until the applied/failed counter bump, a panic
        // orphans this batch; the marker lets the supervisor account it.
        shared.inflight_batch.store(true, Ordering::Release);
        sdwp_olap::fail_point!("ingest.apply");
        match sink.apply_batch(batch) {
            Ok(outcome) => {
                shared.batches_applied.fetch_add(1, Ordering::Relaxed);
                shared
                    .rows_appended
                    .fetch_add(outcome.rows_appended, Ordering::Relaxed);
                shared
                    .cells_upserted
                    .fetch_add(outcome.cells_upserted, Ordering::Relaxed);
                shared
                    .rows_retracted
                    .fetch_add(outcome.rows_retracted, Ordering::Relaxed);
                if outcome.mutations() > 0 {
                    if *pending_rows == 0 {
                        *epoch_started = Some(Instant::now());
                    }
                    *pending_rows += outcome.mutations();
                    changed_facts.extend(outcome.changed_facts);
                }
            }
            Err(error) => {
                shared.batches_failed.fetch_add(1, Ordering::Relaxed);
                *shared.last_error.lock() = Some(error.to_string());
            }
        }
        shared.inflight_batch.store(false, Ordering::Release);
    };

    let publish = |pending_rows: &mut u64,
                   changed_facts: &mut BTreeSet<String>,
                   epoch_started: &mut Option<Instant>| {
        if *pending_rows == 0 {
            // Nothing changed: publishing would bump the generation and
            // (needlessly) stop every cached result from hitting.
            return;
        }
        sdwp_olap::fail_point!("ingest.publish");
        let generation = sink.publish_epoch(changed_facts);
        shared.epochs_published.fetch_add(1, Ordering::Relaxed);
        shared.last_generation.store(generation, Ordering::Relaxed);
        *pending_rows = 0;
        changed_facts.clear();
        *epoch_started = None;
        // Retractions only accumulate at publication boundaries, so this
        // is the one place compaction pressure can newly cross the
        // policy. Each compaction publishes its own snapshot; readers'
        // stale selections keep resolving through the remap chain.
        if compaction.is_enabled() {
            let outcomes = sink.maybe_compact(&compaction);
            if let Some(last) = outcomes.last() {
                shared
                    .compactions
                    .fetch_add(outcomes.len() as u64, Ordering::Relaxed);
                shared
                    .last_generation
                    .store(last.generation, Ordering::Relaxed);
            }
        }
    };

    loop {
        shared
            .last_heartbeat_micros
            .store(now_micros(), Ordering::Relaxed);
        if shared.closed.load(Ordering::Acquire) {
            // Graceful drain: apply everything already accepted, publish
            // once, exit.
            while let Ok(msg) = rx.try_recv() {
                match msg {
                    Msg::Batch(batch) => apply(
                        &batch,
                        &mut pending_rows,
                        &mut changed_facts,
                        &mut epoch_started,
                    ),
                    Msg::Flush(reply) => {
                        let _ = reply;
                    }
                }
            }
            publish(&mut pending_rows, &mut changed_facts, &mut epoch_started);
            return;
        }

        let timeout = match epoch_started {
            Some(started) => policy.max_interval.saturating_sub(started.elapsed()),
            // Idle: wake at the epoch cadence anyway to notice shutdown.
            None => policy.max_interval.max(Duration::from_millis(10)),
        };
        match rx.recv_timeout(timeout) {
            Ok(Msg::Batch(batch)) => {
                apply(
                    &batch,
                    &mut pending_rows,
                    &mut changed_facts,
                    &mut epoch_started,
                );
                let interval_elapsed = epoch_started
                    .map(|started| started.elapsed() >= policy.max_interval)
                    .unwrap_or(false);
                if pending_rows >= policy.max_rows as u64 || interval_elapsed {
                    publish(&mut pending_rows, &mut changed_facts, &mut epoch_started);
                }
            }
            Ok(Msg::Flush(reply)) => {
                publish(&mut pending_rows, &mut changed_facts, &mut epoch_started);
                let _ = reply.send(shared.last_generation.load(Ordering::Relaxed));
            }
            Err(RecvTimeoutError::Timeout) => {
                let interval_elapsed = epoch_started
                    .map(|started| started.elapsed() >= policy.max_interval)
                    .unwrap_or(false);
                if interval_elapsed {
                    publish(&mut pending_rows, &mut changed_facts, &mut epoch_started);
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                publish(&mut pending_rows, &mut changed_facts, &mut epoch_started);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DeltaBatch;
    use parking_lot::Mutex as PlMutex;
    use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};
    use sdwp_olap::{CellValue, Cube};

    fn small_cube() -> Cube {
        let schema = SchemaBuilder::new("DW")
            .dimension(
                DimensionBuilder::new("Store")
                    .simple_level("Store", "name")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .dimension("Store")
                    .build(),
            )
            .build()
            .unwrap();
        let mut cube = Cube::new(schema);
        cube.add_dimension_member("Store", vec![("Store.name", CellValue::from("S0"))])
            .unwrap();
        cube
    }

    /// A sink over a bare master cube: publishes are recorded as
    /// `(generation, live rows, changed facts)` tuples.
    struct TestSink {
        master: PlMutex<Cube>,
        generation: AtomicU64,
        published: PlMutex<Vec<(u64, usize, BTreeSet<String>)>>,
        /// Tests hold this to stall the worker inside `apply_batch`.
        gate: PlMutex<()>,
        /// Tests set this to make the next N `apply_batch` calls panic,
        /// exercising the supervisor.
        panics_remaining: AtomicU64,
        /// `on_worker_restart` invocations observed.
        restart_hooks: AtomicU64,
        /// `(producer, fact, version)` floors registered with the sink.
        floors: PlMutex<Vec<(String, String, u64)>>,
    }

    impl TestSink {
        fn new() -> Self {
            TestSink {
                master: PlMutex::new(small_cube()),
                generation: AtomicU64::new(0),
                published: PlMutex::new(Vec::new()),
                gate: PlMutex::new(()),
                panics_remaining: AtomicU64::new(0),
                restart_hooks: AtomicU64::new(0),
                floors: PlMutex::new(Vec::new()),
            }
        }
    }

    impl CubeSink for TestSink {
        fn apply_batch(&self, batch: &DeltaBatch) -> Result<BatchOutcome, OlapError> {
            let _gate = self.gate.lock();
            if self
                .panics_remaining
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
                .is_ok()
            {
                panic!("TestSink: injected apply panic");
            }
            let mut master = self.master.lock();
            batch.validate(&master)?;
            Ok(batch.apply(&mut master))
        }

        fn on_worker_restart(&self) {
            self.restart_hooks.fetch_add(1, Ordering::Relaxed);
        }

        fn set_producer_floor(&self, producer: &str, fact: &str, version: u64) {
            self.floors
                .lock()
                .push((producer.to_string(), fact.to_string(), version));
        }

        fn clear_producer_floor(&self, producer: &str) {
            self.floors.lock().retain(|(p, _, _)| p != producer);
        }

        fn publish_epoch(&self, changed_facts: &BTreeSet<String>) -> u64 {
            let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
            let live = self.master.lock().total_live_fact_rows();
            self.published
                .lock()
                .push((generation, live, changed_facts.clone()));
            generation
        }

        fn maybe_compact(&self, policy: &CompactionPolicy) -> Vec<CompactionOutcome> {
            let mut master = self.master.lock();
            let candidates: Vec<(String, usize, usize)> = master
                .fact_table_stats()
                .into_iter()
                .filter(|s| policy.should_compact(s.total_rows, s.live_rows))
                .map(|s| (s.fact, s.total_rows, s.live_rows))
                .collect();
            let mut outcomes = Vec::new();
            for (fact, rows_before, live_rows) in candidates {
                master.compact_fact_table(&fact).expect("fact exists");
                let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
                outcomes.push(CompactionOutcome {
                    fact,
                    rows_before,
                    live_rows,
                    generation,
                });
            }
            outcomes
        }

        fn fact_stats(&self) -> Vec<FactTableStats> {
            self.master.lock().fact_table_stats()
        }
    }

    fn append_batch(rows: usize) -> DeltaBatch {
        let mut batch = DeltaBatch::new();
        for _ in 0..rows {
            batch = batch.append(
                "Sales",
                vec![("Store", 0usize)],
                vec![("UnitSales", CellValue::Float(1.0))],
            );
        }
        batch
    }

    #[test]
    fn row_threshold_closes_the_epoch() {
        let sink = Arc::new(TestSink::new());
        let pipeline = IngestPipeline::start(
            Arc::clone(&sink) as Arc<dyn CubeSink>,
            IngestConfig::default().with_epoch(
                EpochPolicy::default()
                    .with_max_rows(4)
                    .with_max_interval(Duration::from_secs(3600)),
            ),
        );
        let handle = pipeline.handle();
        handle.submit(append_batch(2)).unwrap();
        handle.submit(append_batch(2)).unwrap();
        handle.submit(append_batch(1)).unwrap();
        let generation = handle.flush().unwrap();
        assert_eq!(generation, 2);
        let published = sink.published.lock().clone();
        // Epoch 1 closed at the 4-row threshold; the flush published the
        // trailing single row.
        assert_eq!(published.len(), 2);
        assert_eq!(published[0].1, 4);
        assert_eq!(published[1].1, 5);
        assert!(published[0].2.contains("Sales"));
        let stats = pipeline.shutdown();
        assert_eq!(stats.batches_applied, 3);
        assert_eq!(stats.rows_appended, 5);
        assert_eq!(stats.epochs_published, 2);
        assert_eq!(stats.last_generation, 2);
    }

    #[test]
    fn interval_closes_the_epoch_without_reaching_the_row_threshold() {
        let sink = Arc::new(TestSink::new());
        let pipeline = IngestPipeline::start(
            Arc::clone(&sink) as Arc<dyn CubeSink>,
            IngestConfig::default().with_epoch(
                EpochPolicy::default()
                    .with_max_rows(1_000_000)
                    .with_max_interval(Duration::from_millis(20)),
            ),
        );
        pipeline.handle().submit(append_batch(1)).unwrap();
        // Poll: the wall-clock trigger must publish without a flush.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pipeline.stats().epochs_published == 0 {
            assert!(Instant::now() < deadline, "interval trigger never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(sink.published.lock()[0].1, 1);
    }

    #[test]
    fn try_submit_sheds_load_when_the_queue_is_full() {
        let sink = Arc::new(TestSink::new());
        let pipeline = IngestPipeline::start(
            Arc::clone(&sink) as Arc<dyn CubeSink>,
            IngestConfig::default().with_queue_depth(1),
        );
        let handle = pipeline.handle();
        // Stall the worker inside apply_batch …
        let gate = sink.gate.lock();
        handle.submit(append_batch(1)).unwrap(); // worker picks this up and blocks
                                                 // … wait until the worker actually holds the first batch, then
                                                 // fill the queue.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match handle.try_submit(append_batch(1)) {
                Ok(()) => {
                    if handle.stats().batches_submitted == 2 {
                        // Both the in-flight and queued slot are taken once
                        // a further try_submit reports Full.
                        if let Err(IngestError::Backpressure(_)) =
                            handle.try_submit(append_batch(1))
                        {
                            break;
                        }
                    }
                }
                Err(IngestError::Backpressure(_)) => break,
                Err(other) => panic!("unexpected {other:?}"),
            }
            assert!(Instant::now() < deadline, "queue never filled");
        }
        assert!(handle.stats().batches_rejected >= 1);
        drop(gate);
        let stats = pipeline.shutdown();
        // Everything accepted was applied; nothing was lost.
        assert_eq!(stats.batches_applied, stats.batches_submitted);
    }

    #[test]
    fn failed_batches_are_dropped_whole_and_counted() {
        let sink = Arc::new(TestSink::new());
        let pipeline = IngestPipeline::start(
            Arc::clone(&sink) as Arc<dyn CubeSink>,
            IngestConfig::default(),
        );
        let handle = pipeline.handle();
        // A batch with one good and one bad delta must not apply at all.
        let bad = DeltaBatch::new()
            .append(
                "Sales",
                vec![("Store", 0usize)],
                vec![("UnitSales", CellValue::Float(1.0))],
            )
            .retract("Sales", 99);
        handle.submit(bad).unwrap();
        handle.submit(append_batch(1)).unwrap();
        handle.flush().unwrap();
        let stats = handle.stats();
        assert_eq!(stats.batches_failed, 1);
        assert_eq!(stats.batches_applied, 1);
        assert_eq!(stats.rows_appended, 1);
        assert!(stats.last_error.as_deref().unwrap().contains("retract"));
        assert_eq!(sink.master.lock().total_live_fact_rows(), 1);
        drop(pipeline);
    }

    #[test]
    fn empty_batches_never_publish() {
        let sink = Arc::new(TestSink::new());
        let pipeline = IngestPipeline::start(
            Arc::clone(&sink) as Arc<dyn CubeSink>,
            IngestConfig::default()
                .with_epoch(EpochPolicy::default().with_max_interval(Duration::from_millis(10))),
        );
        let handle = pipeline.handle();
        handle.submit(DeltaBatch::new()).unwrap();
        handle.submit(DeltaBatch::new()).unwrap();
        assert_eq!(handle.flush().unwrap(), 0);
        std::thread::sleep(Duration::from_millis(40));
        let stats = pipeline.shutdown();
        assert_eq!(stats.batches_applied, 2);
        assert_eq!(stats.epochs_published, 0, "no-op batches must not publish");
        assert!(sink.published.lock().is_empty());
    }

    #[test]
    fn shutdown_never_loses_an_accepted_batch() {
        // A producer blocked inside a full-queue `submit` races shutdown:
        // the submission gate guarantees that once `submit` returns `Ok`,
        // the graceful drain applies the batch.
        let sink = Arc::new(TestSink::new());
        let pipeline = IngestPipeline::start(
            Arc::clone(&sink) as Arc<dyn CubeSink>,
            IngestConfig::default().with_queue_depth(1).with_epoch(
                EpochPolicy::default()
                    .with_max_rows(1_000_000)
                    .with_max_interval(Duration::from_secs(3600)),
            ),
        );
        let handle = pipeline.handle();
        // Stall the worker mid-apply and fill the queue so the next
        // blocking submit parks inside `send`.
        let gate = sink.gate.lock();
        handle.submit(append_batch(1)).unwrap();
        handle.submit(append_batch(1)).unwrap();
        let blocked = {
            let handle = handle.clone();
            std::thread::spawn(move || handle.submit(append_batch(1)))
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(gate);
        let stats = pipeline.shutdown();
        match blocked.join().expect("submitter finishes") {
            // Accepted: the drain must have applied it.
            Ok(()) => assert_eq!(stats.batches_applied, stats.batches_submitted),
            // Refused: it must not have been counted as submitted.
            Err(IngestError::Closed) => {
                assert_eq!(stats.batches_applied, stats.batches_submitted);
                assert_eq!(stats.batches_submitted, 2);
            }
            Err(other) => panic!("unexpected {other:?}"),
        }
        assert_eq!(stats.rows_appended, stats.batches_applied);
    }

    #[test]
    fn compaction_policy_thresholds() {
        let disabled = CompactionPolicy::disabled();
        assert!(!disabled.is_enabled());
        assert!(!disabled.should_compact(1_000_000, 0));
        let policy = CompactionPolicy::disabled()
            .with_max_tombstone_ratio(0.5)
            .with_min_rows(4);
        assert!(policy.is_enabled());
        assert!(!policy.should_compact(2, 0), "below min_rows");
        assert!(!policy.should_compact(8, 5), "ratio 3/8 under threshold");
        assert!(policy.should_compact(8, 4));
        assert!(policy.should_compact(8, 0));
        assert!(!policy.should_compact(0, 0));
    }

    #[test]
    fn tombstone_pressure_triggers_worker_compaction() {
        let sink = Arc::new(TestSink::new());
        let pipeline = IngestPipeline::start(
            Arc::clone(&sink) as Arc<dyn CubeSink>,
            IngestConfig::default()
                .with_epoch(
                    EpochPolicy::default()
                        .with_max_rows(1_000_000)
                        .with_max_interval(Duration::from_secs(3600)),
                )
                .with_compaction(
                    CompactionPolicy::disabled()
                        .with_max_tombstone_ratio(0.5)
                        .with_min_rows(4),
                ),
        );
        let handle = pipeline.handle();
        handle.submit(append_batch(6)).unwrap();
        let after_appends = handle.flush().unwrap();
        assert_eq!(
            handle.stats().compactions,
            0,
            "no tombstones, no compaction"
        );
        // Retract 4 of the 6 rows: ratio 4/6 crosses the 0.5 policy at the
        // next publication, and the worker rewrites the table.
        let mut retractions = DeltaBatch::new();
        for row in 0..4 {
            retractions = retractions.retract("Sales", row);
        }
        handle.submit(retractions).unwrap();
        let generation = handle.flush().unwrap();
        assert!(generation > after_appends, "compaction published on top");
        let stats = handle.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.rows_retracted, 4);
        // The per-fact gauges show the rewritten table: dense and
        // tombstone-free, with the compaction counted.
        let sales = stats
            .fact_tables
            .iter()
            .find(|s| s.fact == "Sales")
            .expect("Sales gauge");
        assert_eq!((sales.total_rows, sales.live_rows), (2, 2));
        assert_eq!(sales.tombstone_ratio, 0.0);
        assert_eq!(sales.compactions, 1);
        // The master's remap chain survives for stale selections.
        assert_eq!(
            sink.master.lock().fact_table("Sales").unwrap().remaps.len(),
            1
        );
    }

    #[test]
    fn shutdown_drains_then_closes_handles() {
        let sink = Arc::new(TestSink::new());
        let pipeline = IngestPipeline::start(
            Arc::clone(&sink) as Arc<dyn CubeSink>,
            IngestConfig::default().with_epoch(
                EpochPolicy::default()
                    .with_max_rows(1_000_000)
                    .with_max_interval(Duration::from_secs(3600)),
            ),
        );
        let handle = pipeline.handle();
        handle.submit(append_batch(3)).unwrap();
        let stats = pipeline.shutdown();
        assert_eq!(stats.rows_appended, 3);
        assert_eq!(stats.epochs_published, 1, "shutdown publishes the tail");
        assert!(matches!(
            handle.submit(append_batch(1)),
            Err(IngestError::Closed)
        ));
        assert!(matches!(
            handle.try_submit(append_batch(1)),
            Err(IngestError::Closed)
        ));
        assert!(handle.flush().is_err());
    }

    #[test]
    fn supervisor_restarts_a_panicking_worker_and_keeps_serving() {
        let sink = Arc::new(TestSink::new());
        sink.panics_remaining.store(1, Ordering::Release);
        let pipeline = IngestPipeline::start(
            Arc::clone(&sink) as Arc<dyn CubeSink>,
            IngestConfig::default().with_epoch(
                EpochPolicy::default()
                    .with_max_rows(1_000_000)
                    .with_max_interval(Duration::from_secs(3600)),
            ),
        );
        let handle = pipeline.handle();
        handle.submit(append_batch(1)).unwrap(); // lost to the injected panic
        handle.submit(append_batch(2)).unwrap(); // applied by the restarted worker
        let generation = handle.flush().expect("pipeline serves after a restart");
        assert_eq!(generation, 1);
        let stats = handle.stats();
        assert_eq!(stats.worker_restarts, 1);
        assert_eq!(sink.restart_hooks.load(Ordering::Relaxed), 1);
        assert!(!stats.worker_down);
        // The orphaned batch is accounted as failed, so the derived
        // backlog is balanced: nothing is silently "still queued".
        assert_eq!(stats.batches_failed, 1);
        assert_eq!(stats.batches_applied, 1);
        assert_eq!(stats.rows_appended, 2);
        assert_eq!(stats.queue_depth, 0);
        assert!(stats.last_error.as_deref().unwrap().contains("panicked"));
        assert!(stats.last_heartbeat_micros > 0, "heartbeat never beat");
    }

    #[test]
    fn restart_budget_exhaustion_declares_the_worker_down() {
        let sink = Arc::new(TestSink::new());
        sink.panics_remaining.store(u64::MAX, Ordering::Release);
        let pipeline = IngestPipeline::start(
            Arc::clone(&sink) as Arc<dyn CubeSink>,
            IngestConfig::default().with_max_worker_restarts(1),
        );
        let handle = pipeline.handle();
        handle.submit(append_batch(1)).unwrap();
        handle.submit(append_batch(1)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !handle.stats().worker_down {
            assert!(Instant::now() < deadline, "supervisor never gave up");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(matches!(
            handle.submit(append_batch(1)),
            Err(IngestError::WorkerDown)
        ));
        assert!(matches!(
            handle.try_submit(append_batch(1)),
            Err(IngestError::WorkerDown)
        ));
        assert!(matches!(handle.flush(), Err(IngestError::WorkerDown)));
        let stats = pipeline.shutdown(); // must not hang or panic
        assert_eq!(stats.worker_restarts, 2, "one restart, one final failure");
        assert_eq!(stats.batches_failed, 2);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn producer_floors_forward_to_the_sink() {
        let sink = Arc::new(TestSink::new());
        let pipeline = IngestPipeline::start(
            Arc::clone(&sink) as Arc<dyn CubeSink>,
            IngestConfig::default(),
        );
        let handle = pipeline.handle();
        handle.set_producer_floor("ticker-1", "Sales", 3);
        handle.set_producer_floor("ticker-2", "Sales", 5);
        assert_eq!(sink.floors.lock().len(), 2);
        handle.clear_producer_floor("ticker-1");
        let floors = sink.floors.lock().clone();
        assert_eq!(
            floors,
            vec![("ticker-2".to_string(), "Sales".to_string(), 5)]
        );
    }
}
