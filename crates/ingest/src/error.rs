//! Ingestion errors.

use crate::delta::DeltaBatch;
use std::fmt;

/// Why a submission (or flush) failed.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// The bounded submission queue is full — the producer is outrunning
    /// the apply rate. `try_submit` reports this instead of blocking so
    /// latency-sensitive producers can shed load; the refused batch is
    /// handed back (boxed) so a retrying producer does not have to clone
    /// every batch it submits.
    Backpressure(Box<DeltaBatch>),
    /// The pipeline has been shut down; no further batches are accepted.
    Closed,
    /// The epoch worker died (its supervisor exhausted the restart
    /// budget); submissions would sit in the queue forever, so they are
    /// refused with a typed error instead of hanging on a dead channel.
    WorkerDown,
    /// A producer's row-id bookkeeping lags past the serving layer's
    /// retained remap window: its anchored compaction version
    /// (`requested`) is older than the oldest retained transition
    /// (`floor`), so id-addressed deltas can no longer be translated
    /// safely. Recover by discarding outstanding id-addressed work and
    /// re-anchoring at a flush barrier — or prevent it up front by
    /// registering a producer floor with the sink so trimming never
    /// passes the slowest producer.
    ProducerLagged {
        /// Oldest compaction version the remap chain still covers.
        floor: u64,
        /// The version the producer is still anchored at.
        requested: u64,
    },
}

impl IngestError {
    /// Recovers the refused batch from a backpressure error, consuming
    /// the error. `None` for [`IngestError::Closed`] (the pipeline is
    /// gone; retrying is pointless).
    pub fn into_batch(self) -> Option<DeltaBatch> {
        match self {
            IngestError::Backpressure(batch) => Some(*batch),
            IngestError::Closed | IngestError::WorkerDown | IngestError::ProducerLagged { .. } => {
                None
            }
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Backpressure(_) => {
                write!(f, "ingest queue full: producer outruns the apply rate")
            }
            IngestError::Closed => write!(f, "ingest pipeline is shut down"),
            IngestError::WorkerDown => write!(
                f,
                "ingest worker is down: the supervisor exhausted its restart budget"
            ),
            IngestError::ProducerLagged { floor, requested } => write!(
                f,
                "producer lagged past the retained remap window (anchored at \
                 version {requested}, chain starts at {floor}): discard \
                 id-addressed work and re-anchor at a flush barrier, or \
                 register a producer floor with the sink"
            ),
        }
    }
}

impl std::error::Error for IngestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let refused = IngestError::Backpressure(Box::new(DeltaBatch::new()));
        assert!(refused.to_string().contains("full"));
        assert_eq!(refused.into_batch(), Some(DeltaBatch::new()));
        assert!(IngestError::Closed.to_string().contains("shut down"));
        assert_eq!(IngestError::Closed.into_batch(), None);
        assert!(IngestError::WorkerDown
            .to_string()
            .contains("restart budget"));
        assert_eq!(IngestError::WorkerDown.into_batch(), None);
        let lagged = IngestError::ProducerLagged {
            floor: 7,
            requested: 3,
        };
        let text = lagged.to_string();
        assert!(text.contains("version 3"));
        assert!(text.contains("starts at 7"));
        assert!(text.contains("re-anchor"));
        assert_eq!(lagged.into_batch(), None);
    }
}
