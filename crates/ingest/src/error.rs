//! Ingestion errors.

use crate::delta::DeltaBatch;
use std::fmt;

/// Why a submission (or flush) failed.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// The bounded submission queue is full — the producer is outrunning
    /// the apply rate. `try_submit` reports this instead of blocking so
    /// latency-sensitive producers can shed load; the refused batch is
    /// handed back (boxed) so a retrying producer does not have to clone
    /// every batch it submits.
    Backpressure(Box<DeltaBatch>),
    /// The pipeline has been shut down; no further batches are accepted.
    Closed,
}

impl IngestError {
    /// Recovers the refused batch from a backpressure error, consuming
    /// the error. `None` for [`IngestError::Closed`] (the pipeline is
    /// gone; retrying is pointless).
    pub fn into_batch(self) -> Option<DeltaBatch> {
        match self {
            IngestError::Backpressure(batch) => Some(*batch),
            IngestError::Closed => None,
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Backpressure(_) => {
                write!(f, "ingest queue full: producer outruns the apply rate")
            }
            IngestError::Closed => write!(f, "ingest pipeline is shut down"),
        }
    }
}

impl std::error::Error for IngestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let refused = IngestError::Backpressure(Box::new(DeltaBatch::new()));
        assert!(refused.to_string().contains("full"));
        assert_eq!(refused.into_batch(), Some(DeltaBatch::new()));
        assert!(IngestError::Closed.to_string().contains("shut down"));
        assert_eq!(IngestError::Closed.into_batch(), None);
    }
}
