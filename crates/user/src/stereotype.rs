//! Stereotypes of the spatial-aware user model UML profile (Fig. 3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The stereotypes defined by the paper's Spatial-aware User model (SUS)
/// UML profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SusStereotype {
    /// «User» — the decision maker.
    User,
    /// «Session» — an analysis session.
    Session,
    /// «Characteristic» — a domain-independent user characteristic.
    Characteristic,
    /// «LocationContext» — the geographic context of the analysis session.
    LocationContext,
    /// «SpatialSelection» — a tracked spatial-interest event.
    SpatialSelection,
}

impl SusStereotype {
    /// All SUS stereotypes, matching the profile of Fig. 3.
    pub const ALL: [SusStereotype; 5] = [
        SusStereotype::User,
        SusStereotype::Session,
        SusStereotype::Characteristic,
        SusStereotype::LocationContext,
        SusStereotype::SpatialSelection,
    ];

    /// The guillemet notation used in the paper's figures.
    pub fn notation(&self) -> String {
        format!("\u{00ab}{self}\u{00bb}")
    }
}

impl fmt::Display for SusStereotype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SusStereotype::User => "User",
            SusStereotype::Session => "Session",
            SusStereotype::Characteristic => "Characteristic",
            SusStereotype::LocationContext => "LocationContext",
            SusStereotype::SpatialSelection => "SpatialSelection",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_matches_figure_3() {
        // Fig. 3 defines exactly these five stereotypes.
        let names: Vec<String> = SusStereotype::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "User",
                "Session",
                "Characteristic",
                "LocationContext",
                "SpatialSelection"
            ]
        );
    }

    #[test]
    fn notation() {
        assert_eq!(
            SusStereotype::SpatialSelection.notation(),
            "«SpatialSelection»"
        );
    }
}
