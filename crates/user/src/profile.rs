//! User profiles («User») and the concurrent profile store.

use crate::characteristic::{Characteristic, Role};
use crate::error::UserError;
use crate::selection::SpatialSelectionInterest;
use crate::stereotype::SusStereotype;
use crate::value::Value;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The profile of one decision maker — the «User» class of the SUS profile
/// plus its associations (role, characteristics, spatial-selection
/// interests).
///
/// The profile is "updated during the lifetime of the system": rules read
/// it in their conditions and update it through the `SetContent` action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct UserProfile {
    /// Stable identifier of the user (login).
    pub id: String,
    /// Display name of the decision maker.
    pub name: String,
    /// The user's organisational role (`dm2role` association).
    pub role: Option<Role>,
    /// Domain-independent characteristics, keyed by name.
    pub characteristics: BTreeMap<String, Characteristic>,
    /// Tracked spatial-selection interests, keyed by lower-cased name
    /// (`dm2airportcity` navigates to the interest named `AirportCity`).
    pub interests: BTreeMap<String, SpatialSelectionInterest>,
    /// Free-form extra properties used by custom rules.
    pub custom: BTreeMap<String, Value>,
}

impl UserProfile {
    /// Creates an empty profile.
    pub fn new(id: impl Into<String>, name: impl Into<String>) -> Self {
        UserProfile {
            id: id.into(),
            name: name.into(),
            ..UserProfile::default()
        }
    }

    /// Sets the user's role, returning `self` for chaining.
    pub fn with_role(mut self, role: Role) -> Self {
        self.role = Some(role);
        self
    }

    /// Adds a characteristic, returning `self` for chaining.
    pub fn with_characteristic(mut self, c: Characteristic) -> Self {
        self.characteristics.insert(c.name.to_lowercase(), c);
        self
    }

    /// Declares a tracked spatial-selection interest, returning `self`.
    pub fn with_interest(mut self, interest: SpatialSelectionInterest) -> Self {
        self.interests
            .insert(interest.name.to_lowercase(), interest);
        self
    }

    /// Looks up a characteristic by case-insensitive name.
    pub fn characteristic(&self, name: &str) -> Option<&Characteristic> {
        self.characteristics.get(&name.to_lowercase())
    }

    /// Looks up an interest by case-insensitive name.
    pub fn interest(&self, name: &str) -> Option<&SpatialSelectionInterest> {
        self.interests.get(&name.to_lowercase())
    }

    /// Mutable lookup of an interest; creates it (degree 0) when missing so
    /// that interest-tracking rules never fail on first use.
    pub fn interest_mut(&mut self, name: &str) -> &mut SpatialSelectionInterest {
        self.interests
            .entry(name.to_lowercase())
            .or_insert_with(|| SpatialSelectionInterest::new(name))
    }

    /// The role name, when a role is assigned.
    pub fn role_name(&self) -> Option<&str> {
        self.role.as_ref().map(|r| r.name.as_str())
    }

    /// The SUS stereotype of this element.
    pub fn stereotype(&self) -> SusStereotype {
        SusStereotype::User
    }
}

/// A thread-safe store of user profiles, keyed by user id.
///
/// The web facade serves many concurrent sessions; `parking_lot::RwLock`
/// keeps reads cheap while `SetContent` updates take the write lock.
#[derive(Debug, Clone, Default)]
pub struct ProfileStore {
    inner: Arc<RwLock<BTreeMap<String, UserProfile>>>,
}

impl ProfileStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ProfileStore::default()
    }

    /// Inserts or replaces a profile.
    pub fn upsert(&self, profile: UserProfile) {
        self.inner.write().insert(profile.id.clone(), profile);
    }

    /// Returns a clone of the profile for the given user id.
    pub fn get(&self, user_id: &str) -> Result<UserProfile, UserError> {
        self.inner
            .read()
            .get(user_id)
            .cloned()
            .ok_or_else(|| UserError::NotFound {
                kind: "user",
                id: user_id.to_string(),
            })
    }

    /// Applies a mutation to the stored profile under the write lock.
    pub fn update<R>(
        &self,
        user_id: &str,
        f: impl FnOnce(&mut UserProfile) -> R,
    ) -> Result<R, UserError> {
        let mut guard = self.inner.write();
        let profile = guard.get_mut(user_id).ok_or_else(|| UserError::NotFound {
            kind: "user",
            id: user_id.to_string(),
        })?;
        Ok(f(profile))
    }

    /// Number of stored profiles.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Returns `true` when no profiles are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ids of every stored profile.
    pub fn user_ids(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regional_manager() -> UserProfile {
        UserProfile::new("u-glorio", "Octavio")
            .with_role(Role::new("RegionalSalesManager"))
            .with_characteristic(Characteristic::new("language", "es"))
            .with_interest(SpatialSelectionInterest::new("AirportCity"))
    }

    #[test]
    fn profile_accessors() {
        let p = regional_manager();
        assert_eq!(p.role_name(), Some("RegionalSalesManager"));
        assert!(p.characteristic("Language").is_some());
        assert!(p.characteristic("age").is_none());
        assert!(p.interest("airportcity").is_some());
        assert!(p.interest("TrainCity").is_none());
        assert_eq!(p.stereotype(), SusStereotype::User);
    }

    #[test]
    fn interest_mut_creates_on_demand() {
        let mut p = regional_manager();
        assert!(p.interest("HospitalCity").is_none());
        p.interest_mut("HospitalCity").increment();
        assert_eq!(p.interest("hospitalcity").unwrap().degree, 1.0);
    }

    #[test]
    fn store_round_trip() {
        let store = ProfileStore::new();
        assert!(store.is_empty());
        store.upsert(regional_manager());
        assert_eq!(store.len(), 1);
        assert_eq!(store.user_ids(), vec!["u-glorio".to_string()]);
        let p = store.get("u-glorio").unwrap();
        assert_eq!(p.name, "Octavio");
        assert!(store.get("nobody").is_err());
    }

    #[test]
    fn store_update_mutates_in_place() {
        let store = ProfileStore::new();
        store.upsert(regional_manager());
        let degree = store
            .update("u-glorio", |p| {
                p.interest_mut("AirportCity").increment();
                p.interest("AirportCity").unwrap().degree
            })
            .unwrap();
        assert_eq!(degree, 1.0);
        assert_eq!(
            store
                .get("u-glorio")
                .unwrap()
                .interest("AirportCity")
                .unwrap()
                .degree,
            1.0
        );
        assert!(store.update("ghost", |_| ()).is_err());
    }

    #[test]
    fn store_is_cloneable_and_shared() {
        let store = ProfileStore::new();
        store.upsert(regional_manager());
        let clone = store.clone();
        clone
            .update("u-glorio", |p| {
                p.custom.insert("theme".into(), Value::from("dark"))
            })
            .unwrap();
        // The original sees the update because the clone shares the inner map.
        assert_eq!(
            store.get("u-glorio").unwrap().custom.get("theme"),
            Some(&Value::Text("dark".into()))
        );
    }
}
