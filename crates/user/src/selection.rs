//! Tracked spatial-interest events («SpatialSelection»).

use crate::stereotype::SusStereotype;
use serde::{Deserialize, Serialize};

/// A tracked spatial-selection interest.
///
/// The paper's Example 5.3 stores, in the user model, how many times the
/// decision maker selected *cities at less than 20 km of an airport*
/// (class `AirportCity` in Fig. 4, attribute `degree`). Rules then compare
/// the degree against a designer-defined threshold to trigger further
/// personalization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialSelectionInterest {
    /// Interest name, e.g. `"AirportCity"`.
    pub name: String,
    /// The textual spatial condition this interest tracks (for
    /// documentation / auditing; the executable condition lives in the
    /// PRML rule).
    pub condition: Option<String>,
    /// Number of times the user performed a selection satisfying the
    /// condition.
    pub degree: f64,
}

impl SpatialSelectionInterest {
    /// Creates an interest with degree zero.
    pub fn new(name: impl Into<String>) -> Self {
        SpatialSelectionInterest {
            name: name.into(),
            condition: None,
            degree: 0.0,
        }
    }

    /// Creates an interest documenting the spatial condition it tracks.
    pub fn with_condition(name: impl Into<String>, condition: impl Into<String>) -> Self {
        SpatialSelectionInterest {
            name: name.into(),
            condition: Some(condition.into()),
            degree: 0.0,
        }
    }

    /// Increments the degree by one (the `SetContent(degree, degree + 1)`
    /// idiom of Example 5.3).
    pub fn increment(&mut self) {
        self.degree += 1.0;
    }

    /// Returns `true` once the degree strictly exceeds the designer-defined
    /// threshold.
    pub fn exceeds(&self, threshold: f64) -> bool {
        self.degree > threshold
    }

    /// The SUS stereotype of this element.
    pub fn stereotype(&self) -> SusStereotype {
        SusStereotype::SpatialSelection
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_interest_has_zero_degree() {
        let i = SpatialSelectionInterest::new("AirportCity");
        assert_eq!(i.degree, 0.0);
        assert!(i.condition.is_none());
        assert_eq!(i.stereotype(), SusStereotype::SpatialSelection);
    }

    #[test]
    fn increment_and_threshold() {
        let mut i = SpatialSelectionInterest::with_condition(
            "AirportCity",
            "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km",
        );
        assert!(!i.exceeds(0.0));
        i.increment();
        assert_eq!(i.degree, 1.0);
        assert!(i.exceeds(0.0));
        assert!(!i.exceeds(1.0)); // strictly greater, as in the paper's rule
        for _ in 0..4 {
            i.increment();
        }
        assert!(i.exceeds(4.0));
        assert_eq!(i.degree, 5.0);
    }
}
