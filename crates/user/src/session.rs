//! Analysis sessions («Session») and the events they produce.

use crate::location::LocationContext;
use crate::stereotype::SusStereotype;
use serde::{Deserialize, Serialize};

/// Identifier of an analysis session.
pub type SessionId = u64;

/// Lifecycle state of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionStatus {
    /// The session is running (between SessionStart and SessionEnd).
    Active,
    /// The session has ended.
    Ended,
}

/// Events generated during a session, mirroring the PRML tracking events of
/// §4.2.1 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// The user logged in and the analysis session started.
    SessionStart,
    /// The analysis session ended.
    SessionEnd,
    /// The user performed a spatial selection: the named GeoMD element was
    /// selected under the recorded spatial expression.
    SpatialSelection {
        /// The GeoMD element that was selected (as a path string).
        element: String,
        /// The spatial expression that was satisfied (as rule text).
        expression: String,
    },
}

/// One analysis session of a user against the (personalized) SDW.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// Session identifier.
    pub id: SessionId,
    /// Identifier of the user running the session.
    pub user_id: String,
    /// Where the session is performed from (the `s2location` association).
    pub location: Option<LocationContext>,
    /// Current lifecycle status.
    pub status: SessionStatus,
    /// Ordered log of the events observed so far.
    pub events: Vec<SessionEvent>,
}

impl Session {
    /// Starts a new session for a user; records the SessionStart event.
    pub fn start(id: SessionId, user_id: impl Into<String>) -> Self {
        Session {
            id,
            user_id: user_id.into(),
            location: None,
            status: SessionStatus::Active,
            events: vec![SessionEvent::SessionStart],
        }
    }

    /// Starts a session with a known location context.
    pub fn start_at(id: SessionId, user_id: impl Into<String>, location: LocationContext) -> Self {
        let mut s = Session::start(id, user_id);
        s.location = Some(location);
        s
    }

    /// Records a spatial-selection event.
    pub fn record_spatial_selection(
        &mut self,
        element: impl Into<String>,
        expression: impl Into<String>,
    ) {
        self.events.push(SessionEvent::SpatialSelection {
            element: element.into(),
            expression: expression.into(),
        });
    }

    /// Ends the session, recording the SessionEnd event. Ending twice is a
    /// no-op.
    pub fn end(&mut self) {
        if self.status == SessionStatus::Active {
            self.status = SessionStatus::Ended;
            self.events.push(SessionEvent::SessionEnd);
        }
    }

    /// Returns `true` while the session is active.
    pub fn is_active(&self) -> bool {
        self.status == SessionStatus::Active
    }

    /// Number of spatial-selection events recorded so far.
    pub fn spatial_selection_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SessionEvent::SpatialSelection { .. }))
            .count()
    }

    /// The SUS stereotype of this element.
    pub fn stereotype(&self) -> SusStereotype {
        SusStereotype::Session
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_lifecycle() {
        let mut s = Session::start(1, "u1");
        assert!(s.is_active());
        assert_eq!(s.events, vec![SessionEvent::SessionStart]);
        assert_eq!(s.stereotype(), SusStereotype::Session);
        s.end();
        assert!(!s.is_active());
        assert_eq!(s.events.last(), Some(&SessionEvent::SessionEnd));
        // Ending again does not duplicate the event.
        s.end();
        assert_eq!(s.events.len(), 2);
    }

    #[test]
    fn session_with_location() {
        let s = Session::start_at(2, "u1", LocationContext::at_point("office", 1.0, 2.0));
        assert_eq!(s.location.as_ref().unwrap().name, "office");
        assert_eq!(s.user_id, "u1");
    }

    #[test]
    fn spatial_selection_events_are_counted() {
        let mut s = Session::start(3, "u2");
        assert_eq!(s.spatial_selection_count(), 0);
        s.record_spatial_selection(
            "GeoMD.Store.City",
            "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km",
        );
        s.record_spatial_selection("GeoMD.Store", "Inside(...)");
        assert_eq!(s.spatial_selection_count(), 2);
        assert_eq!(s.events.len(), 3); // start + 2 selections
    }
}
