//! Declarative description of a spatial-aware user model (Figs. 3 and 4).
//!
//! The paper distinguishes the *profile* (Fig. 3: which stereotypes exist)
//! from the *user model designed for a concrete system* (Fig. 4: the
//! classes the designer declares — DecisionMaker, Role, Location,
//! AirportCity…). [`SusModel`] captures that designer-facing declaration so
//! it can be rendered, validated and compared against the requirements,
//! while [`crate::UserProfile`] holds the runtime instance data.

use crate::stereotype::SusStereotype;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A property of a SUS class (e.g. `degree: Integer` on `AirportCity`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SusProperty {
    /// Property name.
    pub name: String,
    /// Textual type annotation (e.g. `"String"`, `"Integer"`, `"POINT"`).
    pub type_name: String,
}

impl SusProperty {
    /// Creates a property.
    pub fn new(name: impl Into<String>, type_name: impl Into<String>) -> Self {
        SusProperty {
            name: name.into(),
            type_name: type_name.into(),
        }
    }
}

/// A stereotyped class of the designed user model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SusClass {
    /// Class name (e.g. `"DecisionMaker"`, `"AirportCity"`).
    pub name: String,
    /// The stereotype the class carries.
    pub stereotype: SusStereotype,
    /// Declared properties.
    pub properties: Vec<SusProperty>,
    /// Names of the classes this class is associated with.
    pub associations: Vec<String>,
}

impl SusClass {
    /// Creates a class with no properties or associations.
    pub fn new(name: impl Into<String>, stereotype: SusStereotype) -> Self {
        SusClass {
            name: name.into(),
            stereotype,
            properties: Vec::new(),
            associations: Vec::new(),
        }
    }

    /// Adds a property, returning `self` for chaining.
    pub fn property(mut self, name: impl Into<String>, type_name: impl Into<String>) -> Self {
        self.properties.push(SusProperty::new(name, type_name));
        self
    }

    /// Adds an association to another class, returning `self`.
    pub fn associated_with(mut self, class: impl Into<String>) -> Self {
        self.associations.push(class.into());
        self
    }
}

/// A designed spatial-aware user model: a set of stereotyped classes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SusModel {
    /// Model name.
    pub name: String,
    /// The stereotyped classes of the model.
    pub classes: Vec<SusClass>,
}

impl SusModel {
    /// Creates an empty model.
    pub fn new(name: impl Into<String>) -> Self {
        SusModel {
            name: name.into(),
            classes: Vec::new(),
        }
    }

    /// Adds a class, returning `self` for chaining.
    pub fn class(mut self, class: SusClass) -> Self {
        self.classes.push(class);
        self
    }

    /// Looks up a class by name.
    pub fn find(&self, name: &str) -> Option<&SusClass> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// All classes carrying the given stereotype.
    pub fn with_stereotype(&self, stereotype: SusStereotype) -> Vec<&SusClass> {
        self.classes
            .iter()
            .filter(|c| c.stereotype == stereotype)
            .collect()
    }

    /// Basic well-formedness: class names unique, associations resolvable,
    /// exactly one «User» class.
    pub fn validate(&self) -> Result<(), String> {
        let mut names = std::collections::HashSet::new();
        for class in &self.classes {
            if !names.insert(class.name.as_str()) {
                return Err(format!("duplicate class name '{}'", class.name));
            }
        }
        for class in &self.classes {
            for assoc in &class.associations {
                if self.find(assoc).is_none() {
                    return Err(format!(
                        "class '{}' is associated with unknown class '{}'",
                        class.name, assoc
                    ));
                }
            }
        }
        let users = self.with_stereotype(SusStereotype::User).len();
        if users != 1 {
            return Err(format!("expected exactly one «User» class, found {users}"));
        }
        Ok(())
    }

    /// The user model of the paper's motivating example (Fig. 4): a
    /// `DecisionMaker` user with a `Role` characteristic, a `Session` with
    /// a `Location` context, and the `AirportCity` spatial-selection
    /// interest with its `degree` counter.
    pub fn motivating_example() -> Self {
        SusModel::new("SalesDW user model")
            .class(
                SusClass::new("DecisionMaker", SusStereotype::User)
                    .property("name", "String")
                    .associated_with("Role")
                    .associated_with("AnalysisSession")
                    .associated_with("AirportCity"),
            )
            .class(SusClass::new("Role", SusStereotype::Characteristic).property("name", "String"))
            .class(
                SusClass::new("AnalysisSession", SusStereotype::Session)
                    .property("id", "Integer")
                    .associated_with("Location"),
            )
            .class(
                SusClass::new("Location", SusStereotype::LocationContext)
                    .property("geometry", "POINT"),
            )
            .class(
                SusClass::new("AirportCity", SusStereotype::SpatialSelection)
                    .property("degree", "Integer"),
            )
    }
}

impl fmt::Display for SusModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SUS model '{}'", self.name)?;
        for class in &self.classes {
            writeln!(f, "  {} {}", class.stereotype.notation(), class.name)?;
            for p in &class.properties {
                writeln!(f, "    {}: {}", p.name, p.type_name)?;
            }
            for a in &class.associations {
                writeln!(f, "    -> {a}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motivating_example_matches_figure_4() {
        let model = SusModel::motivating_example();
        model.validate().unwrap();
        // The requirements of Section 4.1: store the decision maker role and
        // the AirportCity spatial selection with its degree.
        let user = model.find("DecisionMaker").unwrap();
        assert_eq!(user.stereotype, SusStereotype::User);
        assert!(user.associations.contains(&"Role".to_string()));
        let airport_city = model.find("AirportCity").unwrap();
        assert_eq!(airport_city.stereotype, SusStereotype::SpatialSelection);
        assert!(airport_city.properties.iter().any(|p| p.name == "degree"));
        let location = model.find("Location").unwrap();
        assert_eq!(location.stereotype, SusStereotype::LocationContext);
        assert_eq!(location.properties[0].type_name, "POINT");
    }

    #[test]
    fn validation_catches_duplicates_and_dangling_associations() {
        let dup = SusModel::new("bad")
            .class(SusClass::new("A", SusStereotype::User))
            .class(SusClass::new("A", SusStereotype::Session));
        assert!(dup.validate().is_err());

        let dangling = SusModel::new("bad")
            .class(SusClass::new("U", SusStereotype::User).associated_with("Ghost"));
        assert!(dangling.validate().is_err());

        let no_user = SusModel::new("bad").class(SusClass::new("S", SusStereotype::Session));
        assert!(no_user.validate().is_err());

        let two_users = SusModel::new("bad")
            .class(SusClass::new("U1", SusStereotype::User))
            .class(SusClass::new("U2", SusStereotype::User));
        assert!(two_users.validate().is_err());
    }

    #[test]
    fn stereotype_filter_and_display() {
        let model = SusModel::motivating_example();
        assert_eq!(model.with_stereotype(SusStereotype::User).len(), 1);
        assert_eq!(
            model.with_stereotype(SusStereotype::SpatialSelection).len(),
            1
        );
        let text = model.to_string();
        assert!(text.contains("«User» DecisionMaker"));
        assert!(text.contains("«SpatialSelection» AirportCity"));
        assert!(text.contains("degree: Integer"));
    }
}
