//! Errors for the spatial-aware user model.

use std::fmt;

/// Errors raised while building profiles or navigating `SUS.*` paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserError {
    /// A `SUS` path could not be resolved.
    PathResolution {
        /// The textual path.
        path: String,
        /// Why resolution failed.
        reason: String,
    },
    /// An assignment targeted a read-only or non-existent property.
    InvalidAssignment {
        /// The textual path.
        path: String,
        /// Why the assignment failed.
        reason: String,
    },
    /// A profile or session was not found in the store.
    NotFound {
        /// The kind of entity ("user", "session").
        kind: &'static str,
        /// The identifier that was looked up.
        id: String,
    },
    /// A value had the wrong type for the requested operation.
    TypeMismatch {
        /// What was expected.
        expected: &'static str,
        /// What was found.
        found: String,
    },
}

impl fmt::Display for UserError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UserError::PathResolution { path, reason } => {
                write!(f, "cannot resolve SUS path '{path}': {reason}")
            }
            UserError::InvalidAssignment { path, reason } => {
                write!(f, "cannot assign to SUS path '{path}': {reason}")
            }
            UserError::NotFound { kind, id } => write!(f, "{kind} '{id}' not found"),
            UserError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for UserError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = UserError::PathResolution {
            path: "SUS.X".into(),
            reason: "no such role".into(),
        };
        assert!(e.to_string().contains("SUS.X"));
        let e = UserError::NotFound {
            kind: "user",
            id: "u1".into(),
        };
        assert_eq!(e.to_string(), "user 'u1' not found");
        let e = UserError::TypeMismatch {
            expected: "number",
            found: "text".into(),
        };
        assert!(e.to_string().contains("expected number"));
        let e = UserError::InvalidAssignment {
            path: "SUS.DecisionMaker.name".into(),
            reason: "read-only".into(),
        };
        assert!(e.to_string().contains("read-only"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&UserError::NotFound {
            kind: "session",
            id: "s".into(),
        });
    }
}
