//! User characteristics and roles («Characteristic»).

use crate::stereotype::SusStereotype;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A domain-independent user characteristic (age, language, department,
/// …) — a «Characteristic» class instance in the SUS profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Characteristic {
    /// Characteristic name (e.g. `"language"`).
    pub name: String,
    /// Its current value.
    pub value: Value,
}

impl Characteristic {
    /// Creates a characteristic.
    pub fn new(name: impl Into<String>, value: impl Into<Value>) -> Self {
        Characteristic {
            name: name.into(),
            value: value.into(),
        }
    }

    /// The SUS stereotype of this element.
    pub fn stereotype(&self) -> SusStereotype {
        SusStereotype::Characteristic
    }
}

/// The decision maker's organisational role — the characteristic the
/// paper's Example 5.1 dispatches on (`SUS.DecisionMaker.dm2role.name =
/// 'RegionalSalesManager'`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Role {
    /// Role name, e.g. `"RegionalSalesManager"`.
    pub name: String,
    /// Optional free-text description of the role's responsibilities.
    pub description: Option<String>,
}

impl Role {
    /// Creates a role with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Role {
            name: name.into(),
            description: None,
        }
    }

    /// Creates a role with a description.
    pub fn with_description(name: impl Into<String>, description: impl Into<String>) -> Self {
        Role {
            name: name.into(),
            description: Some(description.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characteristic_construction() {
        let c = Characteristic::new("language", "es");
        assert_eq!(c.name, "language");
        assert_eq!(c.value, Value::Text("es".into()));
        assert_eq!(c.stereotype(), SusStereotype::Characteristic);
        let age = Characteristic::new("age", 41i64);
        assert_eq!(age.value.as_number(), Some(41.0));
    }

    #[test]
    fn role_construction() {
        let r = Role::new("RegionalSalesManager");
        assert_eq!(r.name, "RegionalSalesManager");
        assert!(r.description.is_none());
        let r2 = Role::with_description("Analyst", "explores sales cubes");
        assert_eq!(r2.description.as_deref(), Some("explores sales cubes"));
    }
}
