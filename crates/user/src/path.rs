//! Resolution and assignment of `SUS.*` path expressions.
//!
//! The paper navigates the user model with OCL-like path expressions whose
//! source concept is always the user class, e.g.:
//!
//! * `SUS.DecisionMaker.name`
//! * `SUS.DecisionMaker.dm2role.name`
//! * `SUS.DecisionMaker.dm2session.s2location.geometry`
//! * `SUS.DecisionMaker.dm2airportcity.degree`
//!
//! Association roles follow the paper's `dm2...` / `s2...` naming: the
//! resolver accepts both the role names (`dm2role`, `dm2session`,
//! `s2location`, `dm2<interest>`) and the bare association targets
//! (`role`, `session`, `location`, `<interest>`).

use crate::error::UserError;
use crate::profile::UserProfile;
use crate::session::Session;
use crate::value::Value;

/// A parsed `SUS` path: the segments after the `SUS.` prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SusPath {
    /// Navigation segments (the first is the user class name).
    pub segments: Vec<String>,
}

impl SusPath {
    /// Parses a textual path. The `SUS.` prefix is optional.
    pub fn parse(text: &str) -> Result<Self, UserError> {
        let mut parts: Vec<String> = text.split('.').map(|s| s.trim().to_string()).collect();
        if parts.first().map(|p| p.eq_ignore_ascii_case("sus")) == Some(true) {
            parts.remove(0);
        }
        if parts.is_empty() || parts.iter().any(String::is_empty) {
            return Err(UserError::PathResolution {
                path: text.to_string(),
                reason: "path needs at least the user class segment".into(),
            });
        }
        Ok(SusPath { segments: parts })
    }
}

/// Strips an association-role prefix (`dm2`, `s2`, `u2`) from a segment,
/// returning the target name: `dm2role` → `role`, `s2location` →
/// `location`.
fn strip_role_prefix(segment: &str) -> &str {
    let lower_len = |prefix: &str| {
        if segment.len() > prefix.len() && segment[..prefix.len()].eq_ignore_ascii_case(prefix) {
            Some(prefix.len())
        } else {
            None
        }
    };
    for prefix in ["dm2", "s2", "u2"] {
        if let Some(n) = lower_len(prefix) {
            return &segment[n..];
        }
    }
    segment
}

/// Resolves a `SUS` path against a profile and (optionally) the current
/// session, returning the value it denotes.
pub fn resolve_sus_path(
    profile: &UserProfile,
    session: Option<&Session>,
    path: &SusPath,
) -> Result<Value, UserError> {
    let text = || format!("SUS.{}", path.segments.join("."));
    let err = |reason: String| UserError::PathResolution {
        path: text(),
        reason,
    };
    // segments[0] is the user class name; anything is accepted since the
    // source concept is always the user.
    let rest = &path.segments[1..];
    if rest.is_empty() {
        return Ok(Value::Text(profile.name.clone()));
    }

    let head = strip_role_prefix(&rest[0]);
    let tail = &rest[1..];

    match head.to_ascii_lowercase().as_str() {
        "name" if tail.is_empty() => Ok(Value::Text(profile.name.clone())),
        "id" if tail.is_empty() => Ok(Value::Text(profile.id.clone())),
        "role" => {
            // A user without an assigned role resolves to Null so that rule
            // conditions such as `dm2role.name = 'RegionalSalesManager'`
            // simply evaluate to false rather than failing the session.
            let Some(role) = profile.role.as_ref() else {
                return Ok(Value::Null);
            };
            match tail.first().map(String::as_str) {
                None | Some("name") => Ok(Value::Text(role.name.clone())),
                Some("description") => Ok(role
                    .description
                    .clone()
                    .map(Value::Text)
                    .unwrap_or(Value::Null)),
                Some(other) => Err(err(format!("role has no property '{other}'"))),
            }
        }
        "session" => {
            // No active session resolves to Null (see the role case above).
            let Some(session) = session else {
                return Ok(Value::Null);
            };
            if tail.is_empty() {
                return Ok(Value::Integer(session.id as i64));
            }
            let next = strip_role_prefix(&tail[0]);
            match next.to_ascii_lowercase().as_str() {
                "id" => Ok(Value::Integer(session.id as i64)),
                "location" => {
                    // A session without a reported location resolves to Null.
                    let Some(loc) = session.location.as_ref() else {
                        return Ok(Value::Null);
                    };
                    match tail.get(1).map(String::as_str) {
                        None | Some("geometry") => Ok(Value::Geometry(loc.geometry.clone())),
                        Some("name") => Ok(Value::Text(loc.name.clone())),
                        Some(other) => {
                            Err(err(format!("location context has no property '{other}'")))
                        }
                    }
                }
                other => Err(err(format!("session has no association '{other}'"))),
            }
        }
        _ => {
            // Interest, characteristic or custom property, in that order.
            if let Some(interest) = profile.interest(head) {
                return match tail.first().map(String::as_str) {
                    None | Some("degree") => Ok(Value::Float(interest.degree)),
                    Some("name") => Ok(Value::Text(interest.name.clone())),
                    Some("condition") => Ok(interest
                        .condition
                        .clone()
                        .map(Value::Text)
                        .unwrap_or(Value::Null)),
                    Some(other) => Err(err(format!("interest has no property '{other}'"))),
                };
            }
            if let Some(characteristic) = profile.characteristic(head) {
                if !tail.is_empty() && tail[0] != "value" {
                    return Err(err(format!(
                        "characteristic '{}' has no property '{}'",
                        head, tail[0]
                    )));
                }
                return Ok(characteristic.value.clone());
            }
            if let Some(value) = profile.custom.get(head) {
                return Ok(value.clone());
            }
            // An interest that has never been tracked reads as degree 0, so
            // threshold rules work for users whose profile does not declare
            // the interest yet.
            if tail.first().map(String::as_str) == Some("degree") {
                return Ok(Value::Float(0.0));
            }
            Err(err(format!(
                "'{head}' is not a role, session, interest, characteristic or custom property"
            )))
        }
    }
}

/// Assigns a value to a `SUS` path (the model-side effect of the
/// `SetContent` action).
///
/// Writable targets: the user name, the role name, interest degrees and
/// conditions, characteristic values and custom properties (created on
/// first assignment).
pub fn assign_sus_path(
    profile: &mut UserProfile,
    path: &SusPath,
    value: Value,
) -> Result<(), UserError> {
    let text = || format!("SUS.{}", path.segments.join("."));
    let err = |reason: String| UserError::InvalidAssignment {
        path: text(),
        reason,
    };
    let rest = &path.segments[1..];
    if rest.is_empty() {
        return Err(err("cannot assign to the user object itself".into()));
    }
    let head = strip_role_prefix(&rest[0]).to_string();
    let tail = &rest[1..];

    match head.to_ascii_lowercase().as_str() {
        "name" if tail.is_empty() => {
            profile.name = value.to_string();
            Ok(())
        }
        "role" => {
            let new_name = match &value {
                Value::Text(s) => s.clone(),
                other => other.to_string(),
            };
            match tail.first().map(String::as_str) {
                None | Some("name") => {
                    match profile.role.as_mut() {
                        Some(role) => role.name = new_name,
                        None => profile.role = Some(crate::characteristic::Role::new(new_name)),
                    }
                    Ok(())
                }
                Some(other) => Err(err(format!("cannot assign to role property '{other}'"))),
            }
        }
        "session" => Err(err("session properties are managed by the engine".into())),
        "id" => Err(err("the user id is immutable".into())),
        _ => {
            // Interests take priority when the property is 'degree' or the
            // interest already exists.
            let is_degree = matches!(tail.first().map(String::as_str), Some("degree"));
            if is_degree || profile.interest(&head).is_some() {
                let interest = profile.interest_mut(&head);
                match tail.first().map(String::as_str) {
                    None | Some("degree") => {
                        let number = value.as_number().ok_or_else(|| UserError::TypeMismatch {
                            expected: "number",
                            found: value.type_name().to_string(),
                        })?;
                        interest.degree = number;
                        Ok(())
                    }
                    Some("condition") => {
                        interest.condition = Some(value.to_string());
                        Ok(())
                    }
                    Some(other) => {
                        Err(err(format!("cannot assign to interest property '{other}'")))
                    }
                }
            } else if profile.characteristic(&head).is_some() {
                profile
                    .characteristics
                    .get_mut(&head.to_lowercase())
                    .expect("checked above")
                    .value = value;
                Ok(())
            } else {
                // New custom property.
                if !tail.is_empty() {
                    return Err(err(format!(
                        "unknown property '{}' cannot be navigated into",
                        head
                    )));
                }
                profile.custom.insert(head, value);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characteristic::{Characteristic, Role};
    use crate::location::LocationContext;
    use crate::selection::SpatialSelectionInterest;

    fn profile() -> UserProfile {
        UserProfile::new("u1", "Octavio")
            .with_role(Role::with_description(
                "RegionalSalesManager",
                "manages a region",
            ))
            .with_characteristic(Characteristic::new("language", "es"))
            .with_interest(SpatialSelectionInterest::new("AirportCity"))
    }

    fn session() -> Session {
        Session::start_at(7, "u1", LocationContext::at_point("office", 3.0, 4.0))
    }

    fn get(
        profile: &UserProfile,
        session: Option<&Session>,
        path: &str,
    ) -> Result<Value, UserError> {
        resolve_sus_path(profile, session, &SusPath::parse(path).unwrap())
    }

    #[test]
    fn parse_strips_prefix() {
        let p = SusPath::parse("SUS.DecisionMaker.dm2role.name").unwrap();
        assert_eq!(p.segments, vec!["DecisionMaker", "dm2role", "name"]);
        let q = SusPath::parse("DecisionMaker.name").unwrap();
        assert_eq!(q.segments.len(), 2);
        assert!(SusPath::parse("SUS.").is_err());
        assert!(SusPath::parse("").is_err());
    }

    #[test]
    fn resolve_name_and_id() {
        let p = profile();
        assert_eq!(
            get(&p, None, "SUS.DecisionMaker.name").unwrap(),
            Value::Text("Octavio".into())
        );
        assert_eq!(
            get(&p, None, "SUS.DecisionMaker.id").unwrap(),
            Value::Text("u1".into())
        );
        assert_eq!(
            get(&p, None, "SUS.DecisionMaker").unwrap(),
            Value::Text("Octavio".into())
        );
    }

    #[test]
    fn resolve_role_as_in_example_51() {
        let p = profile();
        // Paper: SUS.DecisionMaker.dm2role.name = 'RegionalSalesManager'
        assert_eq!(
            get(&p, None, "SUS.DecisionMaker.dm2role.name").unwrap(),
            Value::Text("RegionalSalesManager".into())
        );
        assert_eq!(
            get(&p, None, "SUS.DecisionMaker.role").unwrap(),
            Value::Text("RegionalSalesManager".into())
        );
        assert_eq!(
            get(&p, None, "SUS.DecisionMaker.dm2role.description").unwrap(),
            Value::Text("manages a region".into())
        );
        let no_role = UserProfile::new("u2", "Ana");
        // A missing role resolves to Null so conditions evaluate to false.
        assert_eq!(
            get(&no_role, None, "SUS.DecisionMaker.dm2role.name").unwrap(),
            Value::Null
        );
    }

    #[test]
    fn resolve_session_location_as_in_example_52() {
        let p = profile();
        let s = session();
        // Paper: SUS.DecisionMaker.dm2session.s2location.geometry
        let v = get(
            &p,
            Some(&s),
            "SUS.DecisionMaker.dm2session.s2location.geometry",
        )
        .unwrap();
        let g = v.as_geometry().unwrap();
        assert_eq!(g.as_point().unwrap().x(), 3.0);
        assert_eq!(
            get(&p, Some(&s), "SUS.DecisionMaker.dm2session.s2location.name").unwrap(),
            Value::Text("office".into())
        );
        assert_eq!(
            get(&p, Some(&s), "SUS.DecisionMaker.dm2session.id").unwrap(),
            Value::Integer(7)
        );
        // Without an active session the path resolves to Null.
        assert_eq!(
            get(&p, None, "SUS.DecisionMaker.dm2session.s2location.geometry").unwrap(),
            Value::Null
        );
        // A session without a location also resolves to Null.
        let bare = Session::start(9, "u1");
        assert_eq!(
            get(
                &p,
                Some(&bare),
                "SUS.DecisionMaker.dm2session.s2location.geometry"
            )
            .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn resolve_interest_degree_as_in_example_53() {
        let mut p = profile();
        p.interest_mut("AirportCity").increment();
        p.interest_mut("AirportCity").increment();
        // Paper: SUS.DecisionMaker.dm2airportcity.degree
        assert_eq!(
            get(&p, None, "SUS.DecisionMaker.dm2airportcity.degree").unwrap(),
            Value::Float(2.0)
        );
        assert_eq!(
            get(&p, None, "SUS.DecisionMaker.dm2airportcity.name").unwrap(),
            Value::Text("AirportCity".into())
        );
        assert_eq!(
            get(&p, None, "SUS.DecisionMaker.dm2airportcity.condition").unwrap(),
            Value::Null
        );
    }

    #[test]
    fn resolve_characteristics_and_custom() {
        let mut p = profile();
        p.custom.insert("theme".into(), Value::from("dark"));
        assert_eq!(
            get(&p, None, "SUS.DecisionMaker.language").unwrap(),
            Value::Text("es".into())
        );
        assert_eq!(
            get(&p, None, "SUS.DecisionMaker.theme").unwrap(),
            Value::Text("dark".into())
        );
        assert!(get(&p, None, "SUS.DecisionMaker.age").is_err());
        assert!(get(&p, None, "SUS.DecisionMaker.dm2role.salary").is_err());
    }

    #[test]
    fn assign_degree_increment() {
        let mut p = profile();
        // Paper Example 5.3: SetContent(degree, degree + 1).
        let path = SusPath::parse("SUS.DecisionMaker.dm2airportcity.degree").unwrap();
        let current = resolve_sus_path(&p, None, &path)
            .unwrap()
            .as_number()
            .unwrap();
        assign_sus_path(&mut p, &path, Value::Float(current + 1.0)).unwrap();
        assert_eq!(p.interest("AirportCity").unwrap().degree, 1.0);
        // Non-numeric degree assignment is rejected.
        assert!(matches!(
            assign_sus_path(&mut p, &path, Value::Text("x".into())),
            Err(UserError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn assign_creates_interest_on_first_use() {
        let mut p = UserProfile::new("u3", "Irene");
        let path = SusPath::parse("SUS.DecisionMaker.dm2hospitalcity.degree").unwrap();
        assign_sus_path(&mut p, &path, Value::Float(1.0)).unwrap();
        assert_eq!(p.interest("hospitalcity").unwrap().degree, 1.0);
    }

    #[test]
    fn assign_role_name_and_user_name() {
        let mut p = UserProfile::new("u4", "Juan");
        assign_sus_path(
            &mut p,
            &SusPath::parse("SUS.DecisionMaker.dm2role.name").unwrap(),
            Value::from("Analyst"),
        )
        .unwrap();
        assert_eq!(p.role_name(), Some("Analyst"));
        assign_sus_path(
            &mut p,
            &SusPath::parse("SUS.DecisionMaker.name").unwrap(),
            Value::from("Juan T."),
        )
        .unwrap();
        assert_eq!(p.name, "Juan T.");
    }

    #[test]
    fn assign_characteristic_and_custom() {
        let mut p = profile();
        assign_sus_path(
            &mut p,
            &SusPath::parse("SUS.DecisionMaker.language").unwrap(),
            Value::from("en"),
        )
        .unwrap();
        assert_eq!(
            p.characteristic("language").unwrap().value,
            Value::Text("en".into())
        );
        assign_sus_path(
            &mut p,
            &SusPath::parse("SUS.DecisionMaker.favourite_city").unwrap(),
            Value::from("Alicante"),
        )
        .unwrap();
        assert_eq!(
            p.custom.get("favourite_city"),
            Some(&Value::Text("Alicante".into()))
        );
    }

    #[test]
    fn invalid_assignments() {
        let mut p = profile();
        assert!(assign_sus_path(
            &mut p,
            &SusPath::parse("SUS.DecisionMaker").unwrap(),
            Value::Null
        )
        .is_err());
        assert!(assign_sus_path(
            &mut p,
            &SusPath::parse("SUS.DecisionMaker.id").unwrap(),
            Value::from("other")
        )
        .is_err());
        assert!(assign_sus_path(
            &mut p,
            &SusPath::parse("SUS.DecisionMaker.dm2session.s2location.geometry").unwrap(),
            Value::Null
        )
        .is_err());
        assert!(assign_sus_path(
            &mut p,
            &SusPath::parse("SUS.DecisionMaker.unknown.deeper").unwrap(),
            Value::Null
        )
        .is_err());
    }
}
