//! The user's geographic location context («LocationContext»).

use crate::stereotype::SusStereotype;
use sdwp_geometry::{Geometry, Point};
use serde::{Deserialize, Serialize};

/// The geographic location from which an analysis session is performed.
///
/// Example 5.2 of the paper uses it to keep only the stores within 5 km of
/// the decision maker
/// (`Distance(s.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < 5km`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocationContext {
    /// A label for the location (e.g. `"office"`, `"field visit"`).
    pub name: String,
    /// The location itself.
    pub geometry: Geometry,
}

impl LocationContext {
    /// Creates a location context from any geometry.
    pub fn new(name: impl Into<String>, geometry: Geometry) -> Self {
        LocationContext {
            name: name.into(),
            geometry,
        }
    }

    /// Convenience constructor for a point location.
    pub fn at_point(name: impl Into<String>, x: f64, y: f64) -> Self {
        LocationContext {
            name: name.into(),
            geometry: Point::new(x, y).into(),
        }
    }

    /// The SUS stereotype of this element.
    pub fn stereotype(&self) -> SusStereotype {
        SusStereotype::LocationContext
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let loc = LocationContext::at_point("office", 10.0, 20.0);
        assert_eq!(loc.name, "office");
        let p = loc.geometry.as_point().unwrap();
        assert_eq!((p.x(), p.y()), (10.0, 20.0));
        assert_eq!(loc.stereotype(), SusStereotype::LocationContext);
    }

    #[test]
    fn arbitrary_geometry() {
        let region: Geometry =
            sdwp_geometry::Polygon::from_tuples(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)])
                .unwrap()
                .into();
        let loc = LocationContext::new("sales territory", region.clone());
        assert_eq!(loc.geometry, region);
    }
}
