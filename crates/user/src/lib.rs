//! The Spatial-aware User model (SUS).
//!
//! Personalization is a user-centred process: the paper captures everything
//! the rules need to know about a decision maker in a *spatial-aware user
//! model* defined by a UML profile (Fig. 3) with these stereotypes:
//!
//! * «User» — the decision maker ([`UserProfile`]);
//! * «Session» — one analysis session ([`Session`]);
//! * «Characteristic» — domain-independent user data such as role, age or
//!   language ([`Characteristic`], [`Role`]);
//! * «LocationContext» — the geographic position the analysis is performed
//!   from ([`LocationContext`]);
//! * «SpatialSelection» — a tracked spatial-interest event whose `degree`
//!   counts how often the user selected instances satisfying a spatial
//!   condition ([`SpatialSelectionInterest`]).
//!
//! The crate also resolves and assigns `SUS.*` path expressions
//! (`SUS.DecisionMaker.dm2role.name`,
//! `SUS.DecisionMaker.dm2airportcity.degree`, …) used by PRML rule
//! conditions and by the `SetContent` action.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod characteristic;
pub mod error;
pub mod location;
pub mod path;
pub mod profile;
pub mod schema;
pub mod selection;
pub mod session;
pub mod stereotype;
pub mod value;

pub use characteristic::{Characteristic, Role};
pub use error::UserError;
pub use location::LocationContext;
pub use path::{assign_sus_path, resolve_sus_path, SusPath};
pub use profile::{ProfileStore, UserProfile};
pub use schema::{SusClass, SusModel, SusProperty};
pub use selection::SpatialSelectionInterest;
pub use session::{Session, SessionEvent, SessionId, SessionStatus};
pub use stereotype::SusStereotype;
pub use value::Value;
