//! Property values stored in the user model.

use sdwp_geometry::Geometry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A value stored in (or read from) the spatial-aware user model.
///
/// The paper's user model holds plain characteristics (age, language,
/// role names), numeric interest degrees and geometries (the location
/// context); this enum covers all of them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// UTF-8 text.
    Text(String),
    /// Integer number.
    Integer(i64),
    /// Floating-point number.
    Float(f64),
    /// Boolean flag.
    Boolean(bool),
    /// A geometry (e.g. the user's location).
    Geometry(Geometry),
    /// Explicit absence of a value.
    Null,
}

impl Value {
    /// Returns the value as a float when it is numeric.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the value as text when it is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as a boolean when it is boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the contained geometry, when the value is spatial.
    pub fn as_geometry(&self) -> Option<&Geometry> {
        match self {
            Value::Geometry(g) => Some(g),
            _ => None,
        }
    }

    /// Returns `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name of the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Text(_) => "text",
            Value::Integer(_) => "integer",
            Value::Float(_) => "float",
            Value::Boolean(_) => "boolean",
            Value::Geometry(_) => "geometry",
            Value::Null => "null",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => write!(f, "{s}"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Geometry(g) => write!(f, "{g}"),
            Value::Null => write!(f, "null"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Integer(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Boolean(b)
    }
}

impl From<Geometry> for Value {
    fn from(g: Geometry) -> Self {
        Value::Geometry(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdwp_geometry::Point;

    #[test]
    fn accessors() {
        assert_eq!(Value::Integer(7).as_number(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_number(), Some(2.5));
        assert_eq!(Value::Text("x".into()).as_number(), None);
        assert_eq!(Value::Text("hello".into()).as_text(), Some("hello"));
        assert_eq!(Value::Boolean(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        let g: Geometry = Point::new(1.0, 2.0).into();
        assert!(Value::Geometry(g.clone()).as_geometry().is_some());
        assert!(Value::Integer(1).as_geometry().is_none());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("a"), Value::Text("a".into()));
        assert_eq!(Value::from(3i64), Value::Integer(3));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from(false), Value::Boolean(false));
    }

    #[test]
    fn type_names_and_display() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Integer(1).type_name(), "integer");
        assert_eq!(Value::Float(1.0).type_name(), "float");
        assert_eq!(Value::Text("t".into()).to_string(), "t");
        assert_eq!(Value::Integer(42).to_string(), "42");
        assert_eq!(Value::Null.to_string(), "null");
        let g: Geometry = Point::new(1.0, 2.0).into();
        assert_eq!(Value::Geometry(g).to_string(), "POINT (1 2)");
    }
}
