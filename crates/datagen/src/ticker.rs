//! The retail update stream: a deterministic ticker of fact deltas over
//! the paper scenario.
//!
//! The paper's decision makers act on *live* spatial data — sales keep
//! arriving while regional managers analyse them. This module generates
//! that write workload: batches of sales appends mixed with price
//! corrections (a cell upsert on an earlier sale) and occasional order
//! cancellations (a retraction), shaped for the streaming-ingestion
//! pipeline. Like every generator in this crate it is deterministic under
//! its seed, so ingest benchmarks and property tests are repeatable.

use crate::scenario::PaperScenario;
use rand::rngs::StdRng;
use rand::Rng;
use sdwp_ingest::{DeltaBatch, IngestError};
use sdwp_olap::{CellValue, FactTable};
use std::collections::BTreeSet;

/// Shape of the generated update stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickerConfig {
    /// RNG seed (independent of the scenario's seed).
    pub seed: u64,
    /// New sales appended per batch.
    pub appends_per_batch: usize,
    /// Price corrections (cell upserts) per batch.
    pub corrections_per_batch: usize,
    /// Cancellations (retractions) per batch.
    pub retractions_per_batch: usize,
}

impl Default for TickerConfig {
    fn default() -> Self {
        TickerConfig {
            seed: 99,
            appends_per_batch: 8,
            corrections_per_batch: 2,
            retractions_per_batch: 1,
        }
    }
}

impl TickerConfig {
    /// Replaces the seed, keeping the batch shape.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of appends per batch.
    pub fn with_appends(mut self, appends: usize) -> Self {
        self.appends_per_batch = appends;
        self
    }

    /// Sets the number of price corrections per batch.
    pub fn with_corrections(mut self, corrections: usize) -> Self {
        self.corrections_per_batch = corrections;
        self
    }

    /// Sets the number of cancellations per batch.
    pub fn with_retractions(mut self, retractions: usize) -> Self {
        self.retractions_per_batch = retractions;
        self
    }
}

/// An infinite, deterministic stream of [`DeltaBatch`]es over a scenario's
/// `Sales` fact.
///
/// The ticker tracks the fact table's row count as its batches would grow
/// it (appends allocate ids `base.. `), and never corrects or re-retracts
/// a row it has already retracted — every produced batch validates against
/// a cube that applied all previous batches in order. It is an
/// [`Iterator`], so `ticker.take(n)` is a bounded update stream.
///
/// # Compaction: the re-anchoring protocol
///
/// The ticker addresses corrections and cancellations by **stable row
/// id**, so a fact-table compaction (which renumbers live rows) would
/// desynchronise it. Producers running against a pipeline with a
/// `CompactionPolicy` enabled must follow the re-anchoring protocol (see
/// `tests/compaction_consistency.rs`): `flush()` the pipeline — a barrier
/// after which any compaction the flush triggered has already published —
/// then call [`RetailTicker::re_anchor`] with the published fact table
/// before producing the next id-addressed batch. The ticker translates
/// its bookkeeping through the table's retained remap chain; ids it had
/// retracted are exactly the ids compaction dropped, so they fall away.
#[derive(Debug, Clone)]
pub struct RetailTicker {
    rng: StdRng,
    config: TickerConfig,
    stores: usize,
    customers: usize,
    products: usize,
    days: usize,
    /// Virtual length of the Sales fact table after every batch produced
    /// so far.
    fact_rows: usize,
    /// Rows this ticker has retracted (never targeted again).
    retracted: BTreeSet<usize>,
    /// The fact table's compaction version the ticker's row ids refer to.
    version_seen: u64,
}

impl RetailTicker {
    /// Creates a ticker over a scenario, starting from the scenario's
    /// already-loaded `Sales` rows.
    pub fn new(scenario: &PaperScenario, config: TickerConfig) -> Self {
        RetailTicker {
            rng: crate::spatial::rng_for_seed(config.seed),
            config,
            stores: scenario.retail.stores.len(),
            customers: scenario.retail.customers.len(),
            products: scenario.retail.products.len(),
            days: scenario.retail.days,
            fact_rows: scenario.retail.sales.len(),
            retracted: BTreeSet::new(),
            version_seen: 0,
        }
    }

    /// The Sales row count after every batch produced so far (live and
    /// retracted).
    pub fn fact_rows(&self) -> usize {
        self.fact_rows
    }

    /// The compaction version the ticker's row ids currently refer to.
    pub fn version_seen(&self) -> u64 {
        self.version_seen
    }

    /// Re-anchors the ticker's row-id bookkeeping to the published fact
    /// table after a flush: if the table was compacted since the last
    /// anchor, outstanding ids translate forward through the retained
    /// remap chain (retracted ids are precisely the rows compaction
    /// dropped, so the retracted set empties) and the virtual row count
    /// snaps to the table's current length. A no-op when no compaction
    /// happened. Only call this at a flush barrier — with batches still
    /// in flight, the table's length would not yet include them.
    ///
    /// # Errors
    /// [`IngestError::ProducerLagged`] when the table's retained remap
    /// chain no longer covers `version_seen` (`remap_base` has been
    /// trimmed past it): the producer lagged more than the serving
    /// layer's retention window, and translating through a partial chain
    /// would silently address the wrong rows. The ticker's bookkeeping
    /// is left untouched so the caller can recover — discard the
    /// outstanding id-addressed plan and re-anchor after a flush, or
    /// prevent the trim up front by registering a producer floor
    /// (`IngestHandle::set_producer_floor`) before lagging.
    pub fn re_anchor(&mut self, fact: &FactTable) -> Result<(), IngestError> {
        let current = fact.compaction_version();
        if current == self.version_seen {
            return Ok(());
        }
        if fact.remap_base > self.version_seen {
            return Err(IngestError::ProducerLagged {
                floor: fact.remap_base,
                requested: self.version_seen,
            });
        }
        self.retracted = fact
            .translate_rows_from(self.version_seen, self.retracted.iter().copied())
            .into_iter()
            .collect();
        self.fact_rows = fact.table.len();
        self.version_seen = current;
        Ok(())
    }

    /// Draws a random live row id, or `None` when none is targetable.
    fn live_row(&mut self) -> Option<usize> {
        if self.retracted.len() >= self.fact_rows {
            return None;
        }
        // Rejection-sample: retractions are rare, so this terminates fast.
        for _ in 0..64 {
            let row = self.rng.gen_range(0..self.fact_rows.max(1));
            if !self.retracted.contains(&row) {
                return Some(row);
            }
        }
        None
    }

    /// Produces the next batch of the stream.
    pub fn next_batch(&mut self) -> DeltaBatch {
        let mut batch = DeltaBatch::new();
        for _ in 0..self.config.appends_per_batch {
            let unit_sales = self.rng.gen_range(1.0..20.0f64).round();
            let unit_price = self.rng.gen_range(2.0..60.0f64);
            batch = batch.append(
                "Sales",
                vec![
                    ("Store", self.rng.gen_range(0..self.stores.max(1))),
                    ("Customer", self.rng.gen_range(0..self.customers.max(1))),
                    ("Product", self.rng.gen_range(0..self.products.max(1))),
                    ("Time", self.rng.gen_range(0..self.days.max(1))),
                ],
                vec![
                    ("UnitSales", CellValue::Float(unit_sales)),
                    ("StoreCost", CellValue::Float(unit_sales * unit_price * 0.7)),
                    ("StoreSales", CellValue::Float(unit_sales * unit_price)),
                ],
            );
            self.fact_rows += 1;
        }
        for _ in 0..self.config.corrections_per_batch {
            if let Some(row) = self.live_row() {
                // A price correction rewrites the revenue pair coherently.
                let unit_price = self.rng.gen_range(2.0..60.0f64);
                let unit_sales = self.rng.gen_range(1.0..20.0f64).round();
                batch = batch
                    .upsert_cell(
                        "Sales",
                        row,
                        "StoreSales",
                        CellValue::Float(unit_sales * unit_price),
                    )
                    .upsert_cell(
                        "Sales",
                        row,
                        "StoreCost",
                        CellValue::Float(unit_sales * unit_price * 0.7),
                    );
            }
        }
        for _ in 0..self.config.retractions_per_batch {
            if let Some(row) = self.live_row() {
                batch = batch.retract("Sales", row);
                self.retracted.insert(row);
            }
        }
        batch
    }
}

impl Iterator for RetailTicker {
    type Item = DeltaBatch;

    fn next(&mut self) -> Option<DeltaBatch> {
        Some(self.next_batch())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PaperScenario, ScenarioConfig};
    use sdwp_ingest::FactDelta;

    fn scenario() -> PaperScenario {
        PaperScenario::generate(ScenarioConfig::tiny())
    }

    #[test]
    fn batches_match_the_configured_shape() {
        let scenario = scenario();
        let mut ticker = RetailTicker::new(
            &scenario,
            TickerConfig::default()
                .with_appends(5)
                .with_corrections(2)
                .with_retractions(1),
        );
        let batch = ticker.next_batch();
        let appends = batch
            .deltas
            .iter()
            .filter(|d| matches!(d, FactDelta::Append { .. }))
            .count();
        let upserts = batch
            .deltas
            .iter()
            .filter(|d| matches!(d, FactDelta::UpsertCell { .. }))
            .count();
        let retracts = batch
            .deltas
            .iter()
            .filter(|d| matches!(d, FactDelta::Retract { .. }))
            .count();
        // Each correction upserts the StoreSales/StoreCost pair.
        assert_eq!((appends, upserts, retracts), (5, 4, 1));
        assert_eq!(ticker.fact_rows(), scenario.retail.sales.len() + 5);
    }

    #[test]
    fn every_batch_validates_against_the_evolving_cube() {
        let scenario = scenario();
        let mut cube = scenario.cube.clone();
        let ticker = RetailTicker::new(&scenario, TickerConfig::default().with_retractions(3));
        for batch in ticker.take(25) {
            batch
                .validate(&cube)
                .expect("ticker batches always validate in order");
            batch.apply(&mut cube);
        }
        assert!(cube.total_fact_rows() > scenario.cube.total_fact_rows());
    }

    #[test]
    fn re_anchoring_survives_compaction() {
        let scenario = scenario();
        let mut cube = scenario.cube.clone();
        let mut ticker = RetailTicker::new(&scenario, TickerConfig::default().with_retractions(3));
        for batch in ticker.by_ref().take(6) {
            batch.validate(&cube).expect("pre-compaction batch");
            batch.apply(&mut cube);
        }
        // A no-op anchor before any compaction changes nothing.
        let rows_before = ticker.fact_rows();
        ticker.re_anchor(cube.fact_table("Sales").unwrap()).unwrap();
        assert_eq!(
            (ticker.version_seen(), ticker.fact_rows()),
            (0, rows_before)
        );

        // Compact (renumbering every live row), re-anchor, keep going:
        // every later id-addressed batch still validates in order.
        cube.compact_fact_table("Sales").unwrap();
        ticker.re_anchor(cube.fact_table("Sales").unwrap()).unwrap();
        assert_eq!(ticker.version_seen(), 1);
        assert_eq!(
            ticker.fact_rows(),
            cube.fact_table("Sales").unwrap().table.len()
        );
        // The rows the ticker retracted were exactly the rows compaction
        // dropped, so its do-not-touch set empties.
        assert!(ticker.retracted.is_empty());
        for batch in ticker.by_ref().take(6) {
            batch.validate(&cube).expect("re-anchored batch validates");
            batch.apply(&mut cube);
        }
        // A second compaction chains through the (possibly trimmed) remap
        // window the same way.
        cube.compact_fact_table("Sales").unwrap();
        cube.trim_fact_remaps("Sales", 1).unwrap();
        ticker.re_anchor(cube.fact_table("Sales").unwrap()).unwrap();
        assert_eq!(ticker.version_seen(), 2);
        for batch in ticker.take(4) {
            batch
                .validate(&cube)
                .expect("batch after trimmed re-anchor");
            batch.apply(&mut cube);
        }
    }

    #[test]
    fn lagging_past_the_remap_window_is_a_typed_refusal() {
        let scenario = scenario();
        let mut cube = scenario.cube.clone();
        let mut ticker = RetailTicker::new(&scenario, TickerConfig::default().with_retractions(3));
        for batch in ticker.by_ref().take(4) {
            batch.validate(&cube).expect("pre-compaction batch");
            batch.apply(&mut cube);
        }
        // Two compactions land while the ticker never re-anchors; the
        // serving layer then trims the remap chain past the ticker's
        // anchor (version 0).
        cube.compact_fact_table("Sales").unwrap();
        cube.compact_fact_table("Sales").unwrap();
        cube.trim_fact_remaps("Sales", 1).unwrap();
        let rows_before = ticker.fact_rows();
        match ticker.re_anchor(cube.fact_table("Sales").unwrap()) {
            Err(IngestError::ProducerLagged { floor, requested }) => {
                assert_eq!((floor, requested), (1, 0));
            }
            other => panic!("expected ProducerLagged, got {other:?}"),
        }
        // The refusal left the bookkeeping untouched, so the producer can
        // discard its plan and recover deliberately.
        assert_eq!(ticker.version_seen(), 0);
        assert_eq!(ticker.fact_rows(), rows_before);
    }

    #[test]
    fn deterministic_per_seed() {
        let scenario = scenario();
        let a: Vec<DeltaBatch> = RetailTicker::new(&scenario, TickerConfig::default().with_seed(5))
            .take(4)
            .collect();
        let b: Vec<DeltaBatch> = RetailTicker::new(&scenario, TickerConfig::default().with_seed(5))
            .take(4)
            .collect();
        let c: Vec<DeltaBatch> = RetailTicker::new(&scenario, TickerConfig::default().with_seed(6))
            .take(4)
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
