//! Seeded synthetic workload generator.
//!
//! The paper's running example analyses retail sales (who bought, where,
//! what, when) over a spatial region with external geographic layers
//! (airports, train lines). No data set accompanies the paper, so this
//! crate generates a synthetic but structurally faithful equivalent:
//!
//! * the Fig. 2 multidimensional schema ([`scenario::sales_schema`]);
//! * dimension members with planar kilometre coordinates — cities on a
//!   bounded region, stores and customers clustered around cities;
//! * external layers: airports (points near some cities) and train lines
//!   (polylines threading cities), exposed both as cube layer instances and
//!   as a [`sdwp_prml::LayerSource`];
//! * sales fact rows linking stores, customers, products and days;
//! * the Fig. 4 spatial-aware user model instance
//!   ([`scenario::regional_sales_manager`]);
//! * a retail update stream ([`ticker::RetailTicker`]): an infinite
//!   deterministic ticker of sales appends, price corrections and
//!   cancellations for the streaming-ingestion pipeline.
//!
//! Everything is deterministic under a configured seed so experiments are
//! repeatable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod dashboard;
pub mod layers;
pub mod retail;
pub mod scenario;
pub mod spatial;
pub mod ticker;

pub use config::ScenarioConfig;
pub use dashboard::{dashboard_batch, OverlapRegime};
pub use layers::GeneratedLayers;
pub use retail::RetailData;
pub use scenario::{PaperScenario, ScenarioBuilder};
pub use ticker::{RetailTicker, TickerConfig};
