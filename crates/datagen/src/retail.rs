//! Synthetic retail data: the instances behind the Fig. 2 sales schema.

use crate::config::ScenarioConfig;
use crate::spatial::scatter_around;
use rand::rngs::StdRng;
use rand::Rng;
use sdwp_geometry::Point;
use serde::{Deserialize, Serialize};

/// A generated store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreRecord {
    /// Store name (`"Store-<i>"`).
    pub name: String,
    /// Index into the city list.
    pub city: usize,
    /// Store location (km coordinates).
    pub location: Point,
    /// Sales floor size in square metres.
    pub size_sqm: i64,
}

/// A generated customer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomerRecord {
    /// Customer name (`"Customer-<i>"`).
    pub name: String,
    /// Index into the city list.
    pub city: usize,
    /// Customer home location (km coordinates).
    pub location: Point,
}

/// A generated sales fact row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaleRecord {
    /// Index into the store list.
    pub store: usize,
    /// Index into the customer list.
    pub customer: usize,
    /// Index into the product list.
    pub product: usize,
    /// Day index (0-based).
    pub day: usize,
    /// Units sold.
    pub unit_sales: f64,
    /// Cost to the store.
    pub store_cost: f64,
    /// Revenue for the store.
    pub store_sales: f64,
}

/// The full synthetic retail data set (dimension members plus facts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetailData {
    /// City names and centres.
    pub cities: Vec<(String, Point)>,
    /// Stores.
    pub stores: Vec<StoreRecord>,
    /// Customers.
    pub customers: Vec<CustomerRecord>,
    /// Product names and categories.
    pub products: Vec<(String, String)>,
    /// Number of days in the time dimension.
    pub days: usize,
    /// Sales fact rows.
    pub sales: Vec<SaleRecord>,
}

/// Assigns a region-quadrant "state" name to a city centre.
pub fn state_of(city: &Point, region_km: f64) -> &'static str {
    let west = city.x() < region_km / 2.0;
    let south = city.y() < region_km / 2.0;
    match (west, south) {
        (true, true) => "South-West",
        (true, false) => "North-West",
        (false, true) => "South-East",
        (false, false) => "North-East",
    }
}

impl RetailData {
    /// Generates the retail data around the given city centres.
    pub fn generate(rng: &mut StdRng, cities: Vec<Point>, config: &ScenarioConfig) -> Self {
        let cities: Vec<(String, Point)> = cities
            .into_iter()
            .enumerate()
            .map(|(i, p)| (format!("City-{i}"), p))
            .collect();

        let stores: Vec<StoreRecord> = (0..config.stores)
            .map(|i| {
                let city = rng.gen_range(0..cities.len().max(1));
                StoreRecord {
                    name: format!("Store-{i}"),
                    city,
                    location: scatter_around(
                        rng,
                        &cities[city].1,
                        config.city_spread_km,
                        config.region_km,
                    ),
                    size_sqm: rng.gen_range(80..2_000),
                }
            })
            .collect();

        let customers: Vec<CustomerRecord> = (0..config.customers)
            .map(|i| {
                let city = rng.gen_range(0..cities.len().max(1));
                CustomerRecord {
                    name: format!("Customer-{i}"),
                    city,
                    location: scatter_around(
                        rng,
                        &cities[city].1,
                        config.city_spread_km * 1.5,
                        config.region_km,
                    ),
                }
            })
            .collect();

        let products: Vec<(String, String)> = (0..config.products)
            .map(|i| (format!("Product-{i}"), format!("Category-{}", i % 5)))
            .collect();

        let sales: Vec<SaleRecord> = (0..config.sales)
            .map(|_| {
                let unit_sales = rng.gen_range(1.0..20.0f64).round();
                let unit_price = rng.gen_range(2.0..60.0f64);
                SaleRecord {
                    store: rng.gen_range(0..stores.len().max(1)),
                    customer: rng.gen_range(0..customers.len().max(1)),
                    product: rng.gen_range(0..products.len().max(1)),
                    day: rng.gen_range(0..config.days.max(1)),
                    unit_sales,
                    store_cost: unit_sales * unit_price * 0.7,
                    store_sales: unit_sales * unit_price,
                }
            })
            .collect();

        RetailData {
            cities,
            stores,
            customers,
            products,
            days: config.days,
            sales,
        }
    }

    /// Total units sold across every fact row (used to cross-check OLAP
    /// aggregation results in tests).
    pub fn total_unit_sales(&self) -> f64 {
        self.sales.iter().map(|s| s.unit_sales).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial::{generate_cities, rng_for_seed};

    fn data(seed: u64) -> RetailData {
        let config = ScenarioConfig::tiny().with_seed(seed);
        let mut rng = rng_for_seed(config.seed);
        let cities = generate_cities(&mut rng, config.cities, config.region_km);
        RetailData::generate(&mut rng, cities, &config)
    }

    #[test]
    fn sizes_match_config() {
        let config = ScenarioConfig::tiny();
        let d = data(config.seed);
        assert_eq!(d.cities.len(), config.cities);
        assert_eq!(d.stores.len(), config.stores);
        assert_eq!(d.customers.len(), config.customers);
        assert_eq!(d.products.len(), config.products);
        assert_eq!(d.sales.len(), config.sales);
        assert_eq!(d.days, config.days);
    }

    #[test]
    fn references_are_in_range() {
        let d = data(11);
        for sale in &d.sales {
            assert!(sale.store < d.stores.len());
            assert!(sale.customer < d.customers.len());
            assert!(sale.product < d.products.len());
            assert!(sale.day < d.days);
            assert!(sale.store_sales >= sale.store_cost);
            assert!(sale.unit_sales >= 1.0);
        }
        for store in &d.stores {
            assert!(store.city < d.cities.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(data(5), data(5));
        assert_ne!(data(5), data(6));
    }

    #[test]
    fn state_quadrants() {
        assert_eq!(state_of(&Point::new(10.0, 10.0), 100.0), "South-West");
        assert_eq!(state_of(&Point::new(10.0, 90.0), 100.0), "North-West");
        assert_eq!(state_of(&Point::new(90.0, 10.0), 100.0), "South-East");
        assert_eq!(state_of(&Point::new(90.0, 90.0), 100.0), "North-East");
    }

    #[test]
    fn total_unit_sales_is_positive() {
        assert!(data(3).total_unit_sales() > 0.0);
    }
}
