//! Assembly of the paper's running example: schema, cube, layers and user.

use crate::config::ScenarioConfig;
use crate::layers::GeneratedLayers;
use crate::retail::{state_of, RetailData};
use crate::spatial::{generate_cities, rng_for_seed};
use sdwp_geometry::GeometricType;
use sdwp_model::{Attribute, AttributeType, DimensionBuilder, FactBuilder, Schema, SchemaBuilder};
use sdwp_olap::{CellValue, Cube};
use sdwp_prml::StaticLayerSource;
use sdwp_user::{Role, SpatialSelectionInterest, UserProfile};

/// The multidimensional model of the paper's Fig. 2: a Sales fact analysed
/// by Customer, Store, Product and Time, with the Store dimension expanded
/// into the Store → City → State hierarchy. No spatiality yet — that is
/// what the personalization rules add.
pub fn sales_schema() -> Schema {
    SchemaBuilder::new("SalesDW")
        .dimension(
            DimensionBuilder::new("Store")
                .level(
                    "Store",
                    vec![
                        Attribute::descriptor("name", AttributeType::Text),
                        Attribute::new("address", AttributeType::Text),
                        Attribute::new("size_sqm", AttributeType::Integer),
                    ],
                )
                .simple_level("City", "name")
                .simple_level("State", "name")
                .build(),
        )
        .dimension(
            DimensionBuilder::new("Customer")
                .level(
                    "Customer",
                    vec![Attribute::descriptor("name", AttributeType::Text)],
                )
                .simple_level("City", "name")
                .build(),
        )
        .dimension(
            DimensionBuilder::new("Product")
                .simple_level("Product", "name")
                .simple_level("Category", "name")
                .build(),
        )
        .dimension(
            DimensionBuilder::new("Time")
                .level(
                    "Day",
                    vec![Attribute::descriptor("date", AttributeType::Date)],
                )
                .simple_level("Month", "name")
                .build(),
        )
        .fact(
            FactBuilder::new("Sales")
                .measure("UnitSales", AttributeType::Float)
                .measure("StoreCost", AttributeType::Float)
                .measure("StoreSales", AttributeType::Float)
                .dimension("Store")
                .dimension("Customer")
                .dimension("Product")
                .dimension("Time")
                .build(),
        )
        .build()
        .expect("the Fig. 2 schema is valid")
}

/// The decision maker of the paper's motivating example (Fig. 4): a
/// regional sales manager whose AirportCity spatial-selection interest is
/// tracked.
pub fn regional_sales_manager() -> UserProfile {
    UserProfile::new("regional-manager", "Regional Sales Manager")
        .with_role(Role::with_description(
            "RegionalSalesManager",
            "analyses sales of the stores in their region",
        ))
        .with_interest(SpatialSelectionInterest::with_condition(
            "AirportCity",
            "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km",
        ))
}

/// A fully generated instance of the paper's running example.
#[derive(Debug, Clone)]
pub struct PaperScenario {
    /// The configuration it was generated from.
    pub config: ScenarioConfig,
    /// The generated retail data (dimension members + facts).
    pub retail: RetailData,
    /// The generated external layers (airports, train lines).
    pub layers: GeneratedLayers,
    /// The populated cube bound to the Fig. 2 schema.
    pub cube: Cube,
    /// The regional sales manager profile (Fig. 4).
    pub manager: UserProfile,
}

impl PaperScenario {
    /// Generates the scenario for a configuration.
    pub fn generate(config: ScenarioConfig) -> Self {
        ScenarioBuilder::new(config).build()
    }

    /// The external layers as a PRML layer source (what `AddLayer` pulls
    /// from).
    pub fn layer_source(&self) -> StaticLayerSource {
        self.layers.as_layer_source()
    }
}

/// Builds a [`PaperScenario`] from a [`ScenarioConfig`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    config: ScenarioConfig,
}

impl ScenarioBuilder {
    /// Starts a builder.
    pub fn new(config: ScenarioConfig) -> Self {
        ScenarioBuilder { config }
    }

    /// Generates the data and loads the cube.
    pub fn build(self) -> PaperScenario {
        let config = self.config;
        let mut rng = rng_for_seed(config.seed);
        let city_points = generate_cities(&mut rng, config.cities, config.region_km);
        let layers = GeneratedLayers::generate(&mut rng, &city_points, &config);
        let retail = RetailData::generate(&mut rng, city_points, &config);

        let schema = sales_schema();
        let mut cube = Cube::new(schema);

        // Store dimension members (leaf grain: one row per store).
        for store in &retail.stores {
            let (city_name, city_point) = &retail.cities[store.city];
            cube.add_dimension_member(
                "Store",
                vec![
                    ("Store.name", CellValue::from(store.name.as_str())),
                    (
                        "Store.address",
                        CellValue::from(format!("{} high street", store.name)),
                    ),
                    ("Store.size_sqm", CellValue::Integer(store.size_sqm)),
                    ("City.name", CellValue::from(city_name.as_str())),
                    (
                        "State.name",
                        CellValue::from(state_of(city_point, config.region_km)),
                    ),
                    ("Store.geometry", CellValue::Geometry(store.location.into())),
                    ("City.geometry", CellValue::Geometry((*city_point).into())),
                ],
            )
            .expect("store member matches the schema");
        }

        // Customer dimension members.
        for customer in &retail.customers {
            let (city_name, city_point) = &retail.cities[customer.city];
            cube.add_dimension_member(
                "Customer",
                vec![
                    ("Customer.name", CellValue::from(customer.name.as_str())),
                    ("City.name", CellValue::from(city_name.as_str())),
                    (
                        "Customer.geometry",
                        CellValue::Geometry(customer.location.into()),
                    ),
                    ("City.geometry", CellValue::Geometry((*city_point).into())),
                ],
            )
            .expect("customer member matches the schema");
        }

        // Product dimension members.
        for (name, category) in &retail.products {
            cube.add_dimension_member(
                "Product",
                vec![
                    ("Product.name", CellValue::from(name.as_str())),
                    ("Category.name", CellValue::from(category.as_str())),
                ],
            )
            .expect("product member matches the schema");
        }

        // Time dimension members.
        for day in 0..retail.days {
            cube.add_dimension_member(
                "Time",
                vec![
                    ("Day.date", CellValue::Date(day as i64)),
                    ("Month.name", CellValue::from(format!("Month-{}", day / 30))),
                ],
            )
            .expect("day member matches the schema");
        }

        // Sales fact rows.
        for sale in &retail.sales {
            cube.add_fact_row(
                "Sales",
                vec![
                    ("Store", sale.store),
                    ("Customer", sale.customer),
                    ("Product", sale.product),
                    ("Time", sale.day),
                ],
                vec![
                    ("UnitSales", CellValue::Float(sale.unit_sales)),
                    ("StoreCost", CellValue::Float(sale.store_cost)),
                    ("StoreSales", CellValue::Float(sale.store_sales)),
                ],
            )
            .expect("sale row matches the schema");
        }

        PaperScenario {
            config,
            retail,
            layers,
            cube,
            manager: regional_sales_manager(),
        }
    }
}

/// Re-export used by layer materialisation in the core engine: the
/// geometric types the paper's two external layers use.
pub const PAPER_LAYERS: [(&str, GeometricType); 2] = [
    ("Airport", GeometricType::Point),
    ("Train", GeometricType::Line),
];

#[cfg(test)]
mod tests {
    use super::*;
    use sdwp_olap::{AttributeRef, Query, QueryEngine};

    #[test]
    fn fig2_schema_structure() {
        let schema = sales_schema();
        // Fig. 2: Sales fact with Customer, Store, Product, Time dimensions.
        let fact = schema.fact("Sales").unwrap();
        assert_eq!(fact.dimensions.len(), 4);
        for dim in ["Store", "Customer", "Product", "Time"] {
            assert!(schema.dimension(dim).is_some(), "missing dimension {dim}");
        }
        // The Store dimension is expanded into Store → City → State.
        assert_eq!(
            schema.dimension("Store").unwrap().aggregation_path(),
            vec!["Store", "City", "State"]
        );
        // Measures of the fact.
        for measure in ["UnitSales", "StoreCost", "StoreSales"] {
            assert!(fact.measure(measure).is_some(), "missing measure {measure}");
        }
        // The MD model carries no spatiality before personalization.
        assert!(!schema.is_geographic());
    }

    #[test]
    fn scenario_cube_is_consistent_with_retail_data() {
        let scenario = PaperScenario::generate(ScenarioConfig::tiny());
        let cube = &scenario.cube;
        assert_eq!(
            cube.dimension_table("Store").unwrap().table.len(),
            scenario.retail.stores.len()
        );
        assert_eq!(
            cube.fact_table("Sales").unwrap().table.len(),
            scenario.retail.sales.len()
        );
        // The OLAP grand total equals the generator's total.
        let engine = QueryEngine::new();
        let result = engine
            .execute(cube, &Query::over("Sales").measure("UnitSales"))
            .unwrap();
        let total = result.rows[0].values[0].as_number().unwrap();
        assert!((total - scenario.retail.total_unit_sales()).abs() < 1e-6);
    }

    #[test]
    fn rollup_to_city_covers_every_store_city() {
        let scenario = PaperScenario::generate(ScenarioConfig::tiny());
        let engine = QueryEngine::new();
        let by_city = engine
            .execute(
                &scenario.cube,
                &Query::over("Sales")
                    .group_by(AttributeRef::new("Store", "City", "name"))
                    .measure("UnitSales"),
            )
            .unwrap();
        assert!(!by_city.is_empty());
        assert!(by_city.len() <= scenario.retail.cities.len());
    }

    #[test]
    fn manager_profile_matches_fig4() {
        let manager = regional_sales_manager();
        assert_eq!(manager.role_name(), Some("RegionalSalesManager"));
        let interest = manager.interest("AirportCity").unwrap();
        assert_eq!(interest.degree, 0.0);
        assert!(interest.condition.as_deref().unwrap().contains("20km"));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PaperScenario::generate(ScenarioConfig::tiny());
        let b = PaperScenario::generate(ScenarioConfig::tiny());
        assert_eq!(a.retail, b.retail);
        assert_eq!(a.cube.total_fact_rows(), b.cube.total_fact_rows());
    }

    #[test]
    fn paper_layers_constant() {
        assert_eq!(PAPER_LAYERS[0].0, "Airport");
        assert_eq!(PAPER_LAYERS[1].1, GeometricType::Line);
    }
}
