//! Dashboard-workload generation for shared-scan batch benchmarks.
//!
//! A BI dashboard refresh submits every panel's query at once, and how
//! much a shared scan saves depends on how the panels' filters overlap:
//! identical filters collapse to one selection vector per morsel,
//! disjoint filters each pay their own per-row evaluation, and real
//! dashboards sit in between. This module builds deterministic query
//! batches over the paper scenario's `Sales` schema in each of those
//! regimes, so the B16 bench (and tests) can sweep batch size × overlap
//! without hand-writing query lists.

use sdwp_model::AggregationFunction;
use sdwp_olap::{AttributeRef, Filter, Query};

/// How the filters of a generated batch's queries overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlapRegime {
    /// Every query carries the same dimension filter — the whole batch
    /// shares one selection vector per morsel (the GLADE best case).
    Identical,
    /// Every query filters a different city — no selection sharing, only
    /// the shared scan loop and shared group-key dictionaries remain.
    Disjoint,
    /// Alternating: even panels share one filter, odd panels are
    /// pairwise disjoint — the realistic middle ground.
    Mixed,
}

impl OverlapRegime {
    /// All regimes, in sweep order.
    pub const ALL: [OverlapRegime; 3] = [
        OverlapRegime::Identical,
        OverlapRegime::Disjoint,
        OverlapRegime::Mixed,
    ];

    /// The regime's display name (bench group labels).
    pub fn label(&self) -> &'static str {
        match self {
            OverlapRegime::Identical => "identical",
            OverlapRegime::Disjoint => "disjoint",
            OverlapRegime::Mixed => "mixed",
        }
    }
}

/// The city filter of panel `index` under `regime`. `cities` is the
/// scenario's city count — disjoint panels cycle through it, so every
/// filter still matches real members.
fn panel_filter(regime: OverlapRegime, index: usize, cities: usize) -> Filter {
    let cities = cities.max(1);
    let city = match regime {
        OverlapRegime::Identical => 0,
        OverlapRegime::Disjoint => index % cities,
        // Even panels share City-0; odd panels take distinct cities
        // (starting at 1 so they never collide with the shared class).
        OverlapRegime::Mixed => {
            if index.is_multiple_of(2) {
                0
            } else {
                1 + (index / 2) % cities.saturating_sub(1).max(1)
            }
        }
    };
    Filter::eq("City.name", format!("City-{city}"))
}

/// Builds a deterministic `size`-panel dashboard batch over the paper
/// scenario's `Sales` fact. Panels cycle through six shapes exercising
/// every executor path — flat grouped roll-ups, ungrouped vectorised
/// totals and a COUNT DISTINCT on the hashed fallback — while `regime`
/// decides how their `Store` city filters overlap. Same arguments, same
/// batch: the generator is pure.
pub fn dashboard_batch(regime: OverlapRegime, size: usize, cities: usize) -> Vec<Query> {
    (0..size)
        .map(|index| {
            let filter = panel_filter(regime, index, cities);
            let base = Query::over("Sales").filter_dimension("Store", filter);
            match index % 6 {
                0 => base
                    .group_by(AttributeRef::new("Store", "City", "name"))
                    .measure("UnitSales"),
                1 => base.measure("UnitSales").measure("StoreCost"),
                2 => base
                    .group_by(AttributeRef::new("Product", "Category", "name"))
                    .measure("StoreSales"),
                3 => base
                    .group_by(AttributeRef::new("Store", "State", "name"))
                    .measure("StoreCost")
                    .measure("UnitSales"),
                4 => base
                    .group_by(AttributeRef::new("Time", "Month", "name"))
                    .measure("StoreSales"),
                _ => base.measure_agg("UnitSales", AggregationFunction::CountDistinct),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = dashboard_batch(OverlapRegime::Mixed, 8, 25);
        let b = dashboard_batch(OverlapRegime::Mixed, 8, 25);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn identical_regime_shares_one_filter() {
        let batch = dashboard_batch(OverlapRegime::Identical, 8, 25);
        let filters: Vec<_> = batch.iter().map(|q| &q.dimension_filters).collect();
        assert!(filters.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn disjoint_regime_uses_distinct_filters() {
        let batch = dashboard_batch(OverlapRegime::Disjoint, 8, 25);
        let mut seen: Vec<String> = batch
            .iter()
            .map(|q| format!("{:?}", q.dimension_filters))
            .collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), batch.len());
    }

    #[test]
    fn mixed_regime_has_a_shared_class_and_distinct_classes() {
        let batch = dashboard_batch(OverlapRegime::Mixed, 8, 25);
        let filters: Vec<String> = batch
            .iter()
            .map(|q| format!("{:?}", q.dimension_filters))
            .collect();
        // Even panels share; odd panels differ from the shared class.
        assert_eq!(filters[0], filters[2]);
        assert_ne!(filters[0], filters[1]);
        assert_ne!(filters[1], filters[3]);
    }

    #[test]
    fn batches_execute_against_the_paper_scenario() {
        let scenario = crate::PaperScenario::generate(crate::ScenarioConfig::tiny());
        let engine = sdwp_olap::QueryEngine::new();
        for regime in OverlapRegime::ALL {
            let batch = dashboard_batch(regime, 6, crate::ScenarioConfig::tiny().cities);
            for (query, result) in batch
                .iter()
                .zip(engine.execute_batch(&scenario.cube, &batch))
            {
                let result = result.unwrap();
                assert_eq!(result, engine.execute(&scenario.cube, query).unwrap());
            }
        }
    }
}
