//! Scenario configuration.

use serde::{Deserialize, Serialize};

/// Sizing and seeding of a synthetic scenario.
///
/// The region is a square of `region_km` × `region_km` kilometres; cities
/// are scattered uniformly, stores and customers cluster around cities,
/// airports sit near a subset of cities and train lines thread consecutive
/// cities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// RNG seed: two configs with equal seeds generate identical data.
    pub seed: u64,
    /// Side length of the square region, in kilometres.
    pub region_km: f64,
    /// Number of cities.
    pub cities: usize,
    /// Number of stores (each assigned to a city).
    pub stores: usize,
    /// Number of customers (each assigned to a city).
    pub customers: usize,
    /// Number of products.
    pub products: usize,
    /// Number of days in the time dimension.
    pub days: usize,
    /// Number of sales fact rows.
    pub sales: usize,
    /// Number of airports (capped at the number of cities).
    pub airports: usize,
    /// Number of train lines.
    pub train_lines: usize,
    /// Standard deviation (km) of store/customer scatter around their city.
    pub city_spread_km: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 42,
            region_km: 500.0,
            cities: 25,
            stores: 200,
            customers: 400,
            products: 50,
            days: 30,
            sales: 5_000,
            airports: 5,
            train_lines: 3,
            city_spread_km: 8.0,
        }
    }
}

impl ScenarioConfig {
    /// A small configuration for unit tests and doc examples (hundreds of
    /// rows, milliseconds to generate).
    pub fn tiny() -> Self {
        ScenarioConfig {
            seed: 7,
            region_km: 100.0,
            cities: 5,
            stores: 20,
            customers: 30,
            products: 10,
            days: 7,
            sales: 200,
            airports: 2,
            train_lines: 1,
            city_spread_km: 4.0,
        }
    }

    /// Scales the instance counts by an integer factor (used by benchmark
    /// parameter sweeps); the seed and region stay fixed.
    pub fn scaled(mut self, factor: usize) -> Self {
        let f = factor.max(1);
        self.stores *= f;
        self.customers *= f;
        self.sales *= f;
        self.cities = (self.cities * f).min(5_000);
        self
    }

    /// Replaces the seed, keeping every other parameter.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = ScenarioConfig::default();
        assert!(c.stores > 0 && c.cities > 0 && c.sales > 0);
        assert!(c.airports <= c.cities);
        let t = ScenarioConfig::tiny();
        assert!(t.sales < c.sales);
    }

    #[test]
    fn scaling_multiplies_instances() {
        let base = ScenarioConfig::tiny();
        let scaled = base.clone().scaled(3);
        assert_eq!(scaled.stores, base.stores * 3);
        assert_eq!(scaled.sales, base.sales * 3);
        assert_eq!(scaled.seed, base.seed);
        // Factor zero is clamped to one.
        let same = base.clone().scaled(0);
        assert_eq!(same.stores, base.stores);
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let a = ScenarioConfig::tiny();
        let b = a.clone().with_seed(99);
        assert_eq!(a.stores, b.stores);
        assert_ne!(a.seed, b.seed);
    }
}
