//! External geographic layers: the data an `AddLayer` action pulls in.

use crate::config::ScenarioConfig;
use crate::spatial;
use rand::rngs::StdRng;
use sdwp_geometry::{Geometry, LineString, Point};
use sdwp_prml::StaticLayerSource;

/// The synthetic external geographic layers of a scenario: airports and
/// train lines (the layers used by the paper's rules), generated near the
/// scenario's cities.
#[derive(Debug, Clone)]
pub struct GeneratedLayers {
    /// Airport locations, named `"Airport-<i>"`.
    pub airports: Vec<(String, Point)>,
    /// Train lines, named `"Train-<i>"`.
    pub trains: Vec<(String, LineString)>,
}

impl GeneratedLayers {
    /// Generates layers near the given city centres.
    pub fn generate(rng: &mut StdRng, cities: &[Point], config: &ScenarioConfig) -> Self {
        let airports = spatial::generate_airports(rng, cities, config.airports)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (format!("Airport-{i}"), p))
            .collect();
        let trains = spatial::generate_train_lines(rng, cities, config.train_lines)
            .into_iter()
            .enumerate()
            .map(|(i, l)| (format!("Train-{i}"), l))
            .collect();
        GeneratedLayers { airports, trains }
    }

    /// Exposes the layers as a PRML [`LayerSource`] keyed by the layer
    /// names used in the paper's rules (`Airport`, `Train`).
    pub fn as_layer_source(&self) -> StaticLayerSource {
        let mut source = StaticLayerSource::new();
        source.insert(
            "Airport",
            self.airports
                .iter()
                .map(|(name, p)| (name.clone(), Geometry::from(*p)))
                .collect(),
        );
        source.insert(
            "Train",
            self.trains
                .iter()
                .map(|(name, l)| (name.clone(), Geometry::from(l.clone())))
                .collect(),
        );
        source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial::{generate_cities, rng_for_seed};
    use sdwp_prml::LayerSource;

    #[test]
    fn generated_layers_match_config() {
        let config = ScenarioConfig::tiny();
        let mut rng = rng_for_seed(config.seed);
        let cities = generate_cities(&mut rng, config.cities, config.region_km);
        let layers = GeneratedLayers::generate(&mut rng, &cities, &config);
        assert_eq!(layers.airports.len(), config.airports);
        assert_eq!(layers.trains.len(), config.train_lines);
        assert!(layers.airports[0].0.starts_with("Airport-"));
    }

    #[test]
    fn layer_source_serves_paper_layer_names() {
        let config = ScenarioConfig::tiny();
        let mut rng = rng_for_seed(config.seed);
        let cities = generate_cities(&mut rng, config.cities, config.region_km);
        let layers = GeneratedLayers::generate(&mut rng, &cities, &config);
        let source = layers.as_layer_source();
        assert_eq!(
            source.layer_instances("Airport").unwrap().len(),
            config.airports
        );
        assert_eq!(
            source.layer_instances("train").unwrap().len(),
            config.train_lines
        );
        assert!(source.layer_instances("Hospital").is_none());
    }
}
