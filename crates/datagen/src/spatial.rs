//! Generation of the synthetic geography: cities, points around cities,
//! airports and train lines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdwp_geometry::{Coord, LineString, Point};

/// Creates the deterministic RNG for a seed.
pub fn rng_for_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Generates `n` city centres uniformly over a square region of side
/// `region_km`.
pub fn generate_cities(rng: &mut StdRng, n: usize, region_km: f64) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(0.0..region_km.max(f64::MIN_POSITIVE)),
                rng.gen_range(0.0..region_km.max(f64::MIN_POSITIVE)),
            )
        })
        .collect()
}

/// Generates a point scattered around a centre with an approximately normal
/// spread of `spread_km` (sum of uniforms approximation, clamped to the
/// region).
pub fn scatter_around(rng: &mut StdRng, center: &Point, spread_km: f64, region_km: f64) -> Point {
    let normal_ish = |rng: &mut StdRng| -> f64 {
        // Irwin–Hall approximation of a standard normal.
        let sum: f64 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum();
        sum - 6.0
    };
    let x = (center.x() + normal_ish(rng) * spread_km).clamp(0.0, region_km);
    let y = (center.y() + normal_ish(rng) * spread_km).clamp(0.0, region_km);
    Point::new(x, y)
}

/// Picks airport locations: one near each of the first `n` cities (offset a
/// few kilometres from the city centre).
pub fn generate_airports(rng: &mut StdRng, cities: &[Point], n: usize) -> Vec<Point> {
    cities
        .iter()
        .take(n.min(cities.len()))
        .map(|c| {
            Point::new(
                c.x() + rng.gen_range(2.0..10.0),
                c.y() + rng.gen_range(2.0..10.0),
            )
        })
        .collect()
}

/// Builds train lines threading consecutive cities: each line visits a
/// random contiguous run of the city list (at least two cities).
pub fn generate_train_lines(rng: &mut StdRng, cities: &[Point], n: usize) -> Vec<LineString> {
    if cities.len() < 2 {
        return Vec::new();
    }
    (0..n)
        .map(|_| {
            let start = rng.gen_range(0..cities.len() - 1);
            let max_len = cities.len() - start;
            let len = rng.gen_range(2..=max_len.max(2).min(cities.len()));
            let coords: Vec<Coord> = cities[start..(start + len).min(cities.len())]
                .iter()
                .map(|p| p.coord())
                .collect();
            LineString::new(coords).expect("at least two cities per line")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = rng_for_seed(1);
        let mut b = rng_for_seed(1);
        let ca = generate_cities(&mut a, 10, 100.0);
        let cb = generate_cities(&mut b, 10, 100.0);
        assert_eq!(ca, cb);
        let mut c = rng_for_seed(2);
        let cc = generate_cities(&mut c, 10, 100.0);
        assert_ne!(ca, cc);
    }

    #[test]
    fn cities_stay_in_region() {
        let mut rng = rng_for_seed(3);
        for city in generate_cities(&mut rng, 100, 250.0) {
            assert!(city.x() >= 0.0 && city.x() <= 250.0);
            assert!(city.y() >= 0.0 && city.y() <= 250.0);
        }
    }

    #[test]
    fn scatter_clusters_around_center() {
        let mut rng = rng_for_seed(4);
        let center = Point::new(50.0, 50.0);
        let points: Vec<Point> = (0..200)
            .map(|_| scatter_around(&mut rng, &center, 5.0, 100.0))
            .collect();
        let mean_distance: f64 =
            points.iter().map(|p| p.distance(&center)).sum::<f64>() / points.len() as f64;
        assert!(mean_distance < 20.0, "mean distance {mean_distance}");
        for p in points {
            assert!(p.x() >= 0.0 && p.x() <= 100.0);
        }
    }

    #[test]
    fn airports_near_their_cities() {
        let mut rng = rng_for_seed(5);
        let cities = generate_cities(&mut rng, 8, 200.0);
        let airports = generate_airports(&mut rng, &cities, 3);
        assert_eq!(airports.len(), 3);
        for (airport, city) in airports.iter().zip(&cities) {
            assert!(airport.distance(city) < 20.0);
        }
        // Requesting more airports than cities caps at the city count.
        let many = generate_airports(&mut rng, &cities, 100);
        assert_eq!(many.len(), 8);
    }

    #[test]
    fn train_lines_have_at_least_two_vertices() {
        let mut rng = rng_for_seed(6);
        let cities = generate_cities(&mut rng, 12, 300.0);
        let lines = generate_train_lines(&mut rng, &cities, 4);
        assert_eq!(lines.len(), 4);
        for line in lines {
            assert!(line.len() >= 2);
            assert!(line.length() > 0.0);
        }
        assert!(generate_train_lines(&mut rng, &cities[..1], 2).is_empty());
    }
}
