//! Errors surfaced by the personalization engine.

use std::fmt;

/// Errors raised by the personalization engine and web facade.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A rule failed to parse, validate or evaluate.
    Rule(sdwp_prml::PrmlError),
    /// The OLAP layer rejected an operation.
    Olap(sdwp_olap::OlapError),
    /// The user model rejected an operation.
    User(sdwp_user::UserError),
    /// The conceptual model rejected an operation.
    Model(sdwp_model::ModelError),
    /// A session id is unknown or the session has ended.
    UnknownSession {
        /// The offending session id.
        session: u64,
    },
    /// The streaming-ingestion pipeline refused a submission
    /// (backpressure or shutdown).
    Ingest {
        /// Description of the refusal.
        message: String,
    },
    /// A request was malformed.
    BadRequest {
        /// Description of the problem.
        message: String,
    },
    /// The admission controller shed the query: the session class is
    /// best-effort and its in-flight / queue-depth budget is exhausted.
    /// Transient by design — the client should back off and retry.
    Overloaded {
        /// The session class that was shed.
        class: String,
        /// Queries of the class in flight at the decision.
        in_flight: usize,
        /// The class's in-flight budget (`0` = the queue-depth budget
        /// tripped instead).
        limit: usize,
    },
    /// A read-your-writes session required a newer snapshot generation
    /// than the one published within the wait budget.
    StaleSnapshot {
        /// The generation currently published.
        published: u64,
        /// The generation the session is pinned to.
        required: u64,
    },
    /// The query's deadline expired — while waiting for admission or
    /// between scan morsels — and it was cancelled cooperatively. No
    /// partial state escaped: the result cache is untouched and every
    /// admission slot was released.
    DeadlineExceeded,
    /// Query execution panicked on a worker; the panic was contained to
    /// this query (the morsel pool and all shared state keep serving).
    ExecutionPanicked,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Rule(e) => write!(f, "rule error: {e}"),
            CoreError::Olap(e) => write!(f, "OLAP error: {e}"),
            CoreError::User(e) => write!(f, "user model error: {e}"),
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::UnknownSession { session } => {
                write!(f, "unknown or ended session {session}")
            }
            CoreError::Ingest { message } => write!(f, "ingest error: {message}"),
            CoreError::Overloaded {
                class,
                in_flight,
                limit,
            } => write!(
                f,
                "overloaded: class \"{class}\" shed at {in_flight} queries in flight (limit {limit})"
            ),
            CoreError::BadRequest { message } => write!(f, "bad request: {message}"),
            CoreError::StaleSnapshot {
                published,
                required,
            } => write!(
                f,
                "published snapshot generation {published} is older than the session's \
                 pinned generation {required}"
            ),
            CoreError::DeadlineExceeded => {
                write!(f, "query deadline exceeded; cancelled with no partial state")
            }
            CoreError::ExecutionPanicked => write!(
                f,
                "query execution panicked; the panic was contained to this query"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<sdwp_prml::PrmlError> for CoreError {
    fn from(e: sdwp_prml::PrmlError) -> Self {
        CoreError::Rule(e)
    }
}

impl From<sdwp_olap::OlapError> for CoreError {
    fn from(e: sdwp_olap::OlapError) -> Self {
        // Lifecycle outcomes keep their identity across the layer
        // boundary — callers match on them to decide retry semantics.
        match e {
            sdwp_olap::OlapError::DeadlineExceeded => CoreError::DeadlineExceeded,
            sdwp_olap::OlapError::ExecutionPanicked => CoreError::ExecutionPanicked,
            other => CoreError::Olap(other),
        }
    }
}

impl From<sdwp_user::UserError> for CoreError {
    fn from(e: sdwp_user::UserError) -> Self {
        CoreError::User(e)
    }
}

impl From<sdwp_model::ModelError> for CoreError {
    fn from(e: sdwp_model::ModelError) -> Self {
        CoreError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: CoreError = sdwp_prml::PrmlError::eval("r", "boom").into();
        assert!(e.to_string().contains("rule error"));
        let e: CoreError = sdwp_olap::OlapError::InvalidQuery {
            message: "no measures".into(),
        }
        .into();
        assert!(e.to_string().contains("OLAP error"));
        let e: CoreError = sdwp_user::UserError::NotFound {
            kind: "user",
            id: "u".into(),
        }
        .into();
        assert!(e.to_string().contains("user model error"));
        let e: CoreError = sdwp_model::ModelError::Invalid {
            message: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("model error"));
        assert!(CoreError::UnknownSession { session: 9 }
            .to_string()
            .contains("9"));
        assert!(CoreError::BadRequest {
            message: "missing user".into()
        }
        .to_string()
        .contains("missing user"));
    }

    #[test]
    fn lifecycle_outcomes_keep_their_identity_across_the_boundary() {
        let e: CoreError = sdwp_olap::OlapError::DeadlineExceeded.into();
        assert_eq!(e, CoreError::DeadlineExceeded);
        assert!(e.to_string().contains("deadline"));
        let e: CoreError = sdwp_olap::OlapError::ExecutionPanicked.into();
        assert_eq!(e, CoreError::ExecutionPanicked);
        assert!(e.to_string().contains("contained"));
    }
}
