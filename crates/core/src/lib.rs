//! The spatial data warehouse personalization engine — the paper's primary
//! contribution, assembled from the substrate crates.
//!
//! The engine realises the process of the paper's Fig. 1:
//!
//! 1. the designer supplies an MD model (and its cube of instances), a
//!    spatial-aware user model (profiles) and a set of PRML rules;
//! 2. when a decision maker logs in (**SessionStart**), the *schema rules*
//!    run: `AddLayer` and `BecomeSpatial` actions turn the MD model into a
//!    user-specific GeoMD model, pulling external layer data in;
//! 3. the *instance rules* run: `SelectInstance` actions produce a
//!    personalized [`sdwp_olap::InstanceView`] so that every subsequent
//!    OLAP query — even from a BI tool with no spatial support — only sees
//!    the instances relevant to that user;
//! 4. while the session runs, **SpatialSelection** events update the user's
//!    interest degrees (`SetContent`), which later sessions' rules can
//!    threshold (Example 5.3).
//!
//! [`PersonalizationEngine`] is the library-level API;
//! [`web::WebFacade`] wraps it in serde request/response messages that
//! mirror the "web-based" deployment the paper targets.
//!
//! Both are built for **concurrent multi-session serving**: every method
//! takes `&self`, so one engine behind an `Arc` (or one cloned
//! [`WebFacade`]) serves any number of worker threads. Queries run on
//! hot-swapped immutable snapshots ([`sync::ArcSwap`]); per-session state
//! lives in a sharded [`SessionManager`]; only rule firing serialises, on
//! the single mutable cube master. See [`engine`]'s module docs for the
//! full locking discipline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod error;
pub mod report;
pub mod session;
pub mod sync;
pub mod web;

pub use engine::{PersonalizationEngine, SessionHandle};
pub use error::CoreError;
pub use report::PersonalizationReport;
// Re-exported so facade users can build engines with an explicit
// registry and read snapshots without naming `sdwp_obs` directly.
pub use sdwp_obs::{ClassId, MetricsRegistry, MetricsSnapshot, SlowQueryRecord, StageSnapshot};
pub use sdwp_olap::{AdmitError, CancelToken, MorselPool, PoolStats, TenantPolicy, TenantStats};

/// The deterministic fault-injection registry (arm/disarm named
/// failpoints), re-exported for chaos tests driving the whole engine.
/// Only present under the `failpoints` feature; a default build
/// contains no failpoint code at all.
#[cfg(feature = "failpoints")]
pub use sdwp_olap::fault;
pub use session::{SessionManager, SessionState};
pub use sync::{ArcSwap, VersionedSwap};
pub use web::{BatchEntry, WebFacade, WebRequest, WebResponse};
