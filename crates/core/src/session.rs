//! Session bookkeeping: one personalized view per analysis session.

use crate::error::CoreError;
use sdwp_olap::InstanceView;
use sdwp_prml::RuleEffect;
use sdwp_user::{Session, SessionId, SessionStatus};
use std::collections::BTreeMap;

/// The per-session state kept by the engine: the user-model session object,
/// the personalized instance view built by instance rules, and the effects
/// of every rule that fired during the session.
#[derive(Debug, Clone)]
pub struct SessionState {
    /// The SUS «Session» instance (events, location context, status).
    pub session: Session,
    /// The personalized view every query of this session goes through.
    pub view: InstanceView,
    /// Effects of the rules that fired during this session, in firing order.
    pub effects: Vec<RuleEffect>,
}

impl SessionState {
    /// Creates the state for a freshly started session.
    pub fn new(session: Session) -> Self {
        SessionState {
            session,
            view: InstanceView::unrestricted(),
            effects: Vec::new(),
        }
    }

    /// Returns `true` while the session is active.
    pub fn is_active(&self) -> bool {
        self.session.status == SessionStatus::Active
    }
}

/// Allocates session ids and stores per-session state.
#[derive(Debug, Clone, Default)]
pub struct SessionManager {
    next_id: SessionId,
    sessions: BTreeMap<SessionId, SessionState>,
}

impl SessionManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        SessionManager {
            next_id: 1,
            sessions: BTreeMap::new(),
        }
    }

    /// Allocates the next session id.
    pub fn allocate_id(&mut self) -> SessionId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Registers a new session state.
    pub fn insert(&mut self, state: SessionState) -> SessionId {
        let id = state.session.id;
        self.sessions.insert(id, state);
        id
    }

    /// Borrows a session state.
    pub fn get(&self, id: SessionId) -> Result<&SessionState, CoreError> {
        self.sessions
            .get(&id)
            .ok_or(CoreError::UnknownSession { session: id })
    }

    /// Mutably borrows a session state.
    pub fn get_mut(&mut self, id: SessionId) -> Result<&mut SessionState, CoreError> {
        self.sessions
            .get_mut(&id)
            .ok_or(CoreError::UnknownSession { session: id })
    }

    /// Number of tracked sessions (active and ended).
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Returns `true` when no session has been started yet.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Ids of the currently active sessions.
    pub fn active_sessions(&self) -> Vec<SessionId> {
        self.sessions
            .iter()
            .filter(|(_, s)| s.is_active())
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut manager = SessionManager::new();
        assert!(manager.is_empty());
        let id = manager.allocate_id();
        assert_eq!(id, 1);
        let state = SessionState::new(Session::start(id, "u1"));
        assert!(state.is_active());
        assert!(state.view.is_unrestricted());
        manager.insert(state);
        assert_eq!(manager.len(), 1);
        assert_eq!(manager.active_sessions(), vec![1]);
        assert!(manager.get(1).is_ok());
        assert!(manager.get(2).is_err());
        manager.get_mut(1).unwrap().session.end();
        assert!(manager.active_sessions().is_empty());
        assert_eq!(manager.allocate_id(), 2);
    }
}
