//! Session bookkeeping: one personalized view per analysis session.
//!
//! The [`SessionManager`] is the piece of engine state touched by *every*
//! request of *every* decision maker, so it is sharded: session ids map
//! round-robin onto independent `RwLock`-protected maps. Two sessions on
//! different shards never contend, and readers of the same shard share the
//! lock. All operations take `&self`, which is what lets
//! [`crate::PersonalizationEngine`] serve many web sessions from one
//! shared instance.

use crate::error::CoreError;
use parking_lot::RwLock;
use sdwp_obs::{ClassId, Counter, Gauge};
use sdwp_olap::{InstanceView, RowRemap};
use sdwp_prml::RuleEffect;
use sdwp_user::{Session, SessionId, SessionStatus};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The per-session state kept by the engine: the user-model session object,
/// the personalized instance view built by instance rules, and the effects
/// of every rule that fired during the session.
#[derive(Debug, Clone)]
pub struct SessionState {
    /// The SUS «Session» instance (events, location context, status).
    pub session: Session,
    /// The personalized view every query of this session goes through.
    /// Copy-on-write: the engine replaces the `Arc` when rules restrict
    /// the view, so readers clone a pointer, never the selection sets.
    pub view: Arc<InstanceView>,
    /// Effects of the rules that fired during this session, in firing order.
    pub effects: Vec<RuleEffect>,
    /// Read-your-writes floor: queries of this session refuse (after a
    /// bounded wait) snapshots older than this generation. `0` means no
    /// pin — any snapshot serves.
    pub min_generation: u64,
    /// The session class latency samples of this session are keyed by
    /// in the metrics registry ([`ClassId::DEFAULT`] when the login did
    /// not name one).
    pub class: ClassId,
}

impl SessionState {
    /// Creates the state for a freshly started session in the default
    /// session class.
    pub fn new(session: Session) -> Self {
        SessionState::with_class(session, ClassId::DEFAULT)
    }

    /// Creates the state for a freshly started session in an explicit
    /// session class.
    pub fn with_class(session: Session, class: ClassId) -> Self {
        SessionState {
            session,
            view: Arc::new(InstanceView::unrestricted()),
            effects: Vec::new(),
            min_generation: 0,
            class,
        }
    }

    /// Returns `true` while the session is active.
    pub fn is_active(&self) -> bool {
        self.session.status == SessionStatus::Active
    }
}

/// How many independent shards the session map is split into. Ids are
/// assigned sequentially, so consecutive logins land on consecutive shards.
const SHARD_COUNT: usize = 16;

/// Allocates session ids and stores per-session state, concurrently.
///
/// Reads and writes to *different* sessions proceed in parallel (modulo
/// shard collisions); id allocation is a single atomic increment.
#[derive(Debug)]
pub struct SessionManager {
    next_id: AtomicU64,
    shards: Vec<RwLock<HashMap<SessionId, SessionState>>>,
    /// Sessions currently stored across all shards — the observable
    /// complement of [`Self::reclaimed`] (PR 7 added logout reclamation;
    /// this pair is how operators watch it work).
    active: Gauge,
    /// Sessions removed (reclaimed at logout) over the manager's lifetime.
    reclaimed: Counter,
}

impl Default for SessionManager {
    fn default() -> Self {
        SessionManager::new()
    }
}

impl SessionManager {
    /// Creates an empty manager with the default shard count.
    pub fn new() -> Self {
        SessionManager::with_shards(SHARD_COUNT)
    }

    /// Creates an empty manager with an explicit shard count (≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        SessionManager {
            next_id: AtomicU64::new(1),
            shards: (0..shards.max(1))
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            active: Gauge::new(),
            reclaimed: Counter::new(),
        }
    }

    fn shard(&self, id: SessionId) -> &RwLock<HashMap<SessionId, SessionState>> {
        &self.shards[(id as usize) % self.shards.len()]
    }

    /// Allocates the next session id (wait-free).
    pub fn allocate_id(&self) -> SessionId {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a new session state.
    pub fn insert(&self, state: SessionState) -> SessionId {
        let id = state.session.id;
        if self.shard(id).write().insert(id, state).is_none() {
            self.active.inc();
        }
        id
    }

    /// Removes a session's state from the map, returning it when present.
    ///
    /// The engine calls this at logout, after the SessionEnd rules fired:
    /// an ended session's view and effect log would otherwise be retained
    /// forever, growing the shards without bound and pinning the
    /// compaction remap chain (see [`Self::min_fact_selection_version`])
    /// on views no query can reach any more.
    pub fn remove(&self, id: SessionId) -> Option<SessionState> {
        let removed = self.shard(id).write().remove(&id);
        if removed.is_some() {
            self.active.dec();
            self.reclaimed.inc();
        }
        removed
    }

    /// Sessions currently stored (the `sessions_active` gauge).
    pub fn sessions_active(&self) -> i64 {
        self.active.get()
    }

    /// Sessions reclaimed at logout over the manager's lifetime (the
    /// `sessions_reclaimed` counter).
    pub fn sessions_reclaimed(&self) -> u64 {
        self.reclaimed.get()
    }

    /// Runs `f` over a shared borrow of a session's state.
    pub fn with_session<R>(
        &self,
        id: SessionId,
        f: impl FnOnce(&SessionState) -> R,
    ) -> Result<R, CoreError> {
        self.shard(id)
            .read()
            .get(&id)
            .map(f)
            .ok_or(CoreError::UnknownSession { session: id })
    }

    /// Runs `f` over an exclusive borrow of a session's state.
    pub fn with_session_mut<R>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut SessionState) -> R,
    ) -> Result<R, CoreError> {
        self.shard(id)
            .write()
            .get_mut(&id)
            .map(f)
            .ok_or(CoreError::UnknownSession { session: id })
    }

    /// Returns an owned copy of a session's state.
    pub fn snapshot(&self, id: SessionId) -> Result<SessionState, CoreError> {
        self.with_session(id, Clone::clone)
    }

    /// Number of tracked sessions.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Returns `true` when no session has been started yet.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Ids of the currently active sessions, in ascending order.
    pub fn active_sessions(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .read()
                    .iter()
                    .filter(|(_, s)| s.is_active())
                    .map(|(id, _)| *id)
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    /// The number of shards the session map is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Translates every stored session view's selection over `fact`
    /// through one compaction remap (see
    /// [`InstanceView::remap_fact_rows`]). Called by the compaction path
    /// right after it publishes the rewritten snapshot, so stored views
    /// stay aligned with the current row numbering; views already at a
    /// different version (or without a selection over the fact) are left
    /// untouched — queries resolve those through the remap chain instead.
    pub fn remap_fact_rows(&self, fact: &str, remap: &RowRemap, from_version: u64) {
        for shard in &self.shards {
            for state in shard.write().values_mut() {
                if state.view.fact_selection_version(fact) == Some(from_version) {
                    Arc::make_mut(&mut state.view).remap_fact_rows(fact, remap, from_version);
                }
            }
        }
    }

    /// The oldest compaction version any stored session view's selection
    /// over `fact` was captured at, or `None` when no stored view
    /// restricts the fact. The remap-chain trimmer uses this as the floor
    /// below which no transition can be referenced any more.
    pub fn min_fact_selection_version(&self, fact: &str) -> Option<u64> {
        let mut min = None;
        for shard in &self.shards {
            for state in shard.read().values() {
                if let Some(version) = state.view.fact_selection_version(fact) {
                    min = Some(min.map_or(version, |m: u64| m.min(version)));
                }
            }
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lifecycle() {
        let manager = SessionManager::new();
        assert!(manager.is_empty());
        let id = manager.allocate_id();
        assert_eq!(id, 1);
        let state = SessionState::new(Session::start(id, "u1"));
        assert!(state.is_active());
        assert!(state.view.is_unrestricted());
        manager.insert(state);
        assert_eq!(manager.len(), 1);
        assert_eq!(manager.active_sessions(), vec![1]);
        assert!(manager.with_session(1, |_| ()).is_ok());
        assert!(manager.with_session(2, |_| ()).is_err());
        manager
            .with_session_mut(1, |state| state.session.end())
            .unwrap();
        assert!(manager.active_sessions().is_empty());
        assert_eq!(manager.allocate_id(), 2);
        let snapshot = manager.snapshot(1).unwrap();
        assert!(!snapshot.is_active());
        assert_eq!(manager.sessions_active(), 1);
        assert_eq!(manager.sessions_reclaimed(), 0);
        let removed = manager.remove(1).expect("session state is present");
        assert!(!removed.is_active());
        assert!(manager.is_empty());
        assert!(manager.remove(1).is_none());
        assert!(manager.with_session(1, |_| ()).is_err());
        // The gauge pair observes the reclamation exactly once — the
        // second (no-op) remove above must not double-count.
        assert_eq!(manager.sessions_active(), 0);
        assert_eq!(manager.sessions_reclaimed(), 1);
    }

    #[test]
    fn sessions_spread_over_shards() {
        let manager = SessionManager::with_shards(4);
        for _ in 0..8 {
            let id = manager.allocate_id();
            manager.insert(SessionState::new(Session::start(id, "u")));
        }
        assert_eq!(manager.len(), 8);
        assert_eq!(manager.shard_count(), 4);
        assert_eq!(manager.active_sessions(), (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let manager = Arc::new(SessionManager::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let manager = Arc::clone(&manager);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let id = manager.allocate_id();
                        manager.insert(SessionState::new(Session::start(id, "u")));
                        manager
                            .with_session(id, |s| assert!(s.is_active()))
                            .unwrap();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(manager.len(), 400);
        // Ids are unique: the active list has no duplicates.
        let ids = manager.active_sessions();
        assert_eq!(ids.len(), 400);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }
}
