//! The web facade: message-level interface of the "web-based" deployment.
//!
//! The paper's personalization is *web-based*: decision makers interact
//! through a web BI front-end that logs them in, tracks their selections
//! and shows them their (already personalized) data. This module provides
//! that boundary as typed, serde-serialisable request/response messages
//! over a [`WebFacade`] wrapping the [`PersonalizationEngine`] — the same
//! contract an HTTP layer would expose, without tying the library to a
//! specific web framework.

use crate::engine::PersonalizationEngine;
use crate::error::CoreError;
use crate::report::PersonalizationReport;
use sdwp_ingest::{DeltaBatch, IngestConfig};
use sdwp_obs::MetricsSnapshot;
use sdwp_olap::{AttributeRef, CellValue, FactTableStats, Query};
use sdwp_user::{LocationContext, SessionId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A request from the web front-end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WebRequest {
    /// The user logs in, optionally reporting their location (longitude /
    /// x and latitude / y in the warehouse's coordinate unit).
    Login {
        /// The user id (login).
        user: String,
        /// Optional location context `(x, y)`.
        location: Option<(f64, f64)>,
        /// Optional session class (tenant tier): every latency sample of
        /// the session is keyed by it in the metrics registry, so
        /// per-class p50/p99 come out of [`WebRequest::Metrics`].
        class: Option<String>,
    },
    /// The user performed a spatial selection in the UI.
    SpatialSelection {
        /// The session performing the selection.
        session: SessionId,
        /// The selected GeoMD element (path text).
        element: String,
        /// The spatial expression satisfied by the selection, when the
        /// front-end knows it.
        expression: Option<String>,
    },
    /// The user runs an aggregation: group the fact's measure by a level
    /// attribute.
    Aggregate {
        /// The session issuing the query.
        session: SessionId,
        /// The fact to aggregate (e.g. `"Sales"`).
        fact: String,
        /// The measure to aggregate (e.g. `"UnitSales"`).
        measure: String,
        /// Group-by keys as `(dimension, level, attribute)` triples.
        group_by: Vec<(String, String, String)>,
        /// Optional end-to-end deadline budget in µs. The clock starts
        /// when the engine picks the request up and covers admission,
        /// the read-your-writes wait and the scan; an expiry cancels
        /// the query cooperatively (typed error, no partial state).
        /// `None` falls back to the executor config's default.
        deadline_micros: Option<u64>,
    },
    /// A dashboard refresh: the front-end submits every panel's query at
    /// once, and the engine answers them in one shared-scan batch —
    /// cached results come from the result cache, the misses share a
    /// single morsel-parallel pass over each fact (common filters share
    /// selection vectors, common group-by attributes share dictionaries).
    QueryBatch {
        /// The session issuing the batch.
        session: SessionId,
        /// The panel queries, answered positionally.
        queries: Vec<Query>,
        /// Optional deadline budget in µs for the whole batch (see
        /// [`WebRequest::Aggregate::deadline_micros`]); panels not yet
        /// scanned at expiry answer with a typed per-panel error while
        /// completed panels keep their tables.
        deadline_micros: Option<u64>,
    },
    /// The user asks for their personalization report.
    Report {
        /// The session to report on.
        session: SessionId,
    },
    /// An operator asks for the engine's query-result cache counters.
    CacheStats,
    /// An operator asks for the group-key dictionary cache counters.
    DictCacheStats,
    /// An operator asks for the full observability snapshot: per-stage
    /// latency histograms (p50/p90/p99) keyed by session class, engine
    /// counters and gauges, and the slow-query journal.
    Metrics,
    /// An operator asks for the metrics in the Prometheus text
    /// exposition format (what a `/metrics` scrape endpoint would serve).
    MetricsText,
    /// An upstream feed submits a batch of fact deltas (sales appends,
    /// price corrections, retractions). The batch becomes visible to
    /// queries atomically, at the next epoch publication.
    Ingest {
        /// The delta batch to apply.
        batch: DeltaBatch,
    },
    /// An operator asks for the streaming-ingestion counters.
    IngestStats,
    /// The session asks to *read its own writes*: pin it to a minimum
    /// snapshot generation (typically the `last_generation` reported
    /// after its deltas were flushed), so later queries of this session
    /// never observe an older snapshot — they briefly wait for the epoch
    /// worker, and refuse if it cannot catch up.
    PinGeneration {
        /// The session to pin.
        session: SessionId,
        /// The minimum snapshot generation (pins only ratchet upwards).
        generation: u64,
    },
    /// An operator replaces the *entire* rule set with the given PRML
    /// text (hot reload). The swap is atomic: in-flight firings keep the
    /// ruleset they loaded, new firings see the new compiled set, and a
    /// parse/typecheck/compile failure leaves the in-service rules
    /// untouched and serving.
    ReloadRules {
        /// The PRML source of the replacement rule set.
        rules: String,
    },
    /// The user logs out.
    Logout {
        /// The session to end.
        session: SessionId,
    },
}

/// A response to the web front-end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WebResponse {
    /// Login succeeded.
    LoggedIn {
        /// The new session id.
        session: SessionId,
        /// What personalization did at session start.
        report: PersonalizationReport,
    },
    /// A spatial selection was recorded.
    SelectionRecorded {
        /// Number of rules that matched the selection event.
        rules_matched: usize,
    },
    /// Aggregation results.
    Table {
        /// Column headers (group-by labels then measures).
        columns: Vec<String>,
        /// Rows of rendered cells.
        rows: Vec<Vec<String>>,
        /// Facts scanned / matched, for transparency.
        facts_matched: usize,
    },
    /// Results of a [`WebRequest::QueryBatch`], positionally aligned with
    /// the submitted queries: a panel whose query failed gets its own
    /// [`BatchEntry::Error`] without poisoning its neighbours.
    BatchResult {
        /// One entry per submitted query, in submission order.
        results: Vec<BatchEntry>,
    },
    /// A personalization report.
    Report(Box<PersonalizationReport>),
    /// Query-result cache counters.
    CacheStats {
        /// Lookups served from the cache.
        hits: u64,
        /// Lookups that executed the query.
        misses: u64,
        /// Results currently cached.
        entries: usize,
        /// Entries dropped because a new cube snapshot was published.
        invalidations: u64,
        /// Entries dropped by capacity eviction — a high rate against a
        /// low hit rate means the working set exceeds the configured
        /// `cache_capacity`.
        evictions: u64,
    },
    /// Group-key dictionary cache counters.
    DictCacheStats {
        /// Dictionary lookups served from the cache.
        hits: u64,
        /// Dictionary lookups that rebuilt the dictionary.
        misses: u64,
        /// Dictionaries currently cached.
        entries: usize,
        /// Dictionaries dropped by schema-changing publications.
        invalidations: u64,
    },
    /// The full observability snapshot (see
    /// [`crate::PersonalizationEngine::metrics_snapshot`]).
    Metrics {
        /// Per-stage latency summaries, counters, gauges and the
        /// slow-query journal.
        snapshot: MetricsSnapshot,
    },
    /// The metrics rendered in the Prometheus text exposition format.
    MetricsText {
        /// The exposition body.
        body: String,
    },
    /// A delta batch was accepted into the ingest queue (it will become
    /// visible at the next epoch publication).
    IngestAccepted {
        /// Number of deltas queued.
        deltas: usize,
    },
    /// Streaming-ingestion counters.
    IngestStats {
        /// Batches accepted into the queue.
        batches_submitted: u64,
        /// Batches refused because the queue was full (backpressure).
        batches_rejected: u64,
        /// Batches applied to the write master.
        batches_applied: u64,
        /// Batches dropped by validation failures.
        batches_failed: u64,
        /// Fact rows appended.
        rows_appended: u64,
        /// Measure cells overwritten.
        cells_upserted: u64,
        /// Fact rows retracted.
        rows_retracted: u64,
        /// Snapshots published by the epoch worker.
        epochs_published: u64,
        /// Generation of the last published snapshot.
        last_generation: u64,
        /// Fact-table compactions performed by the epoch worker.
        compactions: u64,
        /// Batches accepted but not yet applied or failed — the queue's
        /// current backlog (sits next to `batches_rejected`: a deep queue
        /// precedes backpressure rejections).
        queue_depth: u64,
        /// Times the supervisor restarted a panicked epoch worker.
        worker_restarts: u64,
        /// Wall-clock micros (Unix epoch) of the worker's most recent
        /// loop iteration — its liveness heartbeat.
        last_heartbeat_micros: u64,
        /// True once the restart budget is exhausted and submissions are
        /// refused with a typed worker-down error.
        worker_down: bool,
        /// Per-fact storage gauges (total / live rows, tombstone ratio,
        /// compactions) — the operator's compaction-pressure dashboard.
        fact_tables: Vec<FactTableStats>,
    },
    /// A session was pinned to a minimum snapshot generation.
    GenerationPinned {
        /// The effective pin (pins only ratchet upwards).
        generation: u64,
    },
    /// The rule set was replaced and compiled.
    RulesReloaded {
        /// The classification of each rule now in service, in order.
        classes: Vec<sdwp_prml::RuleClass>,
    },
    /// Logout succeeded.
    LoggedOut,
    /// The admission controller shed the request: the session class is
    /// best-effort and its budget is exhausted. Unlike
    /// [`WebResponse::Error`] this is typed — clients should treat it
    /// as retryable backpressure (the HTTP layer's 429), not a failure.
    Overloaded {
        /// The session class that was shed.
        class: String,
        /// Queries of the class in flight at the decision.
        in_flight: usize,
        /// The class's in-flight budget (`0` = the queue-depth budget
        /// tripped instead).
        limit: usize,
        /// Suggested backoff in µs before retrying — the shed class's
        /// recent end-to-end p99 (roughly one queued query's drain
        /// time), `0` when the class has no latency history yet. The
        /// HTTP layer's `Retry-After`.
        retry_after_hint_micros: u64,
    },
    /// The request failed.
    Error {
        /// Human-readable description of the failure.
        message: String,
    },
}

/// One query's outcome inside a [`WebResponse::BatchResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BatchEntry {
    /// The query succeeded; same rendering as [`WebResponse::Table`].
    Table {
        /// Column headers (group-by labels then measures).
        columns: Vec<String>,
        /// Rows of rendered cells.
        rows: Vec<Vec<String>>,
        /// Facts matched, for transparency.
        facts_matched: usize,
    },
    /// The query failed (the rest of the batch still answered).
    Error {
        /// Human-readable description of the failure.
        message: String,
    },
}

/// Renders a query result the way [`WebResponse::Table`] does.
fn render_table(result: &sdwp_olap::QueryResult) -> (Vec<String>, Vec<Vec<String>>) {
    let columns = result
        .key_names
        .iter()
        .chain(result.value_names.iter())
        .cloned()
        .collect();
    let rows = result
        .rows
        .iter()
        .map(|r| {
            r.keys
                .iter()
                .chain(r.values.iter())
                .map(CellValue::to_string)
                .collect()
        })
        .collect();
    (columns, rows)
}

/// The message-level web interface over a personalization engine.
///
/// Cloning the facade clones the *handle*; all clones serve the same
/// shared engine (sessions, profiles, personalized schema).
#[derive(Clone)]
pub struct WebFacade {
    engine: Arc<PersonalizationEngine>,
}

impl WebFacade {
    /// Wraps an engine, taking ownership of it.
    pub fn new(engine: PersonalizationEngine) -> Self {
        WebFacade {
            engine: Arc::new(engine),
        }
    }

    /// Wraps an engine that is already shared elsewhere.
    pub fn from_shared(engine: Arc<PersonalizationEngine>) -> Self {
        WebFacade { engine }
    }

    /// Access to the wrapped engine (registration, rules, parameters —
    /// every engine method takes `&self`).
    pub fn engine(&self) -> &PersonalizationEngine {
        &self.engine
    }

    /// Dispatches one request, never panicking: failures become
    /// [`WebResponse::Error`]. Callable from any number of threads.
    pub fn handle(&self, request: WebRequest) -> WebResponse {
        match self.try_handle(request) {
            Ok(response) => response,
            Err(CoreError::Overloaded {
                class,
                in_flight,
                limit,
            }) => {
                let retry_after_hint_micros = self.engine.retry_after_hint_micros(&class);
                WebResponse::Overloaded {
                    class,
                    in_flight,
                    limit,
                    retry_after_hint_micros,
                }
            }
            Err(error) => WebResponse::Error {
                message: error.to_string(),
            },
        }
    }

    fn try_handle(&self, request: WebRequest) -> Result<WebResponse, CoreError> {
        match request {
            WebRequest::Login {
                user,
                location,
                class,
            } => {
                let location =
                    location.map(|(x, y)| LocationContext::at_point("reported by browser", x, y));
                let handle =
                    self.engine
                        .start_session_classed(&user, location, class.as_deref())?;
                Ok(WebResponse::LoggedIn {
                    session: handle.id,
                    report: handle.report,
                })
            }
            WebRequest::SpatialSelection {
                session,
                element,
                expression,
            } => {
                let report = self.engine.record_spatial_selection(
                    session,
                    &element,
                    expression.as_deref(),
                )?;
                Ok(WebResponse::SelectionRecorded {
                    rules_matched: report.rules_matched,
                })
            }
            WebRequest::Aggregate {
                session,
                fact,
                measure,
                group_by,
                deadline_micros,
            } => {
                let mut query = Query::over(fact).measure(measure);
                for (dimension, level, attribute) in group_by {
                    query = query.group_by(AttributeRef::new(dimension, level, attribute));
                }
                let deadline = deadline_micros.map(std::time::Duration::from_micros);
                let result = self.engine.query_with_deadline(session, &query, deadline)?;
                let (columns, rows) = render_table(&result);
                Ok(WebResponse::Table {
                    columns,
                    rows,
                    facts_matched: result.facts_matched,
                })
            }
            WebRequest::QueryBatch {
                session,
                queries,
                deadline_micros,
            } => {
                let deadline = deadline_micros.map(std::time::Duration::from_micros);
                let results = self
                    .engine
                    .query_batch_with_deadline(session, &queries, deadline)?
                    .into_iter()
                    .map(|result| match result {
                        Ok(result) => {
                            let (columns, rows) = render_table(&result);
                            BatchEntry::Table {
                                columns,
                                rows,
                                facts_matched: result.facts_matched,
                            }
                        }
                        Err(error) => BatchEntry::Error {
                            message: error.to_string(),
                        },
                    })
                    .collect();
                Ok(WebResponse::BatchResult { results })
            }
            WebRequest::Report { session } => {
                // Rebuild a lightweight report from the current session view
                // against a consistent cube snapshot.
                let view = self.engine.session_view(session)?;
                let user = self.engine.session(session)?.user_id;
                let cube = self.engine.cube();
                let mut visible = std::collections::BTreeMap::new();
                let mut totals = std::collections::BTreeMap::new();
                for fact in &cube.schema().facts {
                    // Live rows only, matching `visible_fact_count`.
                    totals.insert(
                        fact.name.clone(),
                        cube.fact_table(&fact.name)?.table.live_len(),
                    );
                    visible.insert(
                        fact.name.clone(),
                        view.visible_fact_count(&cube, &fact.name)?,
                    );
                }
                Ok(WebResponse::Report(Box::new(PersonalizationReport {
                    user,
                    rules_matched: 0,
                    rules_with_effects: Vec::new(),
                    schema_diff: self.engine.schema_diff(),
                    selected_members: Default::default(),
                    visible_facts: visible,
                    total_facts: totals,
                })))
            }
            WebRequest::CacheStats => {
                let stats = self.engine.cache_stats();
                Ok(WebResponse::CacheStats {
                    hits: stats.hits,
                    misses: stats.misses,
                    entries: stats.entries,
                    invalidations: stats.invalidations,
                    evictions: stats.evictions,
                })
            }
            WebRequest::DictCacheStats => {
                let stats = self.engine.dict_cache_stats();
                Ok(WebResponse::DictCacheStats {
                    hits: stats.hits,
                    misses: stats.misses,
                    entries: stats.entries,
                    invalidations: stats.invalidations,
                })
            }
            WebRequest::Metrics => Ok(WebResponse::Metrics {
                snapshot: self.engine.metrics_snapshot(),
            }),
            WebRequest::MetricsText => Ok(WebResponse::MetricsText {
                body: self.engine.metrics_snapshot().render_prometheus(),
            }),
            WebRequest::Ingest { batch } => {
                // First ingest request starts the pipeline with defaults;
                // operators wanting explicit policies call
                // `engine().start_ingest` beforehand.
                let handle = self.engine.start_ingest(IngestConfig::default());
                let deltas = batch.len();
                handle
                    .try_submit(batch)
                    .map_err(|error| CoreError::Ingest {
                        message: error.to_string(),
                    })?;
                Ok(WebResponse::IngestAccepted { deltas })
            }
            WebRequest::IngestStats => {
                let stats = self.engine.ingest_stats().unwrap_or_default();
                Ok(WebResponse::IngestStats {
                    batches_submitted: stats.batches_submitted,
                    batches_rejected: stats.batches_rejected,
                    batches_applied: stats.batches_applied,
                    batches_failed: stats.batches_failed,
                    rows_appended: stats.rows_appended,
                    cells_upserted: stats.cells_upserted,
                    rows_retracted: stats.rows_retracted,
                    epochs_published: stats.epochs_published,
                    last_generation: stats.last_generation,
                    compactions: stats.compactions,
                    queue_depth: stats.queue_depth,
                    worker_restarts: stats.worker_restarts,
                    last_heartbeat_micros: stats.last_heartbeat_micros,
                    worker_down: stats.worker_down,
                    fact_tables: stats.fact_tables,
                })
            }
            WebRequest::PinGeneration {
                session,
                generation,
            } => {
                let generation = self.engine.pin_session_generation(session, generation)?;
                Ok(WebResponse::GenerationPinned { generation })
            }
            WebRequest::ReloadRules { rules } => {
                let classes = self.engine.reload_rules_text(&rules)?;
                Ok(WebResponse::RulesReloaded { classes })
            }
            WebRequest::Logout { session } => {
                self.engine.end_session(session)?;
                Ok(WebResponse::LoggedOut)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdwp_datagen::{PaperScenario, ScenarioConfig};
    use sdwp_prml::corpus::ALL_PAPER_RULES;
    use std::sync::Arc;

    fn facade() -> WebFacade {
        let scenario = PaperScenario::generate(ScenarioConfig::tiny());
        let engine = PersonalizationEngine::with_layer_source(
            scenario.cube.clone(),
            Arc::new(scenario.layer_source()),
        );
        engine.register_user(scenario.manager.clone());
        engine.set_parameter("threshold", 2.0);
        for rule in ALL_PAPER_RULES {
            engine.add_rules_text(rule).unwrap();
        }
        WebFacade::new(engine)
    }

    fn login(facade: &WebFacade) -> SessionId {
        match facade.handle(WebRequest::Login {
            user: "regional-manager".into(),
            location: Some((50.0, 50.0)),
            class: None,
        }) {
            WebResponse::LoggedIn { session, report } => {
                assert!(report.rules_matched > 0);
                session
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn full_web_session_flow() {
        let facade = facade();
        let session = login(&facade);

        // Aggregate by city through the personalized view.
        let response = facade.handle(WebRequest::Aggregate {
            session,
            fact: "Sales".into(),
            measure: "UnitSales".into(),
            group_by: vec![("Store".into(), "City".into(), "name".into())],
            deadline_micros: None,
        });
        match response {
            WebResponse::Table { columns, .. } => {
                assert_eq!(columns[0], "Store.City.name");
                assert!(columns[1].contains("UnitSales"));
            }
            other => panic!("unexpected response {other:?}"),
        }

        // Record selections and fetch the report.
        match facade.handle(WebRequest::SpatialSelection {
            session,
            element: "GeoMD.Store.City".into(),
            expression: None,
        }) {
            WebResponse::SelectionRecorded { rules_matched } => assert_eq!(rules_matched, 1),
            other => panic!("unexpected response {other:?}"),
        }
        match facade.handle(WebRequest::Report { session }) {
            WebResponse::Report(report) => {
                assert_eq!(report.user, "regional-manager");
                assert!(report.total_facts.contains_key("Sales"));
            }
            other => panic!("unexpected response {other:?}"),
        }

        // Logout, after which the session is unusable.
        assert_eq!(
            facade.handle(WebRequest::Logout { session }),
            WebResponse::LoggedOut
        );
        match facade.handle(WebRequest::SpatialSelection {
            session,
            element: "GeoMD.Store.City".into(),
            expression: None,
        }) {
            WebResponse::Error { message } => assert!(message.contains("session")),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn repeated_aggregates_hit_the_result_cache() {
        let facade = facade();
        let session = login(&facade);
        let aggregate = WebRequest::Aggregate {
            session,
            fact: "Sales".into(),
            measure: "UnitSales".into(),
            group_by: vec![("Store".into(), "City".into(), "name".into())],
            deadline_micros: None,
        };
        let first = facade.handle(aggregate.clone());
        let second = facade.handle(aggregate);
        assert_eq!(first, second);
        match facade.handle(WebRequest::CacheStats) {
            WebResponse::CacheStats { hits, entries, .. } => {
                assert!(hits >= 1, "repeat aggregate should hit, got {hits} hits");
                assert!(entries >= 1);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn ingest_requests_stream_deltas_into_the_warehouse() {
        let facade = facade();
        // Stats before any ingestion: all zeros, no pipeline running.
        match facade.handle(WebRequest::IngestStats) {
            WebResponse::IngestStats {
                batches_submitted,
                epochs_published,
                ..
            } => assert_eq!((batches_submitted, epochs_published), (0, 0)),
            other => panic!("unexpected response {other:?}"),
        }
        let batch = DeltaBatch::new().append(
            "Sales",
            vec![
                ("Store", 0usize),
                ("Customer", 0usize),
                ("Product", 0usize),
                ("Time", 0usize),
            ],
            vec![("UnitSales", CellValue::Float(3.0))],
        );
        match facade.handle(WebRequest::Ingest { batch }) {
            WebResponse::IngestAccepted { deltas } => assert_eq!(deltas, 1),
            other => panic!("unexpected response {other:?}"),
        }
        // Drain deterministically, then read the counters.
        let generation = facade
            .engine()
            .ingest_handle()
            .expect("first Ingest request started the pipeline")
            .flush()
            .unwrap();
        assert!(generation > 0);
        match facade.handle(WebRequest::IngestStats) {
            WebResponse::IngestStats {
                batches_applied,
                rows_appended,
                epochs_published,
                last_generation,
                ..
            } => {
                assert_eq!((batches_applied, rows_appended), (1, 1));
                assert!(epochs_published >= 1);
                assert_eq!(last_generation, generation);
            }
            other => panic!("unexpected response {other:?}"),
        }
        // An invalid batch is accepted into the queue but fails to apply.
        let bad = DeltaBatch::new().retract("Sales", 999_999);
        assert!(matches!(
            facade.handle(WebRequest::Ingest { batch: bad }),
            WebResponse::IngestAccepted { .. }
        ));
        facade.engine().ingest_handle().unwrap().flush().unwrap();
        match facade.handle(WebRequest::IngestStats) {
            WebResponse::IngestStats { batches_failed, .. } => assert_eq!(batches_failed, 1),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn query_batch_answers_panels_positionally() {
        let facade = facade();
        let session = login(&facade);
        let by_city = Query::over("Sales")
            .measure("UnitSales")
            .group_by(AttributeRef::new("Store", "City", "name"));
        let total = Query::over("Sales").measure("UnitSales");
        let broken = Query::over("Sales").measure("NoSuchMeasure");
        let response = facade.handle(WebRequest::QueryBatch {
            session,
            queries: vec![by_city.clone(), broken, total],
            deadline_micros: None,
        });
        let results = match response {
            WebResponse::BatchResult { results } => results,
            other => panic!("unexpected response {other:?}"),
        };
        assert_eq!(results.len(), 3);
        // The first entry matches the single-query Aggregate rendering.
        let single = facade.handle(WebRequest::Aggregate {
            session,
            fact: "Sales".into(),
            measure: "UnitSales".into(),
            group_by: vec![("Store".into(), "City".into(), "name".into())],
            deadline_micros: None,
        });
        match (&results[0], single) {
            (
                BatchEntry::Table {
                    columns,
                    rows,
                    facts_matched,
                },
                WebResponse::Table {
                    columns: single_columns,
                    rows: single_rows,
                    facts_matched: single_matched,
                },
            ) => {
                assert_eq!(columns, &single_columns);
                assert_eq!(rows, &single_rows);
                assert_eq!(facts_matched, &single_matched);
            }
            other => panic!("unexpected pairing {other:?}"),
        }
        // The broken panel fails alone; its neighbour still answers.
        match &results[1] {
            BatchEntry::Error { message } => assert!(message.contains("NoSuchMeasure")),
            other => panic!("unexpected entry {other:?}"),
        }
        assert!(matches!(&results[2], BatchEntry::Table { .. }));
    }

    #[test]
    fn batch_hits_result_and_dictionary_caches() {
        let facade = facade();
        let session = login(&facade);
        let by_city = Query::over("Sales")
            .measure("UnitSales")
            .group_by(AttributeRef::new("Store", "City", "name"));
        let by_city_cost = Query::over("Sales")
            .measure("StoreCost")
            .group_by(AttributeRef::new("Store", "City", "name"));
        // Warm one of the two panels through the single-query path.
        assert!(matches!(
            facade.handle(WebRequest::Aggregate {
                session,
                fact: "Sales".into(),
                measure: "UnitSales".into(),
                group_by: vec![("Store".into(), "City".into(), "name".into())],
                deadline_micros: None,
            }),
            WebResponse::Table { .. }
        ));
        let before = facade.engine().cache_stats();
        let response = facade.handle(WebRequest::QueryBatch {
            session,
            queries: vec![by_city.clone(), by_city_cost.clone()],
            deadline_micros: None,
        });
        assert!(matches!(response, WebResponse::BatchResult { .. }));
        let after = facade.engine().cache_stats();
        // The warmed panel hit; only the other was executed and inserted.
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses + 1);
        assert_eq!(after.entries, before.entries + 1);
        // Both panels group by the same attribute: the dictionary built
        // for the warming query was shared, so the cache shows reuse.
        let dicts = facade.engine().dict_cache_stats();
        assert!(dicts.hits >= 1, "dictionary reused across batch members");
        // Re-running the whole batch answers everything from the cache.
        let again = facade.handle(WebRequest::QueryBatch {
            session,
            queries: vec![by_city, by_city_cost],
            deadline_micros: None,
        });
        assert_eq!(response, again);
        assert_eq!(facade.engine().cache_stats().hits, after.hits + 2);
    }

    #[test]
    fn errors_become_error_responses() {
        let facade = facade();
        match facade.handle(WebRequest::Login {
            user: "nobody".into(),
            location: None,
            class: None,
        }) {
            WebResponse::Error { message } => assert!(message.contains("nobody")),
            other => panic!("unexpected response {other:?}"),
        }
        match facade.handle(WebRequest::Aggregate {
            session: 77,
            fact: "Sales".into(),
            measure: "UnitSales".into(),
            group_by: vec![],
            deadline_micros: None,
        }) {
            WebResponse::Error { message } => assert!(message.contains("77")),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn reload_rules_swaps_the_whole_set() {
        let facade = facade();
        assert_eq!(facade.engine().rules().rules().len(), ALL_PAPER_RULES.len());
        // Replace everything with one acquisition rule.
        let replacement = "Rule:countLogins When SessionStart do \
             SetContent(SUS.DecisionMaker.logins, 1) \
             endWhen";
        match facade.handle(WebRequest::ReloadRules {
            rules: replacement.into(),
        }) {
            WebResponse::RulesReloaded { classes } => {
                assert_eq!(classes, vec![sdwp_prml::RuleClass::Acquisition]);
            }
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(facade.engine().rules().rules().len(), 1);
        assert_eq!(facade.engine().compiled_rules().len(), 1);
        // New logins fire the new set: one acquisition rule, no schema
        // personalization any more.
        match facade.handle(WebRequest::Login {
            user: "regional-manager".into(),
            location: None,
            class: None,
        }) {
            WebResponse::LoggedIn { report, .. } => assert_eq!(report.rules_matched, 1),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn failed_reload_leaves_the_in_service_rules_untouched() {
        let facade = facade();
        let before_interpreted = facade.engine().rules();
        let before_compiled = facade.engine().compiled_rules();
        // Three failure modes: parse error, typecheck error, and a rule
        // the compiler rejects up front (unknown model path).
        let attempts = [
            "Rule:broken When SessionStart do", // parse: unterminated
            "Rule:badTarget When SessionStart do \
             SetContent(MD.Sales.Store, 1) endWhen", // check: non-SUS target
            "Rule:badPath When SessionStart do \
             If (MD.NoSuchFact.Level.name = 'x') then \
             AddLayer('Airport', POINT) endIf endWhen", // unknown path
        ];
        for attempt in attempts {
            match facade.handle(WebRequest::ReloadRules {
                rules: attempt.into(),
            }) {
                WebResponse::Error { .. } => {}
                other => panic!("reload of {attempt:?} should fail, got {other:?}"),
            }
            // The in-service pair is byte-for-byte the one from before.
            assert!(Arc::ptr_eq(&before_interpreted, &facade.engine().rules()));
            assert!(Arc::ptr_eq(
                &before_compiled,
                &facade.engine().compiled_rules()
            ));
        }
        // And it still serves logins exactly as before.
        let session = login(&facade);
        assert_eq!(
            facade.handle(WebRequest::Logout { session }),
            WebResponse::LoggedOut
        );
    }

    #[test]
    fn messages_serialize_round_trip() {
        let request = WebRequest::Login {
            user: "regional-manager".into(),
            location: Some((1.0, 2.0)),
            class: Some("dashboard".into()),
        };
        let json = serde_json_like(&request);
        assert!(json.contains("regional-manager"));
    }

    /// Minimal check that serde derives work (serialising through the
    /// `serde` test shim: Debug formatting plus a round trip through the
    /// `serde` data model using `serde::Serialize` into a string).
    fn serde_json_like<T: serde::Serialize + std::fmt::Debug>(value: &T) -> String {
        format!("{value:?}")
    }
}
