//! The personalization engine: the executable version of the paper's Fig. 1
//! process.

use crate::error::CoreError;
use crate::report::PersonalizationReport;
use crate::session::{SessionManager, SessionState};
use sdwp_model::{Schema, SchemaDiff};
use sdwp_olap::{Cube, InstanceView, Query, QueryEngine, QueryResult};
use sdwp_prml::{
    check_rules, EvalContext, FireReport, LayerSource, NoExternalLayers, Rule, RuleClass,
    RuleEngine, RuntimeEvent,
};
use sdwp_user::{LocationContext, ProfileStore, Session, SessionId, UserProfile};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A handle to a started session: the id plus the report of what the
/// personalization rules did at session start.
#[derive(Debug, Clone)]
pub struct SessionHandle {
    /// The session id (use it for queries, selections and logout).
    pub id: SessionId,
    /// What happened when the session-start rules fired.
    pub report: PersonalizationReport,
}

/// The personalization engine.
///
/// One engine instance serves one spatial data warehouse (one [`Cube`]) and
/// any number of users and sessions. Schema personalization mutates the
/// engine's cube schema (additively — layers and spatial levels only grow),
/// while instance personalization is kept per session in an
/// [`InstanceView`], so different decision makers can hold different
/// selections concurrently.
pub struct PersonalizationEngine {
    cube: Cube,
    original_schema: Schema,
    profiles: ProfileStore,
    rules: RuleEngine,
    parameters: BTreeMap<String, f64>,
    layer_source: Arc<dyn LayerSource + Send + Sync>,
    sessions: SessionManager,
    query_engine: QueryEngine,
}

impl PersonalizationEngine {
    /// Creates an engine over a cube, with no external layer source.
    pub fn new(cube: Cube) -> Self {
        PersonalizationEngine::with_layer_source(cube, Arc::new(NoExternalLayers))
    }

    /// Creates an engine over a cube with an external layer source (the
    /// provider of airport / train / … layer instances).
    pub fn with_layer_source(cube: Cube, layer_source: Arc<dyn LayerSource + Send + Sync>) -> Self {
        let original_schema = cube.schema().clone();
        PersonalizationEngine {
            cube,
            original_schema,
            profiles: ProfileStore::new(),
            rules: RuleEngine::new(),
            parameters: BTreeMap::new(),
            layer_source,
            sessions: SessionManager::new(),
            query_engine: QueryEngine::new(),
        }
    }

    /// Registers (or replaces) a decision maker's profile.
    pub fn register_user(&mut self, profile: UserProfile) {
        self.profiles.upsert(profile);
    }

    /// The profile store (shared, thread-safe).
    pub fn profiles(&self) -> &ProfileStore {
        &self.profiles
    }

    /// Adds PRML rules from text, validating them (as a set, together with
    /// the already-registered rules) against the cube's schema.
    pub fn add_rules_text(&mut self, text: &str) -> Result<Vec<RuleClass>, CoreError> {
        let new_rules = sdwp_prml::parse_rules(text)?;
        let existing = self.rules.rules().len();
        let mut all: Vec<Rule> = self.rules.rules().to_vec();
        all.extend(new_rules.iter().cloned());
        let classes = check_rules(&all, self.cube.schema())?;
        for rule in new_rules {
            self.rules.add_rule(rule);
        }
        Ok(classes[existing..].to_vec())
    }

    /// Defines a designer parameter referenced by rules (e.g. `threshold`).
    pub fn set_parameter(&mut self, name: impl Into<String>, value: f64) {
        self.parameters.insert(name.into().to_lowercase(), value);
    }

    /// The registered rules.
    pub fn rules(&self) -> &[Rule] {
        self.rules.rules()
    }

    /// The current (possibly personalized) cube.
    pub fn cube(&self) -> &Cube {
        &self.cube
    }

    /// The schema as it was before any personalization.
    pub fn original_schema(&self) -> &Schema {
        &self.original_schema
    }

    /// The difference between the original MD schema and the current
    /// (personalized) GeoMD schema — i.e. what the schema rules did.
    pub fn schema_diff(&self) -> SchemaDiff {
        SchemaDiff::between(&self.original_schema, self.cube.schema())
    }

    /// Starts an analysis session for a registered user, firing the
    /// SessionStart rules (schema personalization first, then instance
    /// selection) and building the session's personalized view.
    pub fn start_session(
        &mut self,
        user_id: &str,
        location: Option<LocationContext>,
    ) -> Result<SessionHandle, CoreError> {
        let id = self.sessions.allocate_id();
        let session = match location {
            Some(loc) => Session::start_at(id, user_id, loc),
            None => Session::start(id, user_id),
        };
        let mut state = SessionState::new(session);
        let report = self.fire_event(user_id, &state.session, &RuntimeEvent::SessionStart)?;
        Self::apply_selection_effects(&report, &mut state.view);
        state.effects.extend(report.effects.iter().cloned());
        let personalization_report = self.build_report(user_id, &state, &report)?;
        self.sessions.insert(state);
        Ok(SessionHandle {
            id,
            report: personalization_report,
        })
    }

    /// Records that the user of a session selected instances of a GeoMD
    /// element under a spatial condition (the SpatialSelection tracking
    /// event), firing the matching acquisition rules.
    pub fn record_spatial_selection(
        &mut self,
        session_id: SessionId,
        element: &str,
        expression: Option<&str>,
    ) -> Result<FireReport, CoreError> {
        let (user_id, session_snapshot) = {
            let state = self.sessions.get_mut(session_id)?;
            if !state.is_active() {
                return Err(CoreError::UnknownSession {
                    session: session_id,
                });
            }
            state.session.record_spatial_selection(
                element,
                expression.unwrap_or_default(),
            );
            (state.session.user_id.clone(), state.session.clone())
        };
        let event = RuntimeEvent::SpatialSelection {
            element: element.to_string(),
            expression: expression.map(str::to_string),
        };
        let report = self.fire_event(&user_id, &session_snapshot, &event)?;
        let state = self.sessions.get_mut(session_id)?;
        Self::apply_selection_effects(&report, &mut state.view);
        state.effects.extend(report.effects.iter().cloned());
        Ok(report)
    }

    /// Ends a session, firing the SessionEnd rules.
    pub fn end_session(&mut self, session_id: SessionId) -> Result<FireReport, CoreError> {
        let (user_id, session_snapshot) = {
            let state = self.sessions.get_mut(session_id)?;
            state.session.end();
            (state.session.user_id.clone(), state.session.clone())
        };
        let report = self.fire_event(&user_id, &session_snapshot, &RuntimeEvent::SessionEnd)?;
        let state = self.sessions.get_mut(session_id)?;
        state.effects.extend(report.effects.iter().cloned());
        Ok(report)
    }

    /// Executes an OLAP query through a session's personalized view.
    pub fn query(
        &self,
        session_id: SessionId,
        query: &Query,
    ) -> Result<QueryResult, CoreError> {
        let state = self.sessions.get(session_id)?;
        if !state.is_active() {
            return Err(CoreError::UnknownSession {
                session: session_id,
            });
        }
        Ok(self
            .query_engine
            .execute_with_view(&self.cube, query, &state.view)?)
    }

    /// Executes an OLAP query against the full, unpersonalized cube
    /// (the baseline the paper's approach avoids exposing to users).
    pub fn query_unpersonalized(&self, query: &Query) -> Result<QueryResult, CoreError> {
        Ok(self.query_engine.execute(&self.cube, query)?)
    }

    /// The personalized view of a session.
    pub fn session_view(&self, session_id: SessionId) -> Result<&InstanceView, CoreError> {
        Ok(&self.sessions.get(session_id)?.view)
    }

    /// The SUS session object of a session.
    pub fn session(&self, session_id: SessionId) -> Result<&Session, CoreError> {
        Ok(&self.sessions.get(session_id)?.session)
    }

    /// The profile of a registered user (a clone of the stored state).
    pub fn user_profile(&self, user_id: &str) -> Result<UserProfile, CoreError> {
        Ok(self.profiles.get(user_id)?)
    }

    // ----- internals ----------------------------------------------------

    /// Fires an event for a user: loads the profile, builds an evaluation
    /// context over the engine's cube, runs the rules and writes the
    /// (possibly updated) profile back.
    fn fire_event(
        &mut self,
        user_id: &str,
        session: &Session,
        event: &RuntimeEvent,
    ) -> Result<FireReport, CoreError> {
        let mut profile = self.profiles.get(user_id)?;
        let layer_source = Arc::clone(&self.layer_source);
        let mut ctx = EvalContext::new(&mut self.cube, &mut profile)
            .with_session(session)
            .with_layer_source(layer_source.as_ref());
        for (name, value) in &self.parameters {
            ctx = ctx.with_parameter(name.clone(), *value);
        }
        let report = self.rules.fire(event, &mut ctx)?;
        drop(ctx);
        self.profiles.upsert(profile);
        Ok(report)
    }

    /// Applies the SelectInstance effects of a fire report to a view:
    /// each rule's selection restricts the view conjunctively.
    fn apply_selection_effects(report: &FireReport, view: &mut InstanceView) {
        for effect in &report.effects {
            for (dimension, members) in &effect.selections {
                if let Some(fact) = dimension.strip_prefix("__fact__") {
                    view.select_fact_rows(fact.to_string(), members.iter().copied());
                } else {
                    view.select_dimension_members(dimension.clone(), members.iter().copied());
                }
            }
        }
    }

    fn build_report(
        &self,
        user_id: &str,
        state: &SessionState,
        fire: &FireReport,
    ) -> Result<PersonalizationReport, CoreError> {
        let mut visible_facts = BTreeMap::new();
        let mut total_facts = BTreeMap::new();
        for fact in &self.cube.schema().facts {
            let total = self.cube.fact_table(&fact.name)?.table.len();
            let visible = state.view.visible_fact_count(&self.cube, &fact.name)?;
            total_facts.insert(fact.name.clone(), total);
            visible_facts.insert(fact.name.clone(), visible);
        }
        Ok(PersonalizationReport {
            user: user_id.to_string(),
            rules_matched: fire.rules_matched,
            rules_with_effects: fire
                .effects
                .iter()
                .filter(|e| {
                    e.changed_schema() || e.selected_instances() || e.set_contents > 0
                })
                .map(|e| e.rule.clone())
                .collect(),
            schema_diff: self.schema_diff(),
            selected_members: fire
                .effects
                .iter()
                .flat_map(|e| e.selections.iter())
                .map(|(dim, rows)| (dim.clone(), rows.len()))
                .collect(),
            visible_facts,
            total_facts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdwp_datagen::{PaperScenario, ScenarioConfig};
    use sdwp_olap::AttributeRef;
    use sdwp_prml::corpus::*;

    fn engine() -> (PersonalizationEngine, PaperScenario) {
        let scenario = PaperScenario::generate(ScenarioConfig::tiny());
        let layer_source = Arc::new(scenario.layer_source());
        let mut engine =
            PersonalizationEngine::with_layer_source(scenario.cube.clone(), layer_source);
        engine.register_user(scenario.manager.clone());
        engine.set_parameter("threshold", 2.0);
        for rule in ALL_PAPER_RULES {
            engine.add_rules_text(rule).unwrap();
        }
        (engine, scenario)
    }

    /// A location right next to the first store, so the 5 km instance rule
    /// always selects at least one store.
    fn near_first_store(scenario: &PaperScenario) -> LocationContext {
        let store = &scenario.retail.stores[0];
        LocationContext::at_point("office", store.location.x() + 0.5, store.location.y())
    }

    #[test]
    fn session_start_personalizes_schema_and_instances() {
        let (mut engine, scenario) = engine();
        let handle = engine
            .start_session("regional-manager", Some(near_first_store(&scenario)))
            .unwrap();
        // Schema personalization (rule 5.1): Airport layer + spatial Store.
        let diff = engine.schema_diff();
        assert!(diff
            .added_layers
            .iter()
            .any(|(name, _)| name == "Airport"));
        assert!(diff
            .levels_become_spatial
            .iter()
            .any(|(_, level, _)| level == "Store"));
        // Instance personalization (rule 5.2): the Store dimension is
        // restricted in the session view.
        let view = engine.session_view(handle.id).unwrap();
        assert!(!view.is_unrestricted());
        assert!(handle.report.rules_matched >= 3);
    }

    #[test]
    fn queries_through_the_view_see_fewer_facts() {
        let (mut engine, scenario) = engine();
        let handle = engine
            .start_session("regional-manager", Some(near_first_store(&scenario)))
            .unwrap();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales");
        let personalized = engine.query(handle.id, &query).unwrap();
        let full = engine.query_unpersonalized(&query).unwrap();
        assert!(personalized.facts_scanned <= full.facts_scanned);
        assert!(personalized.column_total(0) <= full.column_total(0) + 1e-9);
    }

    #[test]
    fn interest_tracking_across_sessions() {
        let (mut engine, scenario) = engine();
        let handle = engine
            .start_session("regional-manager", Some(near_first_store(&scenario)))
            .unwrap();
        // The user repeatedly selects cities near airports.
        for _ in 0..3 {
            engine
                .record_spatial_selection(handle.id, "GeoMD.Store.City", None)
                .unwrap();
        }
        let profile = engine.user_profile("regional-manager").unwrap();
        assert_eq!(profile.interest("AirportCity").unwrap().degree, 3.0);
        engine.end_session(handle.id).unwrap();
        // The next session start exceeds the threshold: the Train layer is
        // added by rule TrainAirportCity.
        let second = engine
            .start_session("regional-manager", Some(near_first_store(&scenario)))
            .unwrap();
        assert!(engine.cube().schema().layer("Train").is_some());
        assert!(second
            .report
            .schema_diff
            .added_layers
            .iter()
            .any(|(name, _)| name == "Train"));
    }

    #[test]
    fn unknown_users_and_sessions_error() {
        let (mut engine, _scenario) = engine();
        assert!(engine.start_session("ghost", None).is_err());
        assert!(engine.session_view(99).is_err());
        assert!(engine
            .record_spatial_selection(99, "GeoMD.Store.City", None)
            .is_err());
        assert!(engine.end_session(99).is_err());
        let query = Query::over("Sales").measure("UnitSales");
        assert!(engine.query(99, &query).is_err());
    }

    #[test]
    fn rules_are_validated_on_registration() {
        let scenario = PaperScenario::generate(ScenarioConfig::tiny());
        let mut engine = PersonalizationEngine::new(scenario.cube.clone());
        let err = engine
            .add_rules_text(
                "Rule:bad When SessionStart do \
                 If (MD.Sales.Warehouse.name = 'x') then AddLayer('A', POINT) endIf endWhen",
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Rule(_)));
        assert!(engine.rules().is_empty());
    }

    #[test]
    fn non_matching_role_gets_no_personalization() {
        let scenario = PaperScenario::generate(ScenarioConfig::tiny());
        let mut engine = PersonalizationEngine::with_layer_source(
            scenario.cube.clone(),
            Arc::new(scenario.layer_source()),
        );
        engine.register_user(sdwp_user::UserProfile::new("analyst", "Ana"));
        engine.set_parameter("threshold", 2.0);
        for rule in ALL_PAPER_RULES {
            engine.add_rules_text(rule).unwrap();
        }
        // The analyst logs in from far outside the sales region.
        let handle = engine
            .start_session(
                "analyst",
                Some(LocationContext::at_point("remote", 5_000.0, 5_000.0)),
            )
            .unwrap();
        // Rule 5.1 did not fire for this role: no schema personalization.
        assert!(engine.schema_diff().added_layers.is_empty());
        assert!(engine.schema_diff().levels_become_spatial.is_empty());
        // Rule 5.2 is role-independent, but no store lies within 5 km of
        // the analyst, so the personalized view hides every fact.
        let view = engine.session_view(handle.id).unwrap();
        assert!(!view.is_unrestricted());
        assert_eq!(
            view.visible_fact_count(engine.cube(), "Sales").unwrap(),
            0
        );
    }
}
