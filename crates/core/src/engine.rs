//! The personalization engine: the executable version of the paper's Fig. 1
//! process, refactored for concurrent multi-session serving.
//!
//! # Concurrency model
//!
//! One engine instance serves one spatial data warehouse and any number of
//! users and sessions **from many threads at once** — every public method
//! takes `&self`, so the engine can sit behind an `Arc` and be shared by a
//! pool of web workers. Internally the state splits three ways:
//!
//! * **Read path (lock-free-ish).** Queries and reports run against an
//!   immutable cube snapshot published through [`ArcSwap`]; they never wait
//!   for rule firing. Per-session state lives in a sharded
//!   [`SessionManager`], so sessions only contend when they hash to the
//!   same shard.
//! * **Write master.** Rule firing needs `&mut Cube` (schema
//!   personalization grows the cube), so a single `Mutex<Cube>` master
//!   copy serialises rule firing. After an event whose effects changed the
//!   schema, the master is cloned once and hot-swapped into the snapshot —
//!   the additive-only personalization of the paper (layers and spatial
//!   levels only grow) makes old snapshots remain valid for readers.
//! * **Rules and parameters.** The rule set is itself an [`ArcSwap`]
//!   snapshot (the Cerberus `ArcSwap<RuleSet>` hot-swap pattern), so rules
//!   can be registered while sessions are live; designer parameters sit
//!   behind a `RwLock`.
//!
//! [`sdwp_user::ProfileStore`] was already thread-safe in the seed; this
//! module makes the rest of the stack match it.

use crate::error::CoreError;
use crate::report::PersonalizationReport;
use crate::session::{SessionManager, SessionState};
use crate::sync::{ArcSwap, VersionedSwap};
use parking_lot::{Mutex, MutexGuard, RwLock};
use sdwp_ingest::{
    BatchOutcome, CompactionOutcome, CompactionPolicy, CubeSink, DeltaBatch, IngestConfig,
    IngestHandle, IngestPipeline, IngestStats,
};
use sdwp_model::{Schema, SchemaDiff};
use sdwp_obs::{ClassId, MetricsRegistry, MetricsSnapshot, Stage};
use sdwp_olap::{
    AdmissionGuard, AdmitError, CacheKey, CacheStats, CancelToken, Cube, DictCacheStats,
    ExecutionConfig, FactTableStats, GroupDictCache, InstanceView, MorselPool, OlapError,
    PoolConfig, Query, QueryCache, QueryEngine, QueryObs, QueryResult, TenantPolicy,
};
use sdwp_prml::{
    CompiledRuleSet, EvalContext, FireReport, LayerSource, NoExternalLayers, PrmlError, Rule,
    RuleClass, RuleEngine, RuntimeEvent,
};
use sdwp_user::{LocationContext, ProfileStore, Session, SessionId, UserProfile};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The shared cube state: the mutex-guarded write master, the published
/// immutable snapshot and the generation-keyed result cache — everything
/// both write paths (rule firing and streaming ingestion) coordinate
/// through. Held in an `Arc` so the ingest worker thread can keep writing
/// through it with a `'static` handle while the engine serves readers.
pub(crate) struct CubeState {
    /// Write master; rule firing and delta application lock it.
    pub(crate) master: Mutex<Cube>,
    /// Published read snapshot; queries and reports load it. Every publish
    /// bumps the generation, which keys (and invalidates) the result cache.
    pub(crate) snapshot: VersionedSwap<Cube>,
    /// Snapshot-keyed result cache in front of the executor.
    pub(crate) result_cache: QueryCache,
    /// Generation-keyed group-key dictionary cache shared by every query
    /// (and every member of a batch) against a snapshot. Publishes that
    /// provably leave dimension tables untouched (ingest epochs, fact
    /// compaction) advance its generation and keep the dictionaries;
    /// schema-personalizing publishes flush it.
    pub(crate) dict_cache: GroupDictCache,
    /// The session manager, shared with the engine: compaction remaps
    /// every open session's fact-row selections right after publishing a
    /// rewritten table, keeping stored views on the version-aligned fast
    /// path.
    pub(crate) sessions: Arc<SessionManager>,
    /// Compaction versions observed by in-flight rule firings whose
    /// selection effects have not been applied to a session view yet.
    /// Together with the stored views' selection versions, this is the
    /// floor below which no remap-chain transition can be referenced any
    /// more — what lets compaction trim the chain instead of growing it
    /// forever.
    pub(crate) version_pins: VersionPins,
    /// The metrics registry both write paths record ingest-stage spans
    /// into (shared with the engine, which records the query/rule/session
    /// stages). Ingest always records under the default class — epochs
    /// serve every tenant.
    pub(crate) metrics: Arc<MetricsRegistry>,
    /// Remap floors registered by external id-addressed producers, keyed
    /// `(producer, fact) → anchored compaction version`. The compaction
    /// trimmer never drops transitions below the per-fact minimum, so a
    /// producer that lags behind the compaction cadence can still
    /// translate its stale row ids instead of failing with
    /// `ProducerLagged`.
    pub(crate) producer_floors: Mutex<BTreeMap<(String, String), u64>>,
}

/// Number of independently locked pin shards. Matches the session
/// manager's shard count: pins are taken per query / per firing, so the
/// same fan-out that decontends session lookup decontends pinning.
const PIN_SHARDS: usize = 16;

/// Tracks the fact-table compaction versions in-flight rule firings
/// observed (under the master lock) until their `SelectInstance` effects
/// are applied to a session view. [`CubeState::maybe_compact`] takes the
/// minimum over these pins when deciding how far the remap chain can be
/// trimmed, so a firing's row ids can always be translated forward no
/// matter how many compactions interleave before the effects land.
///
/// Sharded by pin token (like the session map): `pin` / `release` touch
/// one shard's lock, so concurrent queries on the shared worker pool no
/// longer serialise on a single global mutex; only the compaction-side
/// `min_for` — rare by comparison — walks all shards.
pub(crate) struct VersionPins {
    next: std::sync::atomic::AtomicU64,
    shards: Vec<Mutex<BTreeMap<u64, BTreeMap<String, u64>>>>,
}

impl Default for VersionPins {
    fn default() -> Self {
        VersionPins {
            next: std::sync::atomic::AtomicU64::new(0),
            shards: (0..PIN_SHARDS)
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect(),
        }
    }
}

impl VersionPins {
    fn shard(&self, token: u64) -> &Mutex<BTreeMap<u64, BTreeMap<String, u64>>> {
        &self.shards[(token as usize) % self.shards.len()]
    }

    /// Registers a firing's observed versions; returns the pin token.
    fn pin(&self, versions: BTreeMap<String, u64>) -> u64 {
        let token = self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.shard(token).lock().insert(token, versions);
        token
    }

    /// Releases a pin once the firing's effects have been applied.
    fn release(&self, token: u64) {
        self.shard(token).lock().remove(&token);
    }

    /// The oldest pinned version for a fact, when any firing is in
    /// flight. Walks every shard; shard-local minima are combined, which
    /// is exact because the global minimum is the minimum of the shard
    /// minima.
    fn min_for(&self, fact: &str) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(|shard| {
                shard
                    .lock()
                    .values()
                    .filter_map(|versions| versions.get(fact).copied())
                    .min()
            })
            .min()
    }
}

/// RAII release of a firing's version pin: dropped by the caller after
/// the fire report's selection effects have been applied (or abandoned).
pub(crate) struct VersionPinGuard {
    state: Arc<CubeState>,
    token: Option<u64>,
}

impl Drop for VersionPinGuard {
    fn drop(&mut self) {
        if let Some(token) = self.token {
            self.state.version_pins.release(token);
        }
    }
}

/// The ingest side of the engine: batches are applied to the master under
/// its lock (atomically — validate first, then mutate), and epochs publish
/// a master clone through the same [`VersionedSwap`] rule firing uses, so
/// the generation-keyed cache and in-flight queries keep working unchanged.
impl CubeSink for CubeState {
    fn apply_batch(&self, batch: &DeltaBatch) -> Result<BatchOutcome, OlapError> {
        let mut master = self.master.lock();
        let validate = self.metrics.span(Stage::IngestValidate, ClassId::DEFAULT);
        batch.validate(&master)?;
        validate.finish();
        let _apply = self.metrics.span(Stage::IngestApply, ClassId::DEFAULT);
        Ok(batch.apply(&mut master))
    }

    fn publish_epoch(&self, changed_facts: &BTreeSet<String>) -> u64 {
        let _publish = self.metrics.span(Stage::IngestPublish, ClassId::DEFAULT);
        // Hold the master lock across clone, store and cache maintenance
        // so an interleaved rule firing cannot publish in between and have
        // its snapshot (or its cache flush) overtaken by this one.
        let master = self.master.lock();
        let generation = self.snapshot.store(Arc::new(master.clone()));
        // An ingest epoch only changed `changed_facts`' fact tables —
        // dimension tables and the schema are untouched — so cached
        // results over other facts stay valid and are re-keyed instead of
        // flushed.
        self.result_cache.publish(generation, changed_facts);
        // Same proof covers the dictionaries: dimensions are untouched.
        self.dict_cache.advance(generation);
        drop(master);
        generation
    }

    fn maybe_compact(&self, policy: &CompactionPolicy) -> Vec<CompactionOutcome> {
        let mut master = self.master.lock();
        let candidates: Vec<(String, usize, usize)> = master
            .fact_table_stats()
            .into_iter()
            .filter(|s| policy.should_compact(s.total_rows, s.live_rows))
            .map(|s| (s.fact, s.total_rows, s.live_rows))
            .collect();
        let mut outcomes = Vec::new();
        for (fact, rows_before, live_rows) in candidates {
            let _compact = self.metrics.span(Stage::IngestCompact, ClassId::DEFAULT);
            let version_before = master
                .fact_table(&fact)
                .expect("candidate fact exists")
                .compaction_version();
            let remap = master
                .compact_fact_table(&fact)
                .expect("candidate fact exists");
            // Publish the rewritten table, then remap stored session
            // views — in that order, and all under the master lock. A
            // query pairs its view load with a *later* snapshot load, so
            // it either sees (stale view, compacted snapshot), which the
            // remap chain resolves, or (remapped view, compacted
            // snapshot), the aligned fast path; never a remapped view
            // against the pre-compaction snapshot.
            let generation = self.snapshot.store(Arc::new(master.clone()));
            // The rewrite preserves live-row content, but conservatively
            // drop cached results over this fact with the same scoped
            // invalidation an ingest epoch uses.
            let mut changed = BTreeSet::new();
            changed.insert(fact.clone());
            self.result_cache.publish(generation, &changed);
            // Compaction rewrites a fact table; dimension tables — and
            // with them every group-key dictionary — are untouched.
            self.dict_cache.advance(generation);
            self.sessions.remap_fact_rows(&fact, &remap, version_before);
            // Trim the remap chain down to what can still be referenced:
            // stored session views (just remapped to the current version),
            // in-flight firings that observed an older version, and —
            // because external producers following the re-anchor protocol
            // read the chain only after their next flush — always the
            // latest transition. Everything below that floor is
            // unreachable and dropped, so the chain stays bounded under
            // steady compaction.
            let current_version = version_before + 1;
            let producer_floor = self
                .producer_floors
                .lock()
                .iter()
                .filter_map(|((_, floor_fact), version)| (floor_fact == &fact).then_some(*version))
                .min();
            let floor = [
                self.sessions.min_fact_selection_version(&fact),
                self.version_pins.min_for(&fact),
                producer_floor,
                Some(current_version.saturating_sub(1)),
            ]
            .into_iter()
            .flatten()
            .min()
            .expect("floor list is never empty");
            master
                .trim_fact_remaps(&fact, floor)
                .expect("candidate fact exists");
            outcomes.push(CompactionOutcome {
                fact,
                rows_before,
                live_rows,
                generation,
            });
        }
        outcomes
    }

    fn fact_stats(&self) -> Vec<FactTableStats> {
        self.master.lock().fact_table_stats()
    }

    /// Supervisor restart hook: the panicked worker may have applied
    /// batches it never published, and its epoch bookkeeping is gone —
    /// republish the master so nothing applied lingers master-only.
    /// Which facts the lost epoch touched is unknowable, so cached
    /// results over every fact are conservatively invalidated;
    /// dimensions are untouched by ingest, so the dictionaries survive.
    fn on_worker_restart(&self) {
        let master = self.master.lock();
        let generation = self.snapshot.store(Arc::new(master.clone()));
        let changed: BTreeSet<String> = master
            .fact_table_stats()
            .into_iter()
            .map(|stats| stats.fact)
            .collect();
        self.result_cache.publish(generation, &changed);
        self.dict_cache.advance(generation);
    }

    fn set_producer_floor(&self, producer: &str, fact: &str, version: u64) {
        self.producer_floors
            .lock()
            .insert((producer.to_string(), fact.to_string()), version);
    }

    fn clear_producer_floor(&self, producer: &str) {
        self.producer_floors
            .lock()
            .retain(|(floor_producer, _), _| floor_producer != producer);
    }
}

/// How long a read-your-writes query waits for the snapshot to catch up
/// with the session's pinned generation before refusing. Generous against
/// the default epoch interval (50 ms) while still bounding worst-case
/// query latency.
const READ_YOUR_WRITES_WAIT: std::time::Duration = std::time::Duration::from_millis(500);

/// A handle to a started session: the id plus the report of what the
/// personalization rules did at session start.
#[derive(Debug, Clone)]
pub struct SessionHandle {
    /// The session id (use it for queries, selections and logout).
    pub id: SessionId,
    /// What happened when the session-start rules fired.
    pub report: PersonalizationReport,
}

/// The in-service rule set: the AST interpreter (the registration-time
/// source of truth and the differential-testing oracle) paired with its
/// compiled form. Published as *one* `ArcSwap` value so a firing that
/// loaded the pair can never observe a half-swapped state where the
/// interpreter and compiled rules disagree.
struct ActiveRules {
    engine: Arc<RuleEngine>,
    compiled: Arc<CompiledRuleSet>,
}

impl ActiveRules {
    fn empty() -> Self {
        ActiveRules {
            engine: Arc::new(RuleEngine::new()),
            compiled: Arc::new(CompiledRuleSet::default()),
        }
    }
}

/// The personalization engine.
///
/// Schema personalization mutates the engine's cube schema (additively —
/// layers and spatial levels only grow), while instance personalization is
/// kept per session in an [`InstanceView`], so different decision makers
/// hold different selections concurrently. See the module docs for the
/// locking discipline that lets all of this happen through `&self`.
pub struct PersonalizationEngine {
    /// The shared cube state (write master, published snapshot, result
    /// cache) — also the [`CubeSink`] the ingest pipeline writes through.
    cube_state: Arc<CubeState>,
    original_schema: Schema,
    profiles: ProfileStore,
    /// Immutable rule-set snapshot (interpreter + compiled pair),
    /// hot-swapped on registration and reload.
    rules: ArcSwap<ActiveRules>,
    /// Serialises rule registration (load → validate → store).
    rules_write: Mutex<()>,
    /// Whether events fire through the compiled rule path (default) or
    /// the AST interpreter (kept for benchmarking and as the oracle).
    compiled_firing: AtomicBool,
    parameters: RwLock<BTreeMap<String, f64>>,
    layer_source: Arc<dyn LayerSource + Send + Sync>,
    sessions: Arc<SessionManager>,
    query_engine: QueryEngine,
    /// The engine-lifetime morsel worker pool parallel scans run on,
    /// with its tenant scheduler and admission controller. `None` when
    /// the executor is configured for a single worker (everything runs
    /// inline and there is nothing to schedule).
    morsel_pool: Option<Arc<MorselPool>>,
    /// The streaming-ingestion pipeline, started lazily by
    /// [`PersonalizationEngine::start_ingest`]. Shut down (drained,
    /// final epoch published, worker joined) when the engine drops.
    ingest: Mutex<Option<IngestPipeline>>,
    /// The metrics registry every stage span and latency histogram of
    /// this engine records into (shared with [`CubeState`] for the
    /// ingest-side stages). Enabled by default; build the engine with
    /// [`PersonalizationEngine::with_observability`] and
    /// [`MetricsRegistry::disabled`] to opt out entirely.
    metrics: Arc<MetricsRegistry>,
}

impl PersonalizationEngine {
    /// Creates an engine over a cube, with no external layer source.
    pub fn new(cube: Cube) -> Self {
        PersonalizationEngine::with_layer_source(cube, Arc::new(NoExternalLayers))
    }

    /// Creates an engine over a cube with an external layer source (the
    /// provider of airport / train / … layer instances).
    pub fn with_layer_source(cube: Cube, layer_source: Arc<dyn LayerSource + Send + Sync>) -> Self {
        PersonalizationEngine::with_execution_config(cube, layer_source, ExecutionConfig::default())
    }

    /// Creates an engine with an explicit executor configuration (worker
    /// count, morsel size, result-cache capacity). Metrics are recorded
    /// into a fresh enabled registry.
    pub fn with_execution_config(
        cube: Cube,
        layer_source: Arc<dyn LayerSource + Send + Sync>,
        config: ExecutionConfig,
    ) -> Self {
        PersonalizationEngine::with_observability(
            cube,
            layer_source,
            config,
            Arc::new(MetricsRegistry::new()),
        )
    }

    /// Creates an engine with an explicit executor configuration and an
    /// explicit metrics registry — pass [`MetricsRegistry::disabled`] to
    /// run with zero recording cost, or a shared registry to aggregate
    /// several engines into one exposition.
    pub fn with_observability(
        cube: Cube,
        layer_source: Arc<dyn LayerSource + Send + Sync>,
        config: ExecutionConfig,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        let original_schema = cube.schema().clone();
        let snapshot = VersionedSwap::from_pointee(cube.clone());
        let sessions = Arc::new(SessionManager::new());
        // The shared worker pool replaces per-query `thread::scope`
        // spawns: the querying thread always scans, so the pool only
        // needs `workers - 1` long-lived helpers. A one-worker executor
        // runs entirely inline and skips the pool.
        let pool_workers = config.effective_workers().saturating_sub(1);
        let morsel_pool = (pool_workers > 0).then(|| {
            Arc::new(MorselPool::with_registry(
                PoolConfig::default().with_workers(pool_workers),
                Arc::clone(&metrics),
            ))
        });
        let query_engine = match &morsel_pool {
            Some(pool) => QueryEngine::with_pool(config, Arc::clone(pool)),
            None => QueryEngine::with_config(config),
        };
        PersonalizationEngine {
            cube_state: Arc::new(CubeState {
                master: Mutex::new(cube),
                snapshot,
                result_cache: QueryCache::new(config.cache_capacity),
                dict_cache: GroupDictCache::new(),
                sessions: Arc::clone(&sessions),
                version_pins: VersionPins::default(),
                metrics: Arc::clone(&metrics),
                producer_floors: Mutex::new(BTreeMap::new()),
            }),
            original_schema,
            profiles: ProfileStore::new(),
            rules: ArcSwap::from_pointee(ActiveRules::empty()),
            rules_write: Mutex::new(()),
            compiled_firing: AtomicBool::new(true),
            parameters: RwLock::new(BTreeMap::new()),
            layer_source,
            sessions,
            query_engine,
            morsel_pool,
            ingest: Mutex::new(None),
            metrics,
        }
    }

    /// Registers (or replaces) a decision maker's profile.
    pub fn register_user(&self, profile: UserProfile) {
        self.profiles.upsert(profile);
    }

    /// The profile store (shared, thread-safe).
    pub fn profiles(&self) -> &ProfileStore {
        &self.profiles
    }

    /// The session manager (shared, thread-safe).
    pub fn sessions(&self) -> &SessionManager {
        &self.sessions
    }

    /// Adds PRML rules from text, validating and compiling them (as a
    /// set, together with the already-registered rules) against the
    /// cube's schema. Safe to call while sessions are being served:
    /// firing threads keep using the rule-set snapshot they loaded.
    pub fn add_rules_text(&self, text: &str) -> Result<Vec<RuleClass>, CoreError> {
        let new_rules = sdwp_prml::parse_rules(text)?;
        let _guard = self.rules_write.lock();
        let current = self.rules.load();
        let existing = current.engine.rules().len();
        let mut all: Vec<Rule> = current.engine.rules().to_vec();
        all.extend(new_rules.iter().cloned());
        let classes = self.install_rules(all)?;
        Ok(classes[existing..].to_vec())
    }

    /// Replaces the *entire* rule set with the rules parsed from `text`.
    ///
    /// The swap is atomic: in-flight firings keep the interpreter+compiled
    /// pair they loaded, new firings see the new pair, and any parse,
    /// typecheck or compile failure leaves the in-service rule set
    /// untouched and serving.
    pub fn reload_rules_text(&self, text: &str) -> Result<Vec<RuleClass>, CoreError> {
        let rules = sdwp_prml::parse_rules(text)?;
        let _guard = self.rules_write.lock();
        self.install_rules(rules)
    }

    /// Validates, compiles and publishes a full rule set. Caller holds
    /// `rules_write`; on any failure the in-service pair stays untouched.
    fn install_rules(&self, rules: Vec<Rule>) -> Result<Vec<RuleClass>, CoreError> {
        let compiled = {
            let master = self.cube_state.master.lock();
            CompiledRuleSet::compile(&rules, master.schema())?
        };
        let classes = compiled.classes();
        let mut engine = RuleEngine::new();
        for rule in rules {
            engine.add_rule(rule);
        }
        self.rules.store(Arc::new(ActiveRules {
            engine: Arc::new(engine),
            compiled: Arc::new(compiled),
        }));
        Ok(classes)
    }

    /// Defines a designer parameter referenced by rules (e.g. `threshold`).
    pub fn set_parameter(&self, name: impl Into<String>, value: f64) {
        self.parameters
            .write()
            .insert(name.into().to_lowercase(), value);
    }

    /// The current rule-set snapshot (the AST interpreter view).
    pub fn rules(&self) -> Arc<RuleEngine> {
        Arc::clone(&self.rules.load().engine)
    }

    /// The current compiled rule set (the form events fire through by
    /// default).
    pub fn compiled_rules(&self) -> Arc<CompiledRuleSet> {
        Arc::clone(&self.rules.load().compiled)
    }

    /// Chooses between compiled (default) and interpreted rule firing.
    /// The interpreter stays available as the differential-testing oracle
    /// and for benchmark baselines.
    pub fn set_compiled_firing(&self, enabled: bool) {
        self.compiled_firing.store(enabled, Ordering::Release);
    }

    /// Whether events currently fire through the compiled rule path.
    pub fn compiled_firing(&self) -> bool {
        self.compiled_firing.load(Ordering::Acquire)
    }

    /// The current (possibly personalized) cube snapshot. The returned
    /// `Arc` stays consistent however much later rule firing personalizes
    /// the engine further.
    pub fn cube(&self) -> Arc<Cube> {
        self.cube_state.snapshot.load()
    }

    /// The schema as it was before any personalization.
    pub fn original_schema(&self) -> &Schema {
        &self.original_schema
    }

    /// The difference between the original MD schema and the current
    /// (personalized) GeoMD schema — i.e. what the schema rules did.
    pub fn schema_diff(&self) -> SchemaDiff {
        SchemaDiff::between(
            &self.original_schema,
            self.cube_state.snapshot.load().schema(),
        )
    }

    /// Starts an analysis session for a registered user, firing the
    /// SessionStart rules (schema personalization first, then instance
    /// selection) and building the session's personalized view. The
    /// session records latency samples under the default session class.
    pub fn start_session(
        &self,
        user_id: &str,
        location: Option<LocationContext>,
    ) -> Result<SessionHandle, CoreError> {
        self.start_session_classed(user_id, location, None)
    }

    /// [`PersonalizationEngine::start_session`] with an explicit session
    /// class: every latency sample of the session (query stages, totals,
    /// rule firings) is keyed by it in the metrics registry, which is how
    /// per-tenant p50/p99 come out of [`Self::metrics_snapshot`]. The
    /// class name is registered on first use; once [`sdwp_obs::MAX_CLASSES`]
    /// names exist, further names alias to the default class.
    pub fn start_session_classed(
        &self,
        user_id: &str,
        location: Option<LocationContext>,
        class: Option<&str>,
    ) -> Result<SessionHandle, CoreError> {
        let class = class.map_or(ClassId::DEFAULT, |name| self.metrics.register_class(name));
        let _span = self.metrics.span(Stage::SessionStart, class);
        let id = self.sessions.allocate_id();
        let session = match location {
            Some(loc) => Session::start_at(id, user_id, loc),
            None => Session::start(id, user_id),
        };
        let mut state = SessionState::with_class(session, class);
        // The version pin must stay alive until the session is *stored*:
        // between applying the selection effects and `sessions.insert`,
        // the new view's captured compaction version is visible neither
        // through the pins nor through the stored-views floor, and a
        // concurrent compaction could otherwise trim a remap transition
        // the view still needs.
        let (report, fact_versions, _pin) =
            self.fire_event(user_id, &state.session, &RuntimeEvent::SessionStart, class)?;
        self.apply_selection_effects(&report, &fact_versions, &mut state.view);
        state.effects.extend(report.effects.iter().cloned());
        let personalization_report = self.build_report(user_id, &state, &report)?;
        self.sessions.insert(state);
        Ok(SessionHandle {
            id,
            report: personalization_report,
        })
    }

    /// Records that the user of a session selected instances of a GeoMD
    /// element under a spatial condition (the SpatialSelection tracking
    /// event), firing the matching acquisition rules.
    pub fn record_spatial_selection(
        &self,
        session_id: SessionId,
        element: &str,
        expression: Option<&str>,
    ) -> Result<FireReport, CoreError> {
        let (user_id, session_snapshot, class) =
            self.sessions.with_session_mut(session_id, |state| {
                if !state.is_active() {
                    return Err(CoreError::UnknownSession {
                        session: session_id,
                    });
                }
                state
                    .session
                    .record_spatial_selection(element, expression.unwrap_or_default());
                Ok((
                    state.session.user_id.clone(),
                    state.session.clone(),
                    state.class,
                ))
            })??;
        let event = RuntimeEvent::SpatialSelection {
            element: element.to_string(),
            expression: expression.map(str::to_string),
        };
        let (report, fact_versions, pin) =
            self.fire_event(&user_id, &session_snapshot, &event, class)?;
        self.sessions.with_session_mut(session_id, |state| {
            self.apply_selection_effects(&report, &fact_versions, &mut state.view);
            state.effects.extend(report.effects.iter().cloned());
        })?;
        drop(pin);
        Ok(report)
    }

    /// Ends a session, firing the SessionEnd rules. Ending an
    /// already-ended (or unknown) session is an error, so a retried or
    /// concurrently racing logout cannot re-fire the SessionEnd rules.
    ///
    /// The session's state (personalized view, effect log) is reclaimed
    /// once the SessionEnd rules have fired: no later request can reach
    /// an ended session anyway — they all answer `UnknownSession` — and
    /// retaining the state would grow the session map without bound and
    /// pin the compaction remap chain on views nobody can query.
    pub fn end_session(&self, session_id: SessionId) -> Result<FireReport, CoreError> {
        let (user_id, session_snapshot, class) =
            self.sessions.with_session_mut(session_id, |state| {
                if !state.is_active() {
                    return Err(CoreError::UnknownSession {
                        session: session_id,
                    });
                }
                state.session.end();
                Ok((
                    state.session.user_id.clone(),
                    state.session.clone(),
                    state.class,
                ))
            })??;
        let _span = self.metrics.span(Stage::SessionEnd, class);
        let (report, _, _pin) = self.fire_event(
            &user_id,
            &session_snapshot,
            &RuntimeEvent::SessionEnd,
            class,
        )?;
        self.sessions.remove(session_id);
        Ok(report)
    }

    /// Executes an OLAP query through a session's personalized view.
    ///
    /// Runs entirely on snapshots: the session's view is copied out under
    /// its shard lock, the cube is the published [`VersionedSwap`]
    /// snapshot — so queries from many sessions (or threads) run
    /// concurrently and never block rule firing. Results are served from
    /// the generation-keyed cache when the same `(snapshot, query, view)`
    /// triple was executed before; a rule firing that publishes a new
    /// cube bumps the generation and misses every stale entry.
    pub fn query(&self, session_id: SessionId, query: &Query) -> Result<QueryResult, CoreError> {
        self.query_with_deadline(session_id, query, None)
    }

    /// [`PersonalizationEngine::query`] under an explicit per-query
    /// deadline budget (overriding the executor config's default when
    /// given). The budget starts *now* and covers the whole lifecycle —
    /// admission wait, read-your-writes wait and the scan — and an
    /// expiry cancels the query cooperatively with the typed
    /// [`CoreError::DeadlineExceeded`]: no partial state, the result
    /// cache untouched, every admission slot released.
    pub fn query_with_deadline(
        &self,
        session_id: SessionId,
        query: &Query,
        deadline: Option<std::time::Duration>,
    ) -> Result<QueryResult, CoreError> {
        let (active, view, min_generation, class, _pin) =
            self.sessions.with_session(session_id, |state| {
                // Pin the view's fact-selection versions while still under
                // the session shard lock (mutually exclusive with the
                // compaction path's eager remap of this shard): the query
                // keeps this clone of the view — possibly across a
                // read-your-writes wait — and the remap-chain trimmer must
                // not drop transitions the clone still needs. Released when
                // the guard drops after execution.
                let versions: BTreeMap<String, u64> = state
                    .view
                    .fact_selection_versions()
                    .map(|(fact, version)| (fact.to_string(), version))
                    .collect();
                let pin = VersionPinGuard {
                    state: Arc::clone(&self.cube_state),
                    token: (!versions.is_empty())
                        .then(|| self.cube_state.version_pins.pin(versions)),
                };
                (
                    state.is_active(),
                    Arc::clone(&state.view),
                    state.min_generation,
                    state.class,
                    pin,
                )
            })?;
        if !active {
            return Err(CoreError::UnknownSession {
                session: session_id,
            });
        }
        self.query_snapshot(query, view, min_generation, class, deadline)
    }

    /// Executes an OLAP query against the full, unpersonalized cube
    /// (the baseline the paper's approach avoids exposing to users).
    pub fn query_unpersonalized(&self, query: &Query) -> Result<QueryResult, CoreError> {
        self.query_snapshot(
            query,
            Arc::new(InstanceView::unrestricted()),
            0,
            ClassId::DEFAULT,
            None,
        )
    }

    /// Pins a session to a minimum snapshot generation: later queries of
    /// the session refuse (after a bounded wait for the ingest worker)
    /// snapshots older than the pin — the read-your-writes contract. A
    /// producer pins `ingest_stats().last_generation` right after a
    /// `flush`, and every subsequent query of that session observes its
    /// writes. Pins only ratchet upwards; returns the effective pin.
    pub fn pin_session_generation(
        &self,
        session_id: SessionId,
        generation: u64,
    ) -> Result<u64, CoreError> {
        self.sessions.with_session_mut(session_id, |state| {
            if !state.is_active() {
                return Err(CoreError::UnknownSession {
                    session: session_id,
                });
            }
            state.min_generation = state.min_generation.max(generation);
            Ok(state.min_generation)
        })?
    }

    /// The shared cached read path: consistent `(generation, cube)` pair,
    /// cache lookup, parallel execution, cache fill. Takes the view as an
    /// `Arc` (sessions already hold one), so keying the cache is a
    /// refcount bump rather than a deep clone of the selection sets.
    ///
    /// `min_generation` is the session's read-your-writes floor: when the
    /// published snapshot is older, the query waits briefly for the epoch
    /// worker to catch up and errors with [`CoreError::StaleSnapshot`] if
    /// it does not.
    fn query_snapshot(
        &self,
        query: &Query,
        view: Arc<InstanceView>,
        min_generation: u64,
        class: ClassId,
        deadline: Option<std::time::Duration>,
    ) -> Result<QueryResult, CoreError> {
        // End-to-end span: covers the admission gate, the
        // read-your-writes wait, the cache lookup and (on a miss) the
        // observed execution; records on every exit, including errors.
        let _total = self.metrics.span(Stage::QueryTotal, class);
        // The budget clock starts here, *before* admission: a query that
        // spends its whole budget parked in the admission queue comes
        // back DeadlineExceeded instead of running late.
        let cancel = self.lifecycle_token(deadline);
        // Admission first: a shed query does no work at all — not even a
        // cache probe — and a guaranteed tenant over budget waits here
        // (backpressure, bounded by the deadline) before touching any
        // snapshot.
        let _admission = self.admit_query(class, cancel.deadline())?;
        let (generation, cube) = self.wait_for_generation(min_generation)?;
        let dicts = Some((&self.cube_state.dict_cache, generation));
        let obs = Some(QueryObs {
            registry: &self.metrics,
            class,
            generation,
        });
        if !self.cube_state.result_cache.is_enabled() {
            return Ok(self
                .query_engine
                .execute_with_view_cancellable(&cube, query, &view, dicts, obs, &cancel)?);
        }
        let key = CacheKey::new(generation, query, view);
        let lookup = self.metrics.span(Stage::CacheLookup, class);
        let hit = self.cube_state.result_cache.get(&key);
        lookup.finish();
        if let Some(hit) = hit {
            return Ok((*hit).clone());
        }
        let result = self
            .query_engine
            .execute_with_view_cancellable(&cube, query, &key.view, dicts, obs, &cancel)?;
        self.cube_state
            .result_cache
            .insert(key, Arc::new(result.clone()));
        Ok(result)
    }

    /// The cancel token a read path runs under: the explicit per-query
    /// budget wins, else the executor config's default, else no deadline.
    fn lifecycle_token(&self, deadline: Option<std::time::Duration>) -> CancelToken {
        let budget = deadline.or(self.query_engine.config().deadline);
        CancelToken::with_deadline(budget.map(|budget| std::time::Instant::now() + budget))
    }

    /// Executes a batch of OLAP queries through a session's personalized
    /// view in one shared-scan pass: cached members are answered from the
    /// result cache, and only the misses are executed — together, against
    /// one snapshot, sharing group-key dictionaries and per-morsel
    /// selection vectors where the queries' filters coincide. Results are
    /// positional (`results[i]` answers `queries[i]`) and each is
    /// bit-identical to what [`PersonalizationEngine::query`] would have
    /// returned for that query alone.
    pub fn query_batch(
        &self,
        session_id: SessionId,
        queries: &[Query],
    ) -> Result<Vec<Result<QueryResult, CoreError>>, CoreError> {
        self.query_batch_with_deadline(session_id, queries, None)
    }

    /// [`PersonalizationEngine::query_batch`] under an explicit
    /// per-batch deadline budget covering admission, the
    /// read-your-writes wait and every fact group's scan. An expiry
    /// mid-batch fails the current and every not-yet-scanned group with
    /// [`CoreError::DeadlineExceeded`]; groups that already completed
    /// keep their results.
    pub fn query_batch_with_deadline(
        &self,
        session_id: SessionId,
        queries: &[Query],
        deadline: Option<std::time::Duration>,
    ) -> Result<Vec<Result<QueryResult, CoreError>>, CoreError> {
        let (active, view, min_generation, class, _pin) =
            self.sessions.with_session(session_id, |state| {
                let versions: BTreeMap<String, u64> = state
                    .view
                    .fact_selection_versions()
                    .map(|(fact, version)| (fact.to_string(), version))
                    .collect();
                let pin = VersionPinGuard {
                    state: Arc::clone(&self.cube_state),
                    token: (!versions.is_empty())
                        .then(|| self.cube_state.version_pins.pin(versions)),
                };
                (
                    state.is_active(),
                    Arc::clone(&state.view),
                    state.min_generation,
                    state.class,
                    pin,
                )
            })?;
        if !active {
            return Err(CoreError::UnknownSession {
                session: session_id,
            });
        }
        self.query_batch_snapshot(queries, view, min_generation, class, deadline)
    }

    /// Executes a batch of OLAP queries against the full, unpersonalized
    /// cube in one shared-scan pass.
    pub fn query_batch_unpersonalized(
        &self,
        queries: &[Query],
    ) -> Result<Vec<Result<QueryResult, CoreError>>, CoreError> {
        self.query_batch_snapshot(
            queries,
            Arc::new(InstanceView::unrestricted()),
            0,
            ClassId::DEFAULT,
            None,
        )
    }

    /// The shared batched read path: one consistent `(generation, cube)`
    /// pair for the whole batch, one locked batch lookup in the result
    /// cache, one shared-scan execution over exactly the misses, then a
    /// cache fill for every freshly computed result.
    fn query_batch_snapshot(
        &self,
        queries: &[Query],
        view: Arc<InstanceView>,
        min_generation: u64,
        class: ClassId,
        deadline: Option<std::time::Duration>,
    ) -> Result<Vec<Result<QueryResult, CoreError>>, CoreError> {
        let _total = self.metrics.span(Stage::BatchTotal, class);
        let cancel = self.lifecycle_token(deadline);
        let _admission = self.admit_query(class, cancel.deadline())?;
        let (generation, cube) = self.wait_for_generation(min_generation)?;
        let dicts = Some((&self.cube_state.dict_cache, generation));
        let obs = Some(QueryObs {
            registry: &self.metrics,
            class,
            generation,
        });
        if !self.cube_state.result_cache.is_enabled() {
            return Ok(self
                .query_engine
                .execute_batch_cancellable(&cube, queries, &view, dicts, obs, &cancel)
                .into_iter()
                .map(|result| result.map_err(CoreError::from))
                .collect());
        }
        let keys: Vec<CacheKey> = queries
            .iter()
            .map(|query| CacheKey::new(generation, query, Arc::clone(&view)))
            .collect();
        let lookup = self.metrics.span(Stage::CacheLookup, class);
        let cached = self.cube_state.result_cache.get_batch(&keys);
        lookup.finish();
        let miss_indices: Vec<usize> = cached
            .iter()
            .enumerate()
            .filter_map(|(i, hit)| hit.is_none().then_some(i))
            .collect();
        let misses: Vec<Query> = miss_indices.iter().map(|&i| queries[i].clone()).collect();
        let executed = self
            .query_engine
            .execute_batch_cancellable(&cube, &misses, &view, dicts, obs, &cancel);
        let mut results: Vec<Option<Result<QueryResult, CoreError>>> = cached
            .into_iter()
            .map(|hit| hit.map(|r| Ok((*r).clone())))
            .collect();
        for (&index, executed) in miss_indices.iter().zip(executed) {
            if let Ok(result) = &executed {
                self.cube_state
                    .result_cache
                    .insert(keys[index].clone(), Arc::new(result.clone()));
            }
            results[index] = Some(executed.map_err(CoreError::from));
        }
        Ok(results
            .into_iter()
            .map(|result| result.expect("every batch slot answered or executed"))
            .collect())
    }

    /// Loads a consistent `(generation, cube)` pair at or above
    /// `min_generation`, polling briefly when the published snapshot lags
    /// a read-your-writes pin (the epoch worker publishes within its
    /// `max_interval`, typically tens of milliseconds).
    fn wait_for_generation(&self, min_generation: u64) -> Result<(u64, Arc<Cube>), CoreError> {
        let (generation, cube) = self.cube_state.snapshot.load_versioned();
        if generation >= min_generation {
            return Ok((generation, cube));
        }
        let deadline = std::time::Instant::now() + READ_YOUR_WRITES_WAIT;
        loop {
            std::thread::sleep(std::time::Duration::from_millis(1));
            let (generation, cube) = self.cube_state.snapshot.load_versioned();
            if generation >= min_generation {
                return Ok((generation, cube));
            }
            if std::time::Instant::now() >= deadline {
                return Err(CoreError::StaleSnapshot {
                    published: generation,
                    required: min_generation,
                });
            }
        }
    }

    /// Counters of the query-result cache (hits, misses, entries,
    /// invalidations, evictions).
    pub fn cache_stats(&self) -> CacheStats {
        self.cube_state.result_cache.stats()
    }

    /// Counters of the group-key dictionary cache (hits, misses, entries,
    /// invalidations).
    pub fn dict_cache_stats(&self) -> DictCacheStats {
        self.cube_state.dict_cache.stats()
    }

    /// The metrics registry this engine records into — stage latency
    /// histograms, the slow-query journal and session classes all live
    /// here. Shared (`Arc`), so callers can hold it across the engine's
    /// lifetime or aggregate several engines into one.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Sets the slow-query journal threshold: standalone queries (and
    /// batch fact groups) whose end-to-end pipeline time meets it are
    /// journaled with their per-stage breakdown.
    pub fn set_slow_query_threshold_micros(&self, micros: u64) {
        self.metrics.journal().set_threshold_micros(micros);
    }

    // ----- tenant scheduling and admission ------------------------------

    /// The admission gate in front of both read paths: asks the shared
    /// pool's controller for a slot under the session class's budgets.
    /// A best-effort tenant over budget is shed with a typed
    /// [`CoreError::Overloaded`]; a guaranteed tenant blocks until
    /// capacity frees. Engines without a pool admit everything.
    fn admit_query(
        &self,
        class: ClassId,
        deadline: Option<std::time::Instant>,
    ) -> Result<Option<AdmissionGuard>, CoreError> {
        match &self.morsel_pool {
            None => Ok(None),
            Some(pool) => {
                pool.admit_until(class, deadline)
                    .map(Some)
                    .map_err(|error| match error {
                        AdmitError::Shed(shed) => CoreError::Overloaded {
                            class: self.metrics.class_name(shed.class),
                            in_flight: shed.in_flight,
                            limit: shed.max_in_flight,
                        },
                        AdmitError::DeadlineExceeded { .. } => CoreError::DeadlineExceeded,
                    })
            }
        }
    }

    /// A backoff hint for a shed tenant: the class's recent end-to-end
    /// p99 in µs (0 when nothing has been recorded yet) — roughly how
    /// long one queued query takes to drain, so retrying after it has a
    /// fair chance of finding a free slot.
    pub fn retry_after_hint_micros(&self, class_name: &str) -> u64 {
        let class = self.metrics.register_class(class_name);
        self.metrics
            .stage_histogram(Stage::QueryTotal, class)
            .quantile(0.99)
    }

    /// The shared morsel worker pool, when the executor is parallel —
    /// its scheduler statistics are also folded into
    /// [`PersonalizationEngine::metrics_snapshot`].
    pub fn morsel_pool(&self) -> Option<&Arc<MorselPool>> {
        self.morsel_pool.as_ref()
    }

    /// Sets the scheduling and admission policy of a session class
    /// (registering the class name if it is new) and returns its id.
    /// Takes effect immediately: weights steer the worker scheduler,
    /// budgets steer admission of subsequent queries.
    pub fn set_tenant_policy(&self, class_name: &str, policy: TenantPolicy) -> ClassId {
        let class = self.metrics.register_class(class_name);
        if let Some(pool) = &self.morsel_pool {
            pool.set_policy(class, policy);
        }
        class
    }

    /// One step of the scheduler's latency-target feedback loop: reads
    /// each tenant's windowed `query_total` p99 from the registry and
    /// rebalances worker shares toward tenants missing their
    /// [`TenantPolicy::target_p99_micros`]. Returns the class names
    /// whose effective share changed. Call it from an operator loop, or
    /// start the pool's autotune thread for a fixed cadence.
    pub fn rebalance_worker_shares(&self) -> Vec<(String, u32)> {
        match &self.morsel_pool {
            None => Vec::new(),
            Some(pool) => pool
                .rebalance()
                .into_iter()
                .map(|(class, share)| (self.metrics.class_name(class), share))
                .collect(),
        }
    }

    /// One aggregate observability snapshot: per-stage latency summaries
    /// (p50/p90/p99 in µs) keyed by session class, the engine's counters
    /// (result cache, dictionary cache, session reclamation, ingest) and
    /// gauges (active sessions, cache entries, ingest queue depth, cube
    /// generation), and the retained slow-query records.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let cache = self.cache_stats();
        let dict = self.dict_cache_stats();
        snap.counters.extend([
            ("cache_hits".to_string(), cache.hits),
            ("cache_misses".to_string(), cache.misses),
            ("cache_invalidations".to_string(), cache.invalidations),
            ("cache_evictions".to_string(), cache.evictions),
            ("dict_cache_hits".to_string(), dict.hits),
            ("dict_cache_misses".to_string(), dict.misses),
            ("dict_cache_invalidations".to_string(), dict.invalidations),
            (
                "sessions_reclaimed".to_string(),
                self.sessions.sessions_reclaimed(),
            ),
        ]);
        snap.gauges.extend([
            (
                "sessions_active".to_string(),
                self.sessions.sessions_active(),
            ),
            ("cache_entries".to_string(), cache.entries as i64),
            ("dict_cache_entries".to_string(), dict.entries as i64),
            ("cube_generation".to_string(), self.cube_generation() as i64),
        ]);
        if let Some(ingest) = self.ingest_stats() {
            snap.counters.extend([
                (
                    "ingest_batches_submitted".to_string(),
                    ingest.batches_submitted,
                ),
                (
                    "ingest_batches_rejected".to_string(),
                    ingest.batches_rejected,
                ),
                ("ingest_batches_applied".to_string(), ingest.batches_applied),
                ("ingest_batches_failed".to_string(), ingest.batches_failed),
                ("ingest_rows_appended".to_string(), ingest.rows_appended),
                (
                    "ingest_epochs_published".to_string(),
                    ingest.epochs_published,
                ),
                ("ingest_compactions".to_string(), ingest.compactions),
                ("ingest_worker_restarts".to_string(), ingest.worker_restarts),
            ]);
            snap.gauges.extend([
                ("ingest_queue_depth".to_string(), ingest.queue_depth as i64),
                (
                    "ingest_worker_heartbeat_micros".to_string(),
                    ingest.last_heartbeat_micros as i64,
                ),
                ("ingest_worker_down".to_string(), ingest.worker_down as i64),
            ]);
        }
        if let Some(pool) = &self.morsel_pool {
            let stats = pool.stats();
            let names = self.metrics.class_names();
            snap.gauges
                .push(("scheduler_workers".to_string(), stats.workers as i64));
            let mut shed_total = 0u64;
            for tenant in &stats.tenants {
                shed_total += tenant.shed_total;
                // Per-tenant series only for registered classes; the
                // remaining slots are idle and would be noise.
                let Some(name) = names.get(tenant.class.0 as usize) else {
                    continue;
                };
                snap.gauges.extend([
                    (
                        format!("scheduler_queue_depth_{name}"),
                        tenant.queued as i64,
                    ),
                    (
                        format!("scheduler_in_flight_{name}"),
                        tenant.in_flight as i64,
                    ),
                    (format!("scheduler_share_{name}"), tenant.share as i64),
                ]);
                if tenant.shed_total > 0 {
                    snap.counters
                        .push((format!("scheduler_shed_{name}"), tenant.shed_total));
                }
            }
            snap.counters
                .push(("scheduler_shed_total".to_string(), shed_total));
        }
        snap
    }

    /// The executor configuration this engine serves queries with.
    pub fn execution_config(&self) -> &ExecutionConfig {
        self.query_engine.config()
    }

    /// The generation of the currently published cube snapshot.
    pub fn cube_generation(&self) -> u64 {
        self.cube_state.snapshot.generation()
    }

    /// The current `(generation, cube)` snapshot pair, read atomically —
    /// what a query observes. Lets callers pin the exact snapshot a
    /// result was computed from while ingestion publishes new ones.
    pub fn cube_versioned(&self) -> (u64, Arc<Cube>) {
        self.cube_state.snapshot.load_versioned()
    }

    // ----- streaming ingestion ------------------------------------------

    /// Starts the streaming-ingestion pipeline (idempotent: a second call
    /// returns a handle onto the already-running pipeline, ignoring
    /// `config`) and returns a producer handle.
    ///
    /// Producers submit [`DeltaBatch`]es through the handle; a dedicated
    /// worker applies them atomically to the write master and publishes
    /// immutable snapshots per the configured epoch policy. Readers —
    /// including sessions mid-query — never block on ingestion and never
    /// observe a torn batch.
    pub fn start_ingest(&self, config: IngestConfig) -> IngestHandle {
        let mut ingest = self.ingest.lock();
        match ingest.as_ref() {
            Some(pipeline) => pipeline.handle(),
            None => {
                let pipeline = IngestPipeline::start(
                    Arc::clone(&self.cube_state) as Arc<dyn CubeSink>,
                    config,
                );
                let handle = pipeline.handle();
                *ingest = Some(pipeline);
                handle
            }
        }
    }

    /// A producer handle onto the running ingestion pipeline, when one was
    /// started.
    pub fn ingest_handle(&self) -> Option<IngestHandle> {
        self.ingest.lock().as_ref().map(IngestPipeline::handle)
    }

    /// Counters of the ingestion pipeline (batches, rows, epochs,
    /// backpressure rejections), when one was started.
    pub fn ingest_stats(&self) -> Option<IngestStats> {
        self.ingest.lock().as_ref().map(IngestPipeline::stats)
    }

    /// Shuts the ingestion pipeline down: pending batches are applied, a
    /// final epoch is published, the worker joins. Returns the final
    /// counters, or `None` when no pipeline was running. (Dropping the
    /// engine does the same implicitly.)
    pub fn stop_ingest(&self) -> Option<IngestStats> {
        self.ingest.lock().take().map(IngestPipeline::shutdown)
    }

    /// The personalized view of a session (a shared snapshot; the `Arc`
    /// stays consistent if rules later restrict the view further).
    pub fn session_view(&self, session_id: SessionId) -> Result<Arc<InstanceView>, CoreError> {
        self.sessions
            .with_session(session_id, |state| Arc::clone(&state.view))
    }

    /// The SUS session object of a session (an owned snapshot).
    pub fn session(&self, session_id: SessionId) -> Result<Session, CoreError> {
        self.sessions
            .with_session(session_id, |state| state.session.clone())
    }

    /// The profile of a registered user (a clone of the stored state).
    pub fn user_profile(&self, user_id: &str) -> Result<UserProfile, CoreError> {
        Ok(self.profiles.get(user_id)?)
    }

    // ----- internals ----------------------------------------------------

    /// Fires an event for a user in two phases.
    ///
    /// **Condition phase** (compiled path, lock-free): matches the event
    /// against the loaded ruleset snapshot without the master lock —
    /// event matching in PRML is purely textual, so no cube state can be
    /// observed. When no rule matches, the firing returns immediately
    /// (after the unknown-user check) without ever locking the master.
    ///
    /// **Effect phase**: for matched rules only, the master mutex is
    /// held across profile read → rule-body run → profile write, making
    /// the whole firing atomic with respect to other firing threads (so
    /// two concurrent `SetContent` increments cannot lose an update).
    /// When the firing actually changed the schema, the master is cloned
    /// once and published for the read path. The interpreter fallback
    /// (`set_compiled_firing(false)`) runs both matching and bodies
    /// under the lock, as the engine always did before compilation.
    ///
    /// Invariant: outside a firing, master and snapshot hold the same
    /// schema/layer/dimension state — successful schema changes publish,
    /// non-schema firings never touch the cube, and an erroring firing
    /// rolls that state back to the published snapshot so partially
    /// applied schema actions never leak into later publishes. Fact
    /// tables are the streaming-ingest subsystem's territory (the master
    /// may be an epoch ahead of the snapshot there), so the rollback
    /// keeps the master's fact tables: rules cannot have touched them.
    /// Besides the fire report, returns each fact table's compaction
    /// version as observed under the master lock — the numbering any
    /// `SelectInstance` fact-row selections in the report refer to, so
    /// [`PersonalizationEngine::apply_selection_effects`] can pin them
    /// (a compaction interleaving between the firing and the application
    /// then translates correctly instead of silently misreading ids).
    fn fire_event(
        &self,
        user_id: &str,
        session: &Session,
        event: &RuntimeEvent,
        class: ClassId,
    ) -> Result<(FireReport, BTreeMap<String, u64>, VersionPinGuard), CoreError> {
        // One load of the interpreter+compiled pair: both phases (and the
        // interpreter fallback) see the same ruleset however many
        // hot-swaps land mid-firing.
        let active = self.rules.load();
        if self.compiled_firing() {
            // Phase 1 — condition phase: pure precomputed-string matching
            // against the loaded snapshot. No master lock, no cube access.
            let condition = self.metrics.span(Stage::RuleCondition, class);
            let matched = active.compiled.matched_rules(event);
            condition.finish();
            if matched.is_empty() {
                // Nothing fires, so the firing cannot touch the cube or
                // the profile: skip the master lock entirely. Unknown
                // users must still error exactly like the locking path.
                self.profiles.get(user_id)?;
                return Ok((
                    FireReport::default(),
                    BTreeMap::new(),
                    VersionPinGuard {
                        state: Arc::clone(&self.cube_state),
                        token: None,
                    },
                ));
            }
            // Phase 2 — effect application for the matched rules only,
            // under the master lock. The span covers lock acquisition:
            // waiting for the master *is* part of effect-phase latency.
            let effect = self.metrics.span(Stage::RuleEffect, class);
            let parameters = self.parameters.read().clone();
            let mut master = self.cube_state.master.lock();
            let mut profile = self.profiles.get(user_id)?;
            let mut ctx = EvalContext::new(&mut master, &mut profile)
                .with_session(session)
                .with_layer_source(self.layer_source.as_ref());
            for (name, value) in &parameters {
                ctx = ctx.with_parameter(name.clone(), *value);
            }
            let fired = active.compiled.fire_matched(&matched, &mut ctx);
            drop(ctx);
            effect.finish();
            self.finish_firing(master, profile, fired)
        } else {
            let span = self.metrics.span(Stage::RuleFireInterpreted, class);
            let parameters = self.parameters.read().clone();
            let mut master = self.cube_state.master.lock();
            let mut profile = self.profiles.get(user_id)?;
            let mut ctx = EvalContext::new(&mut master, &mut profile)
                .with_session(session)
                .with_layer_source(self.layer_source.as_ref());
            for (name, value) in &parameters {
                ctx = ctx.with_parameter(name.clone(), *value);
            }
            let fired = active.engine.fire(event, &mut ctx);
            drop(ctx);
            span.finish();
            self.finish_firing(master, profile, fired)
        }
    }

    /// The shared tail of a firing that ran rule bodies under the master
    /// lock: roll back on error, publish on a real schema change, write
    /// the profile back, and pin compaction versions for fact-row
    /// selections. See [`PersonalizationEngine::fire_event`] for the
    /// invariants this maintains.
    fn finish_firing(
        &self,
        mut master: MutexGuard<'_, Cube>,
        profile: UserProfile,
        fired: Result<FireReport, PrmlError>,
    ) -> Result<(FireReport, BTreeMap<String, u64>, VersionPinGuard), CoreError> {
        let published = self.cube_state.snapshot.load();
        let report = match fired {
            Ok(report) => report,
            Err(error) => {
                // Roll back: a rule may have errored after earlier
                // statements (or earlier rules) already mutated the cube.
                // Restore schema/layer/dimension state from the published
                // snapshot but keep the master's fact tables — they may
                // hold ingested-but-unpublished deltas no firing touches.
                let mut rolled_back = (*published).clone();
                rolled_back.swap_fact_tables(&mut master);
                *master = rolled_back;
                return Err(error.into());
            }
        };
        // Publish only on a real schema change — effects report AddLayer
        // even when it was an idempotent re-add, and cloning the whole
        // cube on every login would serialise logins behind an
        // O(warehouse) copy. Publishing bumps the snapshot generation,
        // which automatically invalidates every cached query result
        // computed from the superseded cube.
        if master.schema() != published.schema() {
            let generation = self.cube_state.snapshot.store(Arc::new(master.clone()));
            self.cube_state
                .result_cache
                .invalidate_generations_below(generation);
            // Schema personalization may have grown dimension tables, so
            // the cached group-key dictionaries cannot be trusted either.
            self.cube_state.dict_cache.invalidate(generation);
        }
        self.profiles.upsert(profile);
        // Only fact-row selections consume the version map; skip the
        // allocation on the (common) firings without one.
        let has_fact_selections = report
            .effects
            .iter()
            .any(|e| e.selections.keys().any(|k| k.starts_with("__fact__")));
        let fact_versions = if has_fact_selections {
            master.fact_compaction_versions()
        } else {
            BTreeMap::new()
        };
        // Pin the observed versions (under the master lock, so a
        // compaction cannot interleave before the pin lands): until the
        // caller applies the selection effects and drops the guard, the
        // remap-chain trimmer must keep every transition from these
        // versions forward.
        let pin = VersionPinGuard {
            state: Arc::clone(&self.cube_state),
            token: has_fact_selections
                .then(|| self.cube_state.version_pins.pin(fact_versions.clone())),
        };
        drop(master);
        Ok((report, fact_versions, pin))
    }

    /// Applies the SelectInstance effects of a fire report to a view:
    /// each rule's selection restricts the view conjunctively, with
    /// fact-row selections pinned to the compaction version the firing
    /// observed. If a compaction slipped in between the firing and this
    /// application (the stored selection is already at a newer version),
    /// the incoming ids are translated forward through the published
    /// remap chain first, so the intersection always happens in one
    /// numbering. The view is copy-on-write (`Arc`): concurrent readers
    /// keep the snapshot they loaded; only the stored view is replaced.
    fn apply_selection_effects(
        &self,
        report: &FireReport,
        fact_versions: &BTreeMap<String, u64>,
        view: &mut Arc<InstanceView>,
    ) {
        if report
            .effects
            .iter()
            .all(|effect| effect.selections.is_empty())
        {
            return;
        }
        let view = Arc::make_mut(view);
        for effect in &report.effects {
            for (dimension, members) in &effect.selections {
                if let Some(fact) = dimension.strip_prefix("__fact__") {
                    let version = fact_versions.get(fact).copied().unwrap_or(0);
                    // Re-anchor the fired ids forward if a compaction
                    // raced the firing: either to the stored selection's
                    // numbering (stored views are remapped under the
                    // master lock right after each compacted snapshot
                    // publishes) or, for a fresh selection, to the
                    // published table's current version — storing it at
                    // the lagging `version` would leave a view the eager
                    // per-compaction remap (which matches versions
                    // exactly) skips forever, permanently pinning the
                    // remap-chain trim floor. The firing's version pin is
                    // still held here, so the published chain always
                    // covers `version..target`.
                    let cube = self.cube_state.snapshot.load();
                    let target = view
                        .fact_selection_version(fact)
                        .into_iter()
                        .chain(
                            cube.fact_table(fact)
                                .map(|table| table.compaction_version()),
                        )
                        .max()
                        .unwrap_or(version);
                    if target > version {
                        let translated = cube
                            .translate_fact_rows(fact, version, target, members.iter().copied())
                            .unwrap_or_else(|_| members.iter().copied().collect());
                        view.select_fact_rows_at(fact.to_string(), target, translated);
                    } else {
                        view.select_fact_rows_at(
                            fact.to_string(),
                            version,
                            members.iter().copied(),
                        );
                    }
                } else {
                    view.select_dimension_members(dimension.clone(), members.iter().copied());
                }
            }
        }
    }

    fn build_report(
        &self,
        user_id: &str,
        state: &SessionState,
        fire: &FireReport,
    ) -> Result<PersonalizationReport, CoreError> {
        let cube = self.cube_state.snapshot.load();
        let mut visible_facts = BTreeMap::new();
        let mut total_facts = BTreeMap::new();
        for fact in &cube.schema().facts {
            // Live rows only: a retracted (tombstoned) row is invisible to
            // everyone, so counting it as "total" would make an
            // unrestricted view look personalized.
            let total = cube.fact_table(&fact.name)?.table.live_len();
            let visible = state.view.visible_fact_count(&cube, &fact.name)?;
            total_facts.insert(fact.name.clone(), total);
            visible_facts.insert(fact.name.clone(), visible);
        }
        Ok(PersonalizationReport {
            user: user_id.to_string(),
            rules_matched: fire.rules_matched,
            rules_with_effects: fire
                .effects
                .iter()
                .filter(|e| e.changed_schema() || e.selected_instances() || e.set_contents > 0)
                .map(|e| e.rule.clone())
                .collect(),
            schema_diff: self.schema_diff(),
            selected_members: fire
                .effects
                .iter()
                .flat_map(|e| e.selections.iter())
                .map(|(dim, rows)| (dim.clone(), rows.len()))
                .collect(),
            visible_facts,
            total_facts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdwp_datagen::{PaperScenario, ScenarioConfig};
    use sdwp_olap::AttributeRef;
    use sdwp_prml::corpus::*;

    fn engine() -> (PersonalizationEngine, PaperScenario) {
        let scenario = PaperScenario::generate(ScenarioConfig::tiny());
        let layer_source = Arc::new(scenario.layer_source());
        let engine = PersonalizationEngine::with_layer_source(scenario.cube.clone(), layer_source);
        engine.register_user(scenario.manager.clone());
        engine.set_parameter("threshold", 2.0);
        for rule in ALL_PAPER_RULES {
            engine.add_rules_text(rule).unwrap();
        }
        (engine, scenario)
    }

    /// A location right next to the first store, so the 5 km instance rule
    /// always selects at least one store.
    fn near_first_store(scenario: &PaperScenario) -> LocationContext {
        let store = &scenario.retail.stores[0];
        LocationContext::at_point("office", store.location.x() + 0.5, store.location.y())
    }

    #[test]
    fn session_start_personalizes_schema_and_instances() {
        let (engine, scenario) = engine();
        let handle = engine
            .start_session("regional-manager", Some(near_first_store(&scenario)))
            .unwrap();
        // Schema personalization (rule 5.1): Airport layer + spatial Store.
        let diff = engine.schema_diff();
        assert!(diff.added_layers.iter().any(|(name, _)| name == "Airport"));
        assert!(diff
            .levels_become_spatial
            .iter()
            .any(|(_, level, _)| level == "Store"));
        // Instance personalization (rule 5.2): the Store dimension is
        // restricted in the session view.
        let view = engine.session_view(handle.id).unwrap();
        assert!(!view.is_unrestricted());
        assert!(handle.report.rules_matched >= 3);
    }

    #[test]
    fn queries_through_the_view_see_fewer_facts() {
        let (engine, scenario) = engine();
        let handle = engine
            .start_session("regional-manager", Some(near_first_store(&scenario)))
            .unwrap();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales");
        let personalized = engine.query(handle.id, &query).unwrap();
        let full = engine.query_unpersonalized(&query).unwrap();
        assert!(personalized.facts_scanned <= full.facts_scanned);
        assert!(personalized.column_total(0) <= full.column_total(0) + 1e-9);
    }

    #[test]
    fn interest_tracking_across_sessions() {
        let (engine, scenario) = engine();
        let handle = engine
            .start_session("regional-manager", Some(near_first_store(&scenario)))
            .unwrap();
        // The user repeatedly selects cities near airports.
        for _ in 0..3 {
            engine
                .record_spatial_selection(handle.id, "GeoMD.Store.City", None)
                .unwrap();
        }
        let profile = engine.user_profile("regional-manager").unwrap();
        assert_eq!(profile.interest("AirportCity").unwrap().degree, 3.0);
        engine.end_session(handle.id).unwrap();
        // The next session start exceeds the threshold: the Train layer is
        // added by rule TrainAirportCity.
        let second = engine
            .start_session("regional-manager", Some(near_first_store(&scenario)))
            .unwrap();
        assert!(engine.cube().schema().layer("Train").is_some());
        assert!(second
            .report
            .schema_diff
            .added_layers
            .iter()
            .any(|(name, _)| name == "Train"));
    }

    #[test]
    fn unknown_users_and_sessions_error() {
        let (engine, _scenario) = engine();
        assert!(engine.start_session("ghost", None).is_err());
        assert!(engine.session_view(99).is_err());
        assert!(engine
            .record_spatial_selection(99, "GeoMD.Store.City", None)
            .is_err());
        assert!(engine.end_session(99).is_err());
        let query = Query::over("Sales").measure("UnitSales");
        assert!(engine.query(99, &query).is_err());
    }

    #[test]
    fn rules_are_validated_on_registration() {
        let scenario = PaperScenario::generate(ScenarioConfig::tiny());
        let engine = PersonalizationEngine::new(scenario.cube.clone());
        let err = engine
            .add_rules_text(
                "Rule:bad When SessionStart do \
                 If (MD.Sales.Warehouse.name = 'x') then AddLayer('A', POINT) endIf endWhen",
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Rule(_)));
        assert!(engine.rules().is_empty());
    }

    #[test]
    fn non_matching_role_gets_no_personalization() {
        let scenario = PaperScenario::generate(ScenarioConfig::tiny());
        let engine = PersonalizationEngine::with_layer_source(
            scenario.cube.clone(),
            Arc::new(scenario.layer_source()),
        );
        engine.register_user(sdwp_user::UserProfile::new("analyst", "Ana"));
        engine.set_parameter("threshold", 2.0);
        for rule in ALL_PAPER_RULES {
            engine.add_rules_text(rule).unwrap();
        }
        // The analyst logs in from far outside the sales region.
        let handle = engine
            .start_session(
                "analyst",
                Some(LocationContext::at_point("remote", 5_000.0, 5_000.0)),
            )
            .unwrap();
        // Rule 5.1 did not fire for this role: no schema personalization.
        assert!(engine.schema_diff().added_layers.is_empty());
        assert!(engine.schema_diff().levels_become_spatial.is_empty());
        // Rule 5.2 is role-independent, but no store lies within 5 km of
        // the analyst, so the personalized view hides every fact.
        let view = engine.session_view(handle.id).unwrap();
        assert!(!view.is_unrestricted());
        assert_eq!(view.visible_fact_count(&engine.cube(), "Sales").unwrap(), 0);
    }

    #[test]
    fn ending_a_session_twice_is_rejected() {
        let (engine, scenario) = engine();
        let handle = engine
            .start_session("regional-manager", Some(near_first_store(&scenario)))
            .unwrap();
        engine.end_session(handle.id).unwrap();
        // A retried logout must not re-fire the SessionEnd rules.
        assert!(matches!(
            engine.end_session(handle.id),
            Err(CoreError::UnknownSession { .. })
        ));
    }

    #[test]
    fn idempotent_schema_rules_do_not_republish_the_cube() {
        let (engine, scenario) = engine();
        engine
            .start_session("regional-manager", Some(near_first_store(&scenario)))
            .unwrap();
        let first = engine.cube();
        // The second login re-fires AddLayer('Airport') as an idempotent
        // no-op: the schema is unchanged, so the published snapshot must
        // be the same allocation (no O(warehouse) clone per login).
        engine
            .start_session("regional-manager", Some(near_first_store(&scenario)))
            .unwrap();
        let second = engine.cube();
        assert!(
            Arc::ptr_eq(&first, &second),
            "schema-stable firing must not republish the cube"
        );
    }

    #[test]
    fn failed_rule_firing_rolls_back_schema_mutations() {
        let scenario = PaperScenario::generate(ScenarioConfig::tiny());
        let engine = PersonalizationEngine::new(scenario.cube.clone());
        engine.register_user(sdwp_user::UserProfile::new("u", "U"));
        // `flag` / `missingparam` are bare identifiers: they pass static
        // validation (they could be designer parameters) and resolve — or
        // fail — at firing time.
        engine
            .add_rules_text(
                "Rule:boom When SessionStart do \
                 If (flag > 0) then AddLayer('Partial', POINT) endIf \
                 If (missingparam > 1) then AddLayer('Q', POINT) endIf endWhen",
            )
            .unwrap();
        engine.set_parameter("flag", 1.0);
        // AddLayer('Partial') executes, then `missingparam` errors: the
        // firing fails and nothing may leak.
        let err = engine.start_session("u", None).unwrap_err();
        assert!(matches!(err, CoreError::Rule(_)));
        assert!(engine.cube().schema().layer("Partial").is_none());
        // A later *successful* firing (flag off, parameter defined) must
        // not publish a leftover 'Partial' from the failed attempt.
        engine.set_parameter("flag", 0.0);
        engine.set_parameter("missingparam", 0.0);
        engine.start_session("u", None).unwrap();
        assert!(
            engine.cube().schema().layer("Partial").is_none(),
            "partial schema mutation of a failed firing leaked into the snapshot"
        );
    }

    #[test]
    fn repeated_queries_hit_the_cache_until_a_publish() {
        let (engine, scenario) = engine();
        let handle = engine
            .start_session("regional-manager", Some(near_first_store(&scenario)))
            .unwrap();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales");
        let first = engine.query(handle.id, &query).unwrap();
        let miss_only = engine.cache_stats();
        assert_eq!(miss_only.hits, 0);
        let second = engine.query(handle.id, &query).unwrap();
        assert_eq!(first, second);
        let after_repeat = engine.cache_stats();
        assert_eq!(after_repeat.hits, 1);
        let generation = engine.cube_generation();

        // Drive the interest counter over the threshold and restart: the
        // TrainAirportCity rule adds the Train layer, publishing a new
        // cube snapshot.
        for _ in 0..3 {
            engine
                .record_spatial_selection(handle.id, "GeoMD.Store.City", None)
                .unwrap();
        }
        engine.end_session(handle.id).unwrap();
        let next = engine
            .start_session("regional-manager", Some(near_first_store(&scenario)))
            .unwrap();
        assert!(engine.cube_generation() > generation);

        // The same query text through the new session misses: both the
        // snapshot generation and the session view changed.
        let hits_before = engine.cache_stats().hits;
        engine.query(next.id, &query).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, hits_before);
        assert!(stats.invalidations > 0, "publish must drop stale entries");
    }

    #[test]
    fn cache_can_be_disabled_by_configuration() {
        let scenario = PaperScenario::generate(ScenarioConfig::tiny());
        let engine = PersonalizationEngine::with_execution_config(
            scenario.cube.clone(),
            Arc::new(scenario.layer_source()),
            sdwp_olap::ExecutionConfig::default().with_cache_capacity(0),
        );
        let query = Query::over("Sales").measure("UnitSales");
        engine.query_unpersonalized(&query).unwrap();
        engine.query_unpersonalized(&query).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.entries), (0, 0));
        assert_eq!(engine.execution_config().cache_capacity, 0);
    }

    #[test]
    fn ingested_epochs_publish_atomic_snapshots() {
        let (engine, _scenario) = engine();
        let before_rows = engine.cube().total_live_fact_rows();
        let before_generation = engine.cube_generation();
        let handle = engine.start_ingest(
            sdwp_ingest::IngestConfig::default()
                .with_epoch(sdwp_ingest::EpochPolicy::default().with_max_rows(1_000_000)),
        );
        // A second start returns a handle onto the same pipeline.
        let again = engine.start_ingest(sdwp_ingest::IngestConfig::default());
        let batch = DeltaBatch::new()
            .append(
                "Sales",
                vec![
                    ("Store", 0usize),
                    ("Customer", 0usize),
                    ("Product", 0usize),
                    ("Time", 0usize),
                ],
                vec![("UnitSales", sdwp_olap::CellValue::Float(5.0))],
            )
            .retract("Sales", 0);
        handle.submit(batch).unwrap();
        // Nothing published yet (row threshold unreached, no flush): the
        // read snapshot still shows the pre-ingest cube.
        assert_eq!(engine.cube().total_live_fact_rows(), before_rows);
        let generation = again.flush().unwrap();
        assert!(generation > before_generation);
        assert_eq!(engine.cube_generation(), generation);
        // One append + one retraction: net zero rows, new content.
        assert_eq!(engine.cube().total_live_fact_rows(), before_rows);
        assert_eq!(engine.cube().total_fact_rows(), before_rows + 1);
        let stats = engine.ingest_stats().unwrap();
        assert_eq!((stats.rows_appended, stats.rows_retracted), (1, 1));
        assert_eq!(stats.epochs_published, 1);
        let final_stats = engine.stop_ingest().unwrap();
        assert_eq!(final_stats.batches_applied, 1);
        assert!(engine.ingest_handle().is_none());
        assert!(matches!(
            handle.submit(DeltaBatch::new()),
            Err(sdwp_ingest::IngestError::Closed)
        ));
    }

    #[test]
    fn ingest_epochs_scope_cache_invalidation() {
        let (engine, scenario) = engine();
        let handle = engine
            .start_session("regional-manager", Some(near_first_store(&scenario)))
            .unwrap();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales");
        engine.query(handle.id, &query).unwrap();
        let ingest = engine.start_ingest(sdwp_ingest::IngestConfig::default());

        // An epoch of empty batches publishes nothing: the cached result
        // still hits afterwards.
        ingest.submit(DeltaBatch::new()).unwrap();
        ingest.flush().unwrap();
        let hits_before = engine.cache_stats().hits;
        let generation = engine.cube_generation();
        engine.query(handle.id, &query).unwrap();
        assert_eq!(engine.cache_stats().hits, hits_before + 1);
        assert_eq!(engine.cube_generation(), generation);

        // An epoch that changes Sales invalidates the Sales entry …
        ingest
            .submit(DeltaBatch::new().upsert_cell(
                "Sales",
                0,
                "UnitSales",
                sdwp_olap::CellValue::Float(123.0),
            ))
            .unwrap();
        ingest.flush().unwrap();
        let stats = engine.cache_stats();
        assert!(stats.invalidations > 0);
        let hits_after_publish = stats.hits;
        let fresh = engine.query(handle.id, &query).unwrap();
        assert_eq!(
            engine.cache_stats().hits,
            hits_after_publish,
            "must re-execute"
        );
        // … and the fresh result reflects the correction when store 0 is
        // visible through the view (and stays consistent regardless).
        assert_eq!(
            fresh,
            QueryEngine::with_config(*engine.execution_config())
                .execute_serial_with_view(
                    &engine.cube(),
                    &query,
                    &engine.session_view(handle.id).unwrap()
                )
                .unwrap()
        );
    }

    #[test]
    fn failed_rule_firing_keeps_ingested_facts() {
        let scenario = PaperScenario::generate(ScenarioConfig::tiny());
        let engine = PersonalizationEngine::new(scenario.cube.clone());
        engine.register_user(sdwp_user::UserProfile::new("u", "U"));
        engine
            .add_rules_text(
                "Rule:boom When SessionStart do \
                 If (flag > 0) then AddLayer('Partial', POINT) endIf \
                 If (missingparam > 1) then AddLayer('Q', POINT) endIf endWhen",
            )
            .unwrap();
        engine.set_parameter("flag", 1.0);
        let ingest = engine.start_ingest(
            sdwp_ingest::IngestConfig::default()
                .with_epoch(sdwp_ingest::EpochPolicy::default().with_max_rows(1_000_000)),
        );
        // Apply a delta but do NOT publish: it lives only in the master.
        ingest
            .submit(DeltaBatch::new().append(
                "Sales",
                vec![
                    ("Store", 0usize),
                    ("Customer", 0usize),
                    ("Product", 0usize),
                    ("Time", 0usize),
                ],
                vec![("UnitSales", sdwp_olap::CellValue::Float(7.0))],
            ))
            .unwrap();
        // Wait until the worker has applied (but not published) the batch.
        while engine.ingest_stats().unwrap().batches_applied == 0 {
            std::thread::yield_now();
        }
        // A failing firing rolls back its schema mutation …
        assert!(engine.start_session("u", None).is_err());
        assert!(engine.cube().schema().layer("Partial").is_none());
        // … without discarding the unpublished ingested row.
        let generation = ingest.flush().unwrap();
        assert!(generation > 0);
        assert_eq!(
            engine.cube().total_live_fact_rows(),
            scenario.cube.total_live_fact_rows() + 1,
            "rollback of a failed firing must keep ingested facts"
        );
    }

    #[test]
    fn pinned_sessions_read_their_own_writes() {
        let (engine, scenario) = engine();
        let handle = engine
            .start_session("regional-manager", Some(near_first_store(&scenario)))
            .unwrap();
        let ingest = engine.start_ingest(
            sdwp_ingest::IngestConfig::default()
                .with_epoch(sdwp_ingest::EpochPolicy::default().with_max_rows(1_000_000)),
        );
        let before = engine.query_unpersonalized(&Query::over("Sales").measure("UnitSales"));
        assert!(before.is_ok());
        ingest
            .submit(DeltaBatch::new().append(
                "Sales",
                vec![
                    ("Store", 0usize),
                    ("Customer", 0usize),
                    ("Product", 0usize),
                    ("Time", 0usize),
                ],
                vec![("UnitSales", sdwp_olap::CellValue::Float(5.0))],
            ))
            .unwrap();
        let generation = ingest.flush().unwrap();
        // Pin the session to the flushed generation: its next query must
        // observe the appended row.
        assert_eq!(
            engine
                .pin_session_generation(handle.id, generation)
                .unwrap(),
            generation
        );
        // Pins only ratchet upwards.
        assert_eq!(
            engine.pin_session_generation(handle.id, 0).unwrap(),
            generation
        );
        let result = engine
            .query(handle.id, &Query::over("Sales").measure("UnitSales"))
            .unwrap();
        assert!(result.facts_scanned > 0);
        assert!(engine.cube_generation() >= generation);
        // A pin beyond anything the worker will publish times out into a
        // stale-snapshot error instead of hanging.
        engine
            .pin_session_generation(handle.id, generation + 100)
            .unwrap();
        assert!(matches!(
            engine.query(handle.id, &Query::over("Sales").measure("UnitSales")),
            Err(CoreError::StaleSnapshot { required, .. }) if required == generation + 100
        ));
        // Unknown sessions cannot be pinned.
        assert!(engine.pin_session_generation(9_999, 1).is_err());
    }

    #[test]
    fn ingest_stats_expose_per_fact_compaction_pressure() {
        let (engine, _scenario) = engine();
        let ingest = engine.start_ingest(
            sdwp_ingest::IngestConfig::default()
                .with_epoch(sdwp_ingest::EpochPolicy::default().with_max_rows(1_000_000)),
        );
        ingest
            .submit(DeltaBatch::new().retract("Sales", 0).retract("Sales", 1))
            .unwrap();
        ingest.flush().unwrap();
        let stats = engine.ingest_stats().unwrap();
        let sales = stats
            .fact_tables
            .iter()
            .find(|s| s.fact == "Sales")
            .expect("Sales gauge");
        assert_eq!(sales.total_rows - sales.live_rows, 2);
        assert!(sales.tombstone_ratio > 0.0);
        assert_eq!(sales.compactions, 0, "compaction is disabled by default");
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let (engine, scenario) = engine();
        let engine = Arc::new(engine);
        let location = near_first_store(&scenario);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let location = location.clone();
                std::thread::spawn(move || {
                    let handle = engine
                        .start_session("regional-manager", Some(location))
                        .unwrap();
                    let query = Query::over("Sales").measure("UnitSales");
                    engine.query(handle.id, &query).unwrap();
                    engine.end_session(handle.id).unwrap();
                    handle.id
                })
            })
            .collect();
        let mut ids: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "session ids must be unique across threads");
    }
}
