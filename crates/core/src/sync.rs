//! Shared-state primitives for the concurrent engine core.
//!
//! The engine publishes its personalized cube schema and its rule set as
//! immutable snapshots behind [`ArcSwap`]: readers (`query`,
//! `WebFacade::handle`) grab an `Arc` and work on a consistent snapshot
//! without blocking writers; writers build the next snapshot off to the
//! side and swap it in atomically — the hot-swap pattern rule engines such
//! as Cerberus use for their `ArcSwap<RuleSet>`.

use parking_lot::RwLock;
use std::sync::Arc;

/// An atomically swappable `Arc<T>`.
///
/// API-compatible subset of the `arc-swap` crate, implemented over a
/// [`parking_lot::RwLock`] (the offline stand-in): `load` takes a brief
/// read lock to clone the `Arc` (no `T` clone, no waiting on writers'
/// snapshot construction), `store` swaps the pointer under the write lock.
/// Readers therefore never observe a half-updated value and never block
/// while a writer *builds* a new snapshot — only during the pointer swap
/// itself.
#[derive(Debug, Default)]
pub struct ArcSwap<T> {
    inner: RwLock<Arc<T>>,
}

impl<T> ArcSwap<T> {
    /// Wraps an already-allocated snapshot.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            inner: RwLock::new(value),
        }
    }

    /// Allocates the initial snapshot from a plain value
    /// (`arc_swap::ArcSwap::from_pointee`).
    pub fn from_pointee(value: T) -> Self {
        ArcSwap::new(Arc::new(value))
    }

    /// Returns the current snapshot. The returned `Arc` stays valid (and
    /// unchanged) however many `store`s happen afterwards.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.inner.read())
    }

    /// Publishes a new snapshot; current readers keep the one they loaded.
    pub fn store(&self, value: Arc<T>) {
        *self.inner.write() = value;
    }

    /// Swaps in a new snapshot, returning the previous one.
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        std::mem::replace(&mut self.inner.write(), value)
    }
}

/// An [`ArcSwap`] that tags every published snapshot with a monotonically
/// increasing generation number.
///
/// The engine keys its query-result cache by the cube snapshot the result
/// was computed from. Reading the snapshot and its generation must be
/// atomic — loading them from two separate cells could pair a new cube
/// with an old generation and poison the cache with results attributed to
/// the wrong snapshot — so both live under one lock and
/// [`VersionedSwap::load_versioned`] returns them as a consistent pair.
#[derive(Debug)]
pub struct VersionedSwap<T> {
    inner: RwLock<(u64, Arc<T>)>,
}

impl<T> VersionedSwap<T> {
    /// Wraps an already-allocated snapshot as generation 0.
    pub fn new(value: Arc<T>) -> Self {
        VersionedSwap {
            inner: RwLock::new((0, value)),
        }
    }

    /// Allocates the initial (generation 0) snapshot from a plain value.
    pub fn from_pointee(value: T) -> Self {
        VersionedSwap::new(Arc::new(value))
    }

    /// Returns the current snapshot.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.inner.read().1)
    }

    /// Returns the current `(generation, snapshot)` pair, read atomically.
    pub fn load_versioned(&self) -> (u64, Arc<T>) {
        let guard = self.inner.read();
        (guard.0, Arc::clone(&guard.1))
    }

    /// The generation of the currently published snapshot.
    pub fn generation(&self) -> u64 {
        self.inner.read().0
    }

    /// Publishes a new snapshot, bumping the generation; returns the new
    /// generation. Current readers keep the pair they loaded.
    pub fn store(&self, value: Arc<T>) -> u64 {
        let mut guard = self.inner.write();
        guard.0 += 1;
        guard.1 = value;
        guard.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn load_store_round_trip() {
        let swap = ArcSwap::from_pointee(1);
        assert_eq!(*swap.load(), 1);
        let old = swap.load();
        swap.store(Arc::new(2));
        assert_eq!(*swap.load(), 2);
        // The snapshot loaded before the store is unaffected.
        assert_eq!(*old, 1);
        assert_eq!(*swap.swap(Arc::new(3)), 2);
    }

    #[test]
    fn versioned_swap_pairs_generation_with_snapshot() {
        let swap = VersionedSwap::from_pointee("a");
        assert_eq!(swap.generation(), 0);
        let (gen0, first) = swap.load_versioned();
        assert_eq!((gen0, *first), (0, "a"));
        assert_eq!(swap.store(Arc::new("b")), 1);
        assert_eq!(swap.store(Arc::new("c")), 2);
        let (generation, value) = swap.load_versioned();
        assert_eq!((generation, *value), (2, "c"));
        assert_eq!(*swap.load(), "c");
        // The pair loaded before the stores is unaffected.
        assert_eq!(*first, "a");
    }

    #[test]
    fn versioned_swap_loads_are_atomic_pairs() {
        let swap = Arc::new(VersionedSwap::from_pointee(0u64));
        let writer = {
            let swap = Arc::clone(&swap);
            thread::spawn(move || {
                for i in 1..=500u64 {
                    swap.store(Arc::new(i));
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let swap = Arc::clone(&swap);
                thread::spawn(move || {
                    for _ in 0..500 {
                        // Every publish stores generation == value, so a
                        // torn read would break this invariant.
                        let (generation, value) = swap.load_versioned();
                        assert_eq!(generation, *value);
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for reader in readers {
            reader.join().unwrap();
        }
    }

    #[test]
    fn concurrent_readers_see_consistent_snapshots() {
        let swap = Arc::new(ArcSwap::from_pointee((0u64, 0u64)));
        let writer = {
            let swap = Arc::clone(&swap);
            thread::spawn(move || {
                for i in 1..=1_000u64 {
                    swap.store(Arc::new((i, i * 2)));
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let swap = Arc::clone(&swap);
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        let snapshot = swap.load();
                        // Invariant of every published snapshot.
                        assert_eq!(snapshot.1, snapshot.0 * 2);
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for reader in readers {
            reader.join().unwrap();
        }
    }
}
