//! Human-readable summaries of what personalization did.

use sdwp_model::SchemaDiff;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A summary of the personalization applied for one user at session start:
/// which rules fired, how the schema changed (MD → GeoMD), how many
/// instances were selected and what fraction of the facts remains visible.
///
/// This is the report a web front-end would show a decision maker ("your
/// view has been tailored to the stores near you") and the artefact
/// EXPERIMENTS.md quotes when reproducing Fig. 1 / Fig. 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersonalizationReport {
    /// The decision maker the report is about.
    pub user: String,
    /// Number of rules whose event matched.
    pub rules_matched: usize,
    /// Names of the rules that actually had an effect.
    pub rules_with_effects: Vec<String>,
    /// The schema delta (added layers, levels made spatial).
    pub schema_diff: SchemaDiff,
    /// Number of selected members per dimension.
    pub selected_members: BTreeMap<String, usize>,
    /// Fact rows visible through the personalized view, per fact.
    pub visible_facts: BTreeMap<String, usize>,
    /// Total fact rows, per fact.
    pub total_facts: BTreeMap<String, usize>,
}

impl PersonalizationReport {
    /// The fraction of fact rows still visible for a fact (1.0 when the
    /// fact is unknown or empty).
    pub fn visibility_ratio(&self, fact: &str) -> f64 {
        let total = self.total_facts.get(fact).copied().unwrap_or(0);
        if total == 0 {
            return 1.0;
        }
        let visible = self.visible_facts.get(fact).copied().unwrap_or(total);
        visible as f64 / total as f64
    }

    /// Returns `true` when the session received any personalization at all.
    pub fn is_personalized(&self) -> bool {
        !self.rules_with_effects.is_empty()
    }
}

impl fmt::Display for PersonalizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Personalization report for '{}'", self.user)?;
        writeln!(
            f,
            "  rules matched: {}, with effects: {}",
            self.rules_matched,
            if self.rules_with_effects.is_empty() {
                "none".to_string()
            } else {
                self.rules_with_effects.join(", ")
            }
        )?;
        let diff = self.schema_diff.to_string();
        for line in diff.lines() {
            writeln!(f, "  schema {line}")?;
        }
        for (dimension, count) in &self.selected_members {
            writeln!(f, "  selected {count} member(s) of dimension '{dimension}'")?;
        }
        for (fact, total) in &self.total_facts {
            let visible = self.visible_facts.get(fact).copied().unwrap_or(*total);
            writeln!(
                f,
                "  fact '{fact}': {visible} of {total} rows visible ({:.1}%)",
                self.visibility_ratio(fact) * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PersonalizationReport {
        PersonalizationReport {
            user: "regional-manager".into(),
            rules_matched: 3,
            rules_with_effects: vec!["addSpatiality".into(), "5kmStores".into()],
            schema_diff: SchemaDiff::default(),
            selected_members: BTreeMap::from([("Store".to_string(), 4)]),
            visible_facts: BTreeMap::from([("Sales".to_string(), 40)]),
            total_facts: BTreeMap::from([("Sales".to_string(), 200)]),
        }
    }

    #[test]
    fn visibility_ratio() {
        let r = report();
        assert!((r.visibility_ratio("Sales") - 0.2).abs() < 1e-12);
        assert_eq!(r.visibility_ratio("Returns"), 1.0);
        assert!(r.is_personalized());
    }

    #[test]
    fn display_mentions_key_facts() {
        let text = report().to_string();
        assert!(text.contains("regional-manager"));
        assert!(text.contains("addSpatiality, 5kmStores"));
        assert!(text.contains("40 of 200 rows visible"));
        assert!(text.contains("20.0%"));
        assert!(text.contains("selected 4 member(s) of dimension 'Store'"));
    }

    #[test]
    fn unpersonalized_report() {
        let mut r = report();
        r.rules_with_effects.clear();
        assert!(!r.is_personalized());
        assert!(r.to_string().contains("with effects: none"));
    }
}
