//! Offline stand-in for `serde`.
//!
//! The workspace builds without network access, so the real serde cannot be
//! fetched from crates.io. Application code keeps its `Serialize` /
//! `Deserialize` derives and bounds; here both traits are markers with
//! blanket impls, and the re-exported derive macros expand to nothing.
//! Replacing this stub with the real serde is a manifest-only change.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; every type satisfies it.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; every type satisfies it.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
