//! Offline stand-in for `criterion`.
//!
//! The workspace builds without a crates.io mirror, so the real criterion is
//! unavailable; this crate keeps the bench files compiling *and running*
//! under `cargo bench` with the same API surface (`criterion_group!`,
//! `benchmark_group`, `bench_with_input`, `iter_batched`, throughput, …).
//! Measurement is a plain wall-clock sampler: per sample it runs an
//! auto-calibrated number of iterations and reports min / mean / max
//! per-iteration time. No statistics, plots or comparisons — swap the real
//! criterion back in via Cargo.toml when a registry is reachable.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (API subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(900),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration run before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget a benchmark aims to fill.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.clone();
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            config,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let config = self.clone();
        run_benchmark(&config, None, &id.into().label(), None, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    config: Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates from iteration times.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Benchmarks a routine under this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(
            &self.config,
            Some(&self.name),
            &id.into().label(),
            self.throughput.as_ref(),
            f,
        );
        self
    }

    /// Benchmarks a routine parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id made of a function name and the swept parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id that only carries a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Units processed per iteration, used to report a rate.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortises setup cost (accepted for API parity; the
/// stub always times batches of one routine call).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every routine call.
    PerIteration,
}

/// Times routines; handed to every benchmark closure.
pub struct Bencher<'a> {
    config: &'a Criterion,
    samples: Vec<Duration>,
    /// Iterations timed per recorded sample.
    iters_per_sample: u64,
}

impl Bencher<'_> {
    /// Times `routine`, auto-calibrating iterations per sample.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm up and estimate a single iteration.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_deadline {
            black_box(routine());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().div_f64(warm_iters.max(1) as f64);
        let per_sample =
            self.config.measurement_time.as_secs_f64() / self.config.sample_size.max(1) as f64;
        let iters = ((per_sample / est.as_secs_f64().max(1e-9)) as u64).clamp(1, 1_000_000);
        self.iters_per_sample = iters;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine(setup()));
        }
        self.iters_per_sample = 1;
        for _ in 0..self.config.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// `iter_batched` with the historical name.
    pub fn iter_with_setup<I, R>(&mut self, setup: impl FnMut() -> I, routine: impl FnMut(I) -> R) {
        self.iter_batched(setup, routine, BatchSize::SmallInput);
    }
}

fn run_benchmark(
    config: &Criterion,
    group: Option<&str>,
    label: &str,
    throughput: Option<&Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        config,
        samples: Vec::with_capacity(config.sample_size),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    let full_name = match group {
        Some(g) => format!("{g}/{label}"),
        None => label.to_string(),
    };
    if bencher.samples.is_empty() {
        println!("{full_name:<60} (no samples recorded)");
        return;
    }
    let iters = bencher.iters_per_sample.max(1) as f64;
    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters)
        .collect();
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let mut line = format!(
        "{full_name:<60} time: [{} {} {}]",
        format_time(min),
        format_time(mean),
        format_time(max)
    );
    if let Some(tp) = throughput {
        let (amount, unit) = match tp {
            Throughput::Bytes(n) => (*n as f64, "B"),
            Throughput::Elements(n) => (*n as f64, "elem"),
        };
        let _ = write!(line, "  thrpt: {:.3} M{}/s", amount / mean / 1e6, unit);
    }
    println!("{line}");
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

/// Declares a benchmark group function, in either criterion form:
/// `criterion_group!(name, target, …)` or
/// `criterion_group! { name = n; config = expr; targets = t, … }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15))
    }

    #[test]
    fn bench_function_records_samples() {
        let mut c = fast();
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 4).label(), "f/4");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
        assert_eq!(BenchmarkId::from_parameter(9).label(), "9");
    }
}
