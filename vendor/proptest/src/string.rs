//! Generation of strings matching a small regex subset.
//!
//! Supported syntax — enough for the patterns this workspace's tests use
//! (`"[a-zA-Z][a-zA-Z0-9_]{0,8}"`, `"[a-zA-Z ]{0,12}"`, …):
//!
//! * literal characters (plus `\\`-escapes)
//! * character classes `[a-z0-9_ ]` with ranges and literal members
//! * quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (`*`/`+` capped at 8 repeats)

use crate::TestRng;

#[derive(Debug, Clone)]
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Generates a random string matching `pattern`; panics on syntax outside
/// the supported subset (a test-authoring error, not a runtime condition).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let span = (atom.max - atom.min + 1) as u64;
        let count = atom.min + rng.below(span) as usize;
        for _ in 0..count {
            let pick = rng.below(atom.choices.len() as u64) as usize;
            out.push(atom.choices[pick]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed character class in regex {pattern:?}"))
                    + i;
                let class = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                class
            }
            '\\' => {
                let escaped = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                i += 2;
                vec![escaped]
            }
            '.' => {
                i += 1;
                ('a'..='z').chain('A'..='Z').chain('0'..='9').collect()
            }
            literal => {
                i += 1;
                vec![literal]
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(
        !body.is_empty(),
        "empty character class in regex {pattern:?}"
    );
    let mut choices = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted range in regex {pattern:?}");
            choices.extend(lo..=hi);
            i += 3;
        } else {
            choices.push(body[i]);
            i += 1;
        }
    }
    choices
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed quantifier in regex {pattern:?}"))
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            match body.split_once(',') {
                Some((min, max)) => (
                    min.trim().parse().expect("quantifier minimum"),
                    max.trim().parse().expect("quantifier maximum"),
                ),
                None => {
                    let exact = body.trim().parse().expect("quantifier count");
                    (exact, exact)
                }
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_pattern() {
        let mut rng = TestRng::for_test("identifier_pattern");
        for _ in 0..200 {
            let s = generate_matching("[a-zA-Z][a-zA-Z0-9_]{0,8}", &mut rng);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_alphabetic());
            assert!(s.len() <= 9);
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn literal_and_escape() {
        let mut rng = TestRng::for_test("literal_and_escape");
        assert_eq!(generate_matching("abc", &mut rng), "abc");
        assert_eq!(generate_matching(r"a\[b", &mut rng), "a[b");
    }

    #[test]
    fn spaces_in_class() {
        let mut rng = TestRng::for_test("spaces_in_class");
        for _ in 0..100 {
            let s = generate_matching("[a-zA-Z ]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphabetic() || c == ' '));
        }
    }
}
