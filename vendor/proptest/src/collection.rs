//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::Range;

/// The element-count range of a collection strategy.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

/// A strategy producing `Vec`s of values drawn from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors with `size ∈ size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            // Retry rejected elements a few times before rejecting the
            // whole collection, so sparse filters still make progress.
            let mut element = None;
            for _ in 0..16 {
                if let Some(v) = self.element.generate(rng) {
                    element = Some(v);
                    break;
                }
            }
            values.push(element?);
        }
        Some(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_size_range() {
        let strategy = vec(0u32..5, 2..6);
        let mut rng = TestRng::for_test("respects_size_range");
        for _ in 0..100 {
            let v = strategy.generate(&mut rng).unwrap();
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
