//! Numeric strategies (`prop::num::f64::NORMAL` and friends).

/// `f64` strategies.
pub mod f64 {
    use crate::{Strategy, TestRng};

    /// Strategy for normal (finite, non-zero, non-subnormal) `f64` values.
    #[derive(Debug, Clone, Copy)]
    pub struct NormalStrategy;

    /// Generates normal `f64` values across many magnitudes.
    pub const NORMAL: NormalStrategy = NormalStrategy;

    impl Strategy for NormalStrategy {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> Option<f64> {
            // sign * mantissa in [1, 2) * 2^exp with a wide exponent sweep;
            // always a normal float, never zero / inf / NaN.
            let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
            let mantissa = 1.0 + rng.next_f64();
            let exp = rng.below(121) as i32 - 60;
            Some(sign * mantissa * (exp as f64).exp2())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn always_normal() {
            let mut rng = TestRng::for_test("always_normal");
            for _ in 0..1_000 {
                let v = NORMAL.generate(&mut rng).unwrap();
                assert!(v.is_normal(), "{v} is not a normal float");
            }
        }
    }
}
