//! Offline stand-in for `proptest`.
//!
//! The workspace builds without a crates.io mirror, so the real proptest is
//! unavailable. This crate re-implements the strategy DSL subset the test
//! suite uses — `proptest!`, `prop_oneof!`, `Just`, `any`, ranges, regex
//! string strategies, `prop_map` / `prop_filter_map` / `prop_recursive`,
//! `prop::collection::vec`, `prop::num::f64::NORMAL` — over a deterministic
//! per-test RNG. Failing cases are reported with their generated inputs'
//! `Debug` output; there is **no shrinking**. Swapping the real proptest
//! back in is a manifest-only change.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod collection;
pub mod num;
pub mod string;

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Namespaced re-exports (`prop::collection::vec`, `prop::num::f64::…`),
/// mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::num;
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// The deterministic generator driving a property test (xoshiro256++
/// seeded from the test's name, so every run explores the same cases).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// A generator seeded from a test name.
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(hash)
    }

    /// A generator with an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [mut s0, mut s1, mut s2, mut s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// A uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample below 0");
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let draw = self.next_u64();
            if draw < zone || zone == 0 {
                return draw % n;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of random values of one type.
///
/// `generate` returns `None` when the drawn candidate was rejected (by
/// `prop_filter_map` and friends); the runner retries with fresh
/// randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` on rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f`, rejecting those mapped to `None`.
    fn prop_filter_map<U, F>(self, _reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, f }
    }

    /// Rejects generated values failing the predicate.
    fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Builds a bounded-depth recursive strategy: `recurse` receives the
    /// strategy for the next-shallower level and returns the strategy for
    /// the current one. Depth is capped at `depth` levels; the extra sizing
    /// hints of real proptest are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            // Mix in the base at every level so generation terminates early
            // with leaf values some of the time.
            current = Union::new(vec![base.clone(), recurse(current).boxed()]).boxed();
        }
        current
    }

    /// Type-erases the strategy behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.generate(rng)
    }
}

/// A cloneable, type-erased strategy handle.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// A uniform choice between type-erased strategies (the engine behind
/// [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics when empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<A> {
    _marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> Option<A> {
        Some(A::arbitrary(rng))
    }
}

/// The canonical strategy for any value of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "cannot sample empty range");
        Some(self.start + rng.next_f64() * (self.end - self.start))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> Option<f32> {
        assert!(self.start < self.end, "cannot sample empty range");
        Some(self.start + rng.next_f64() as f32 * (self.end - self.start))
    }
}

macro_rules! impl_strategy_int_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> Option<$ty> {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                Some((self.start as i128 + rng.below(span) as i128) as $ty)
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> Option<$ty> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                Some((start as i128 + rng.below(span) as i128) as $ty)
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals act as regex-subset strategies generating matching
/// strings (see [`string::generate_matching`] for the supported subset).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> Option<String> {
        Some(string::generate_matching(self, rng))
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 100 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A property failure: the message carried out of a failing case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Historical alias of [`TestCaseError::fail`].
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests over generated inputs; supports the
/// `#![proptest_config(…)]` header of real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let strategy = ($($strategy,)+);
                let mut accepted: u32 = 0;
                let mut attempts: u64 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    if attempts > u64::from(config.cases) * 200 + 1000 {
                        panic!(
                            "proptest {}: too many rejected generations ({} attempts for {} cases)",
                            stringify!($name), attempts, config.cases
                        );
                    }
                    let ($($arg,)+) = match $crate::Strategy::generate(&strategy, &mut rng) {
                        ::std::option::Option::Some(values) => values,
                        ::std::option::Option::None => continue,
                    };
                    let case: $crate::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(error) = case {
                        panic!(
                            "proptest {} failed at case {}:\n{}",
                            stringify!($name), accepted + 1, error
                        );
                    }
                    accepted += 1;
                }
            }
        )*
    };
}

/// Uniformly picks one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property (operands are borrowed, not moved).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}"
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                left, right, format!($($fmt)+)
            ),
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left != *right,
                "assertion failed: `left != right`\n  left: {left:?}\n right: {right:?}"
            ),
        }
    };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_and_ranges_generate() {
        let mut rng = crate::TestRng::for_test("union_and_ranges_generate");
        let strategy = prop_oneof![(0u32..10).prop_map(|n| n as u64), Just(99u64)];
        for _ in 0..200 {
            let v = strategy.generate(&mut rng).unwrap();
            assert!(v < 10 || v == 99);
        }
    }

    #[test]
    fn recursion_is_bounded() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u32),
            Node(Vec<Tree>),
        }
        let strategy = (0u32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = crate::TestRng::for_test("recursion_is_bounded");
        for _ in 0..100 {
            let t = strategy.generate(&mut rng).unwrap();
            assert!(depth(&t) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(x in 0usize..50, flag in any::<bool>(), s in "[a-z]{1,4}") {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert_ne!(x, 13);
            prop_assert_eq!(flag, flag);
            prop_assert!(!s.is_empty() && s.len() <= 4, "bad string {s:?}");
        }
    }
}
