//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the non-poisoning `Mutex` / `RwLock` API the code base relies on
//! (`lock()` / `read()` / `write()` return guards directly). Poisoning is
//! resolved by taking over the poisoned guard: a panic mid-critical-section
//! in another thread does not permanently wedge the lock, matching
//! parking_lot semantics closely enough for this workspace.

#![warn(missing_docs)]

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A non-poisoning mutual-exclusion lock (API subset of `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A non-poisoning readers-writer lock (API subset of
/// `parking_lot::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
