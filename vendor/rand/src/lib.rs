//! Offline stand-in for `rand`, covering the API subset this workspace
//! uses: `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `Rng::gen_range` over half-open and inclusive integer/float ranges.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — deterministic
//! for a given seed on every platform, which the workload generators rely
//! on for reproducible scenarios.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The API subset of `rand::Rng` used by this workspace.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Samples a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// The raw generation primitives every generator provides.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the next word, scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that a uniform value can be sampled from.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// Draws uniformly from `[0, n)` without modulo bias (Lemire's method
/// simplified to rejection sampling on the top bits).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample empty range");
    let zone = u64::MAX - (u64::MAX % n.max(1));
    loop {
        let draw = rng.next_u64();
        if draw < zone || zone == 0 {
            return draw % n;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + uniform_below(rng, span) as i128) as $ty
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Commonly used generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded through
    /// splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let f = rng.gen_range(2.0..10.0);
            assert!((2.0..10.0).contains(&f));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(2..=5i64);
            assert!((2..=5).contains(&j));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0..u64::MAX) == b.gen_range(0..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
