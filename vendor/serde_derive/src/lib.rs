//! Offline stand-in for `serde_derive`.
//!
//! This workspace builds in environments without a crates.io mirror, so the
//! real serde cannot be fetched. The code base keeps its `#[derive(Serialize,
//! Deserialize)]` annotations (and `#[serde(...)]` attributes) as declared
//! intent; this crate accepts that syntax and expands to nothing. The sibling
//! `serde` stub supplies blanket trait impls, so `T: Serialize` bounds still
//! hold. Swapping in the real serde is a Cargo.toml change only.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (including `#[serde(...)]` helper
/// attributes) and generates no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (including `#[serde(...)]` helper
/// attributes) and generates no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
