//! # SDWP — Web-based personalization on spatial data warehouses
//!
//! A from-scratch Rust reproduction of *Using Web-based Personalization on
//! Spatial Data Warehouses* (Glorio, Mazón, Garrigós, Trujillo — EDBT
//! 2010): a multidimensional / geographic-multidimensional conceptual
//! model, a spatial-aware user model, the PRML rule language adapted to
//! spatial data warehouses, and the personalization engine that ties them
//! together on top of an in-memory spatial OLAP substrate.
//!
//! This crate is a thin facade re-exporting the workspace crates under one
//! name. Start with [`core::PersonalizationEngine`] and the
//! `examples/quickstart.rs` example.
//!
//! Every engine method takes `&self`, so one engine serves many
//! concurrent sessions — share it through an `Arc` (or a cloned
//! [`core::WebFacade`]) across worker threads:
//!
//! ```
//! use sdwp::datagen::{PaperScenario, ScenarioConfig};
//! use sdwp::core::PersonalizationEngine;
//! use sdwp::prml::corpus::EXAMPLE_5_1_ADD_SPATIALITY;
//! use std::sync::Arc;
//!
//! let scenario = PaperScenario::generate(ScenarioConfig::tiny());
//! let engine = Arc::new(PersonalizationEngine::with_layer_source(
//!     scenario.cube.clone(),
//!     Arc::new(scenario.layer_source()),
//! ));
//! engine.register_user(scenario.manager.clone());
//! engine.add_rules_text(EXAMPLE_5_1_ADD_SPATIALITY).unwrap();
//!
//! // Sessions can start (and query) from any number of threads.
//! let worker = {
//!     let engine = Arc::clone(&engine);
//!     std::thread::spawn(move || engine.start_session("regional-manager", None).unwrap())
//! };
//! let session = worker.join().unwrap();
//! assert!(engine.cube().schema().layer("Airport").is_some());
//! assert!(session.report.is_personalized());
//! ```

#![warn(missing_docs)]

/// The personalization engine (the paper's primary contribution).
pub use sdwp_core as core;
/// Synthetic workload generation (the paper's running example at scale).
pub use sdwp_datagen as datagen;
/// Computational geometry and the paper's spatial operators.
pub use sdwp_geometry as geometry;
/// Spatial indexes (R-tree, uniform grid).
pub use sdwp_index as index;
/// Streaming ingestion (epoch-batched fact deltas, atomic snapshots).
pub use sdwp_ingest as ingest;
/// The MD / GeoMD conceptual models.
pub use sdwp_model as model;
/// Observability: metrics registry, stage spans, slow-query journal.
pub use sdwp_obs as obs;
/// The in-memory spatial OLAP engine.
pub use sdwp_olap as olap;
/// The PRML rule language adapted to SDW.
pub use sdwp_prml as prml;
/// The spatial-aware user model (SUS).
pub use sdwp_user as user;
