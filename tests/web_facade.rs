//! Integration test of the web-facing request/response flow (the
//! "web-based" part of the paper's title) plus a concurrency smoke test of
//! the shared profile store.

use sdwp::core::{PersonalizationEngine, WebFacade, WebRequest, WebResponse};
use sdwp::datagen::{PaperScenario, ScenarioConfig};
use sdwp::prml::corpus::ALL_PAPER_RULES;
use sdwp::user::{Characteristic, Role, UserProfile};
use std::sync::Arc;

fn facade(scenario: &PaperScenario) -> WebFacade {
    let engine = PersonalizationEngine::with_layer_source(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
    );
    engine.register_user(scenario.manager.clone());
    engine.register_user(
        UserProfile::new("analyst", "Ana Lyst")
            .with_role(Role::new("Analyst"))
            .with_characteristic(Characteristic::new("language", "en")),
    );
    engine.set_parameter("threshold", 2.0);
    for rule in ALL_PAPER_RULES {
        engine.add_rules_text(rule).expect("paper rule registers");
    }
    WebFacade::new(engine)
}

#[test]
fn two_users_get_different_views() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let mut facade = facade(&scenario);
    let store = &scenario.retail.stores[0];

    // The regional sales manager logs in next to a store: personalized.
    let manager_session = match facade.handle(WebRequest::Login {
        user: "regional-manager".into(),
        location: Some((store.location.x(), store.location.y())),
        class: None,
    }) {
        WebResponse::LoggedIn { session, report } => {
            assert!(report.is_personalized());
            assert!(!report.schema_diff.added_layers.is_empty());
            session
        }
        other => panic!("unexpected {other:?}"),
    };

    // The analyst logs in from far away with a different role.
    let analyst_session = match facade.handle(WebRequest::Login {
        user: "analyst".into(),
        location: Some((9_999.0, 9_999.0)),
        class: None,
    }) {
        WebResponse::LoggedIn { session, report } => {
            // No store near the analyst: everything filtered out.
            assert_eq!(report.visible_facts.get("Sales"), Some(&0));
            session
        }
        other => panic!("unexpected {other:?}"),
    };

    // The manager sees some rows, the analyst sees none.
    let aggregate = |facade: &mut WebFacade, session| {
        facade.handle(WebRequest::Aggregate {
            session,
            fact: "Sales".into(),
            measure: "UnitSales".into(),
            group_by: vec![("Store".into(), "City".into(), "name".into())],
            deadline_micros: None,
        })
    };
    match aggregate(&mut facade, manager_session) {
        WebResponse::Table { facts_matched, .. } => assert!(facts_matched > 0),
        other => panic!("unexpected {other:?}"),
    }
    match aggregate(&mut facade, analyst_session) {
        WebResponse::Table {
            facts_matched,
            rows,
            ..
        } => {
            assert_eq!(facts_matched, 0);
            assert!(rows.is_empty());
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn selections_update_the_profile_until_logout() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let facade = facade(&scenario);
    let store = &scenario.retail.stores[0];
    let session = match facade.handle(WebRequest::Login {
        user: "regional-manager".into(),
        location: Some((store.location.x(), store.location.y())),
        class: None,
    }) {
        WebResponse::LoggedIn { session, .. } => session,
        other => panic!("unexpected {other:?}"),
    };
    for _ in 0..2 {
        match facade.handle(WebRequest::SpatialSelection {
            session,
            element: "GeoMD.Store.City".into(),
            expression: None,
        }) {
            WebResponse::SelectionRecorded { rules_matched } => assert_eq!(rules_matched, 1),
            other => panic!("unexpected {other:?}"),
        }
    }
    let profile = facade.engine().user_profile("regional-manager").unwrap();
    assert_eq!(profile.interest("AirportCity").unwrap().degree, 2.0);

    assert_eq!(
        facade.handle(WebRequest::Logout { session }),
        WebResponse::LoggedOut
    );
    // After logout the session is rejected.
    match facade.handle(WebRequest::Aggregate {
        session,
        fact: "Sales".into(),
        measure: "UnitSales".into(),
        group_by: vec![],
        deadline_micros: None,
    }) {
        WebResponse::Table { .. } => panic!("query should not run on an ended session"),
        WebResponse::Error { .. } => {}
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn profile_store_is_shared_across_threads() {
    // The ProfileStore is the piece shared between concurrent web workers;
    // verify cross-thread visibility of SetContent-style updates.
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let engine = {
        let engine = PersonalizationEngine::new(scenario.cube.clone());
        engine.register_user(scenario.manager.clone());
        engine
    };
    let store = engine.profiles().clone();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let store = store.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    store
                        .update("regional-manager", |p| {
                            p.interest_mut("AirportCity").increment();
                        })
                        .unwrap();
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let profile = store.get("regional-manager").unwrap();
    assert_eq!(profile.interest("AirportCity").unwrap().degree, 200.0);
}
