//! End-to-end reproduction of the paper's Fig. 1 process and of the three
//! worked examples (5.1, 5.2, 5.3), exercised across every crate of the
//! workspace through the public facade.

use sdwp::core::PersonalizationEngine;
use sdwp::datagen::{PaperScenario, ScenarioConfig};
use sdwp::olap::{AttributeRef, Query};
use sdwp::prml::corpus::*;
use sdwp::prml::{check_rules, parse_rule, parse_rules, RuleClass};
use sdwp::user::LocationContext;
use std::sync::Arc;

fn build_engine(scenario: &PaperScenario, threshold: f64) -> PersonalizationEngine {
    let engine = PersonalizationEngine::with_layer_source(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
    );
    engine.register_user(scenario.manager.clone());
    engine.set_parameter("threshold", threshold);
    for rule in ALL_PAPER_RULES {
        engine.add_rules_text(rule).expect("paper rule registers");
    }
    engine
}

fn near_store(scenario: &PaperScenario, index: usize) -> LocationContext {
    let store = &scenario.retail.stores[index];
    LocationContext::at_point("office", store.location.x(), store.location.y())
}

#[test]
fn paper_rule_set_parses_and_classifies() {
    let all_text = ALL_PAPER_RULES.join("\n");
    let rules = parse_rules(&all_text).expect("the whole corpus parses together");
    assert_eq!(rules.len(), 4);
    let schema = sdwp::datagen::scenario::sales_schema();
    let classes = check_rules(&rules, &schema).expect("the corpus validates");
    assert_eq!(
        classes,
        vec![
            RuleClass::Schema,
            RuleClass::Instance,
            RuleClass::Acquisition,
            RuleClass::Schema,
        ]
    );
}

#[test]
fn figure_1_pipeline_end_to_end() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let engine = build_engine(&scenario, 2.0);

    // Stage 1+2 happen at session start: schema rules then instance rules.
    let session = engine
        .start_session("regional-manager", Some(near_store(&scenario, 0)))
        .expect("session starts");
    let diff = engine.schema_diff();
    assert!(diff.added_layers.iter().any(|(n, _)| n == "Airport"));
    assert!(diff
        .levels_become_spatial
        .iter()
        .any(|(_, level, _)| level == "Store"));

    // The personalized view only exposes the nearby stores' facts.
    let report = &session.report;
    assert!(report.is_personalized());
    let visible = report.visible_facts.get("Sales").copied().unwrap();
    let total = report.total_facts.get("Sales").copied().unwrap();
    assert!(visible <= total);
    assert!(visible > 0, "the manager is standing next to a store");

    // Queries through the session agree with the view counts.
    let query = Query::over("Sales").measure("UnitSales");
    let personalized = engine.query(session.id, &query).unwrap();
    assert_eq!(personalized.facts_scanned, visible);
    let full = engine.query_unpersonalized(&query).unwrap();
    assert_eq!(full.facts_scanned, total);
}

#[test]
fn example_5_2_selection_matches_ground_truth() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let engine = build_engine(&scenario, 100.0);
    let location = near_store(&scenario, 3);
    let session = engine
        .start_session("regional-manager", Some(location.clone()))
        .unwrap();

    // Ground truth: stores strictly within 5 km of the location.
    let user_point = location.geometry.as_point().unwrap();
    let expected: std::collections::BTreeSet<usize> = scenario
        .retail
        .stores
        .iter()
        .enumerate()
        .filter(|(_, s)| s.location.distance(user_point) < 5.0)
        .map(|(i, _)| i)
        .collect();
    let view = engine.session_view(session.id).unwrap();
    let selected = view.selected_members("Store").expect("Store restricted");
    assert_eq!(selected, &expected);
}

#[test]
fn example_5_3_threshold_behaviour_across_sessions() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let engine = build_engine(&scenario, 2.0);

    // Below the threshold nothing extra happens.
    let first = engine
        .start_session("regional-manager", Some(near_store(&scenario, 0)))
        .unwrap();
    assert!(engine.cube().schema().layer("Train").is_none());

    // The user selects cities near airports three times (> threshold of 2).
    for _ in 0..3 {
        engine
            .record_spatial_selection(first.id, "GeoMD.Store.City", None)
            .unwrap();
    }
    let degree = engine
        .user_profile("regional-manager")
        .unwrap()
        .interest("AirportCity")
        .unwrap()
        .degree;
    assert_eq!(degree, 3.0);
    engine.end_session(first.id).unwrap();

    // The interest persists across sessions; the next login adds the Train
    // layer and keeps the train-connected cities.
    let second = engine
        .start_session("regional-manager", Some(near_store(&scenario, 0)))
        .unwrap();
    assert!(engine.cube().schema().layer("Train").is_some());
    assert!(second
        .report
        .schema_diff
        .added_layers
        .iter()
        .any(|(n, _)| n == "Train"));
}

#[test]
fn personalization_is_deterministic_across_runs() {
    let run = || {
        let scenario = PaperScenario::generate(ScenarioConfig::tiny());
        let engine = build_engine(&scenario, 2.0);
        let session = engine
            .start_session("regional-manager", Some(near_store(&scenario, 0)))
            .unwrap();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales");
        engine.query(session.id, &query).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn rules_can_be_pretty_printed_and_reparsed() {
    for text in ALL_PAPER_RULES {
        let rule = parse_rule(text).unwrap();
        let printed = sdwp::prml::print_rule(&rule);
        let reparsed = parse_rule(&printed).unwrap();
        assert_eq!(rule, reparsed);
    }
}
