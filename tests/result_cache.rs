//! End-to-end behaviour of the snapshot-keyed query-result cache: repeat
//! queries hit, rule firings that publish a new cube snapshot miss, and
//! sessions with different personalized views never see each other's
//! cached results.

use sdwp::core::PersonalizationEngine;
use sdwp::datagen::{PaperScenario, ScenarioConfig};
use sdwp::olap::{AttributeRef, ExecutionConfig, Query};
use sdwp::prml::corpus::ALL_PAPER_RULES;
use sdwp::user::LocationContext;
use std::sync::Arc;

fn engine_with_rules() -> (PersonalizationEngine, PaperScenario) {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny().with_seed(2024));
    let engine = PersonalizationEngine::with_layer_source(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
    );
    engine.register_user(scenario.manager.clone());
    engine.set_parameter("threshold", 2.0);
    for rule in ALL_PAPER_RULES {
        engine.add_rules_text(rule).unwrap();
    }
    (engine, scenario)
}

fn near_store(scenario: &PaperScenario, store: usize) -> LocationContext {
    let location = scenario.retail.stores[store].location;
    LocationContext::at_point("office", location.x() + 0.5, location.y())
}

fn city_query() -> Query {
    Query::over("Sales")
        .group_by(AttributeRef::new("Store", "City", "name"))
        .measure("UnitSales")
}

#[test]
fn identical_repeat_query_hits() {
    let (engine, scenario) = engine_with_rules();
    let session = engine
        .start_session("regional-manager", Some(near_store(&scenario, 0)))
        .unwrap();
    let query = city_query();
    let first = engine.query(session.id, &query).unwrap();
    assert_eq!(engine.cache_stats().hits, 0);
    let second = engine.query(session.id, &query).unwrap();
    assert_eq!(first, second);
    let stats = engine.cache_stats();
    assert_eq!(stats.hits, 1, "identical repeat query must hit: {stats:?}");
    assert!(stats.entries >= 1);
}

#[test]
fn rule_publish_invalidates_and_misses() {
    let (engine, scenario) = engine_with_rules();
    let session = engine
        .start_session("regional-manager", Some(near_store(&scenario, 0)))
        .unwrap();
    let query = city_query();
    engine.query(session.id, &query).unwrap();
    engine.query(session.id, &query).unwrap();
    let before = engine.cache_stats();
    let generation_before = engine.cube_generation();

    // Three AirportCity selections push the interest degree over the
    // threshold; the next SessionStart fires TrainAirportCity, which adds
    // the Train layer and publishes a new cube snapshot.
    for _ in 0..3 {
        engine
            .record_spatial_selection(session.id, "GeoMD.Store.City", None)
            .unwrap();
    }
    engine.end_session(session.id).unwrap();
    let renewed = engine
        .start_session("regional-manager", Some(near_store(&scenario, 0)))
        .unwrap();
    assert!(
        engine.cube_generation() > generation_before,
        "the Train-layer rule must publish a new snapshot"
    );

    // Same query, new snapshot: must execute again, not hit stale state.
    engine.query(renewed.id, &query).unwrap();
    let after = engine.cache_stats();
    assert_eq!(after.hits, before.hits, "no hit across a publish");
    assert!(
        after.invalidations > 0,
        "publishing must invalidate stale entries: {after:?}"
    );
}

#[test]
fn sessions_with_different_views_never_share_entries() {
    let (engine, scenario) = engine_with_rules();
    // Two managers logging in from different stores get different
    // personalized views (the 5 km SelectInstance rule).
    let near = engine
        .start_session("regional-manager", Some(near_store(&scenario, 0)))
        .unwrap();
    let far_store = scenario.retail.stores.len() - 1;
    let far = engine
        .start_session("regional-manager", Some(near_store(&scenario, far_store)))
        .unwrap();
    let view_near = engine.session_view(near.id).unwrap();
    let view_far = engine.session_view(far.id).unwrap();
    assert_ne!(
        *view_near, *view_far,
        "scenario must give the two sessions different views"
    );

    let query = city_query();
    let result_near = engine.query(near.id, &query).unwrap();
    // The second session's first query must MISS (different view), then
    // compute its own personalized result.
    let hits_before = engine.cache_stats().hits;
    let result_far = engine.query(far.id, &query).unwrap();
    assert_eq!(
        engine.cache_stats().hits,
        hits_before,
        "a different view must never hit another session's entry"
    );
    assert_ne!(
        result_near, result_far,
        "different views should produce different personalized results"
    );

    // Each session still hits its own entry on repeat.
    assert_eq!(engine.query(near.id, &query).unwrap(), result_near);
    assert_eq!(engine.query(far.id, &query).unwrap(), result_far);
    assert_eq!(engine.cache_stats().hits, hits_before + 2);
}

#[test]
fn unpersonalized_and_personalized_results_are_cached_separately() {
    let (engine, scenario) = engine_with_rules();
    let session = engine
        .start_session("regional-manager", Some(near_store(&scenario, 0)))
        .unwrap();
    let query = city_query();
    let personalized = engine.query(session.id, &query).unwrap();
    let full = engine.query_unpersonalized(&query).unwrap();
    assert!(personalized.facts_scanned <= full.facts_scanned);
    // Neither lookup may have hit the other's entry.
    assert_eq!(engine.cache_stats().hits, 0);
    assert_eq!(engine.query_unpersonalized(&query).unwrap(), full);
    assert_eq!(engine.cache_stats().hits, 1);
}

#[test]
fn disabled_cache_still_serves_correct_results() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny().with_seed(5));
    let cached = PersonalizationEngine::with_layer_source(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
    );
    let uncached = PersonalizationEngine::with_execution_config(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
        ExecutionConfig::default().with_cache_capacity(0),
    );
    let query = city_query();
    let a = cached.query_unpersonalized(&query).unwrap();
    let b = uncached.query_unpersonalized(&query).unwrap();
    assert_eq!(a, b);
    uncached.query_unpersonalized(&query).unwrap();
    let stats = uncached.cache_stats();
    assert_eq!((stats.hits, stats.entries), (0, 0));
}
