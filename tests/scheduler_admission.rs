//! Integration test of tenant-aware scheduling and admission control
//! through the web facade: best-effort classes shed over budget with a
//! typed retryable [`WebResponse::Overloaded`] (and leave **no** partial
//! state behind), guaranteed classes block instead of shedding, and the
//! scheduler's queue-depth / in-flight / shed series surface through
//! both metrics endpoints.

use sdwp::core::{PersonalizationEngine, TenantPolicy, WebFacade, WebRequest, WebResponse};
use sdwp::datagen::{PaperScenario, ScenarioConfig};
use sdwp::olap::ExecutionConfig;
use sdwp::prml::corpus::ALL_PAPER_RULES;
use std::sync::Arc;
use std::time::Duration;

/// An engine with an explicitly parallel executor, so the shared morsel
/// pool (and with it the admission controller) always exists regardless
/// of the host's core count.
fn facade(scenario: &PaperScenario) -> WebFacade {
    let engine = PersonalizationEngine::with_execution_config(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
        ExecutionConfig::default().with_workers(4),
    );
    engine.register_user(scenario.manager.clone());
    engine.set_parameter("threshold", 2.0);
    for rule in ALL_PAPER_RULES {
        engine.add_rules_text(rule).expect("paper rule registers");
    }
    WebFacade::new(engine)
}

fn login(facade: &WebFacade, class: &str) -> u64 {
    match facade.handle(WebRequest::Login {
        user: "regional-manager".into(),
        location: Some((50.0, 50.0)),
        class: Some(class.into()),
    }) {
        WebResponse::LoggedIn { session, .. } => session,
        other => panic!("unexpected response {other:?}"),
    }
}

fn aggregate(session: u64) -> WebRequest {
    WebRequest::Aggregate {
        session,
        fact: "Sales".into(),
        measure: "UnitSales".into(),
        group_by: vec![("Store".into(), "City".into(), "name".into())],
        deadline_micros: None,
    }
}

fn metrics(facade: &WebFacade) -> sdwp::core::MetricsSnapshot {
    match facade.handle(WebRequest::Metrics) {
        WebResponse::Metrics { snapshot } => snapshot,
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn best_effort_class_sheds_with_typed_response_and_no_partial_state() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let facade = facade(&scenario);
    let class = facade.engine().set_tenant_policy(
        "dashboard",
        TenantPolicy::default().best_effort().with_max_in_flight(1),
    );
    let session = login(&facade, "dashboard");
    let pool = Arc::clone(
        facade
            .engine()
            .morsel_pool()
            .expect("parallel engine has a pool"),
    );

    // Occupy the class's entire in-flight budget, as a concurrent query
    // of the same tenant would.
    let slot = pool
        .try_admit(class)
        .expect("first admission fits the budget");

    // Over budget: the facade answers with the typed retryable
    // rejection, not a generic error.
    match facade.handle(aggregate(session)) {
        WebResponse::Overloaded {
            class,
            in_flight,
            limit,
            ..
        } => {
            assert_eq!(class, "dashboard");
            assert_eq!(in_flight, 1);
            assert_eq!(limit, 1);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // The batch path goes through the same gate.
    let panel = sdwp::olap::Query::over("Sales").measure("UnitSales");
    match facade.handle(WebRequest::QueryBatch {
        session,
        queries: vec![panel],
        deadline_micros: None,
    }) {
        WebResponse::Overloaded { class, .. } => assert_eq!(class, "dashboard"),
        other => panic!("expected Overloaded for the batch, got {other:?}"),
    }

    // A shed query did no work at all: nothing reached the execution
    // stages and nothing was cached, so the later retry is a cache miss.
    let snap = metrics(&facade);
    assert!(
        snap.stage("query_scan", "dashboard").is_none(),
        "a shed query must not scan"
    );
    assert!(
        snap.stage("cache_lookup", "dashboard").is_none(),
        "a shed query must not probe the result cache"
    );
    assert_eq!(facade.engine().cache_stats().entries, 0);

    // Capacity frees (the concurrent query finishes): the identical
    // request now succeeds end to end.
    drop(slot);
    assert!(matches!(
        facade.handle(aggregate(session)),
        WebResponse::Table { .. }
    ));
    // query_total saw the shed aggregate (the end-to-end span records on
    // every exit, errors included) and the successful retry; the shed
    // batch recorded under batch_total instead.
    let after = metrics(&facade);
    assert_eq!(after.stage("query_total", "dashboard").unwrap().count, 2);
    assert_eq!(after.stage("query_scan", "dashboard").unwrap().count, 1);
}

#[test]
fn guaranteed_class_blocks_until_capacity_frees() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let facade = facade(&scenario);
    let class = facade
        .engine()
        .set_tenant_policy("analyst", TenantPolicy::default().with_max_in_flight(1));
    let session = login(&facade, "analyst");
    let pool = Arc::clone(
        facade
            .engine()
            .morsel_pool()
            .expect("parallel engine has a pool"),
    );
    let slot = pool
        .try_admit(class)
        .expect("first admission fits the budget");

    // A guaranteed tenant over budget waits instead of shedding: the
    // query thread parks in admission until the slot frees.
    let blocked = {
        let facade = facade.clone();
        std::thread::spawn(move || facade.handle(aggregate(session)))
    };
    std::thread::sleep(Duration::from_millis(30));
    assert!(
        !blocked.is_finished(),
        "guaranteed admission should block while the budget is exhausted"
    );
    drop(slot);
    match blocked.join().expect("blocked query thread exits cleanly") {
        WebResponse::Table { .. } => {}
        other => panic!("expected Table after capacity freed, got {other:?}"),
    }
    // Nothing was shed along the way.
    assert_eq!(metrics(&facade).counter("scheduler_shed_total"), Some(0));
}

#[test]
fn scheduler_state_surfaces_through_both_metrics_endpoints() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let facade = facade(&scenario);
    let class = facade.engine().set_tenant_policy(
        "dashboard",
        TenantPolicy::default()
            .best_effort()
            .with_weight(3)
            .with_max_in_flight(1),
    );
    let session = login(&facade, "dashboard");
    let pool = Arc::clone(
        facade
            .engine()
            .morsel_pool()
            .expect("parallel engine has a pool"),
    );

    // One successful query, then a shed one.
    assert!(matches!(
        facade.handle(aggregate(session)),
        WebResponse::Table { .. }
    ));
    let slot = pool.try_admit(class).expect("budget admits one");
    assert!(matches!(
        facade.handle(aggregate(session)),
        WebResponse::Overloaded { .. }
    ));
    drop(slot);

    let snap = metrics(&facade);
    let workers = snap.gauge("scheduler_workers").expect("worker gauge");
    assert_eq!(workers, 3, "4-worker executor keeps 3 pool helpers");
    // Per-tenant series exist for the registered class and are quiescent
    // between queries.
    assert_eq!(snap.gauge("scheduler_queue_depth_dashboard"), Some(0));
    assert_eq!(snap.gauge("scheduler_in_flight_dashboard"), Some(0));
    assert_eq!(snap.gauge("scheduler_share_dashboard"), Some(3));
    assert_eq!(snap.counter("scheduler_shed_dashboard"), Some(1));
    assert_eq!(snap.counter("scheduler_shed_total"), Some(1));
    // The helper wait-time histogram recorded under the tenant's class
    // (the successful aggregate dispatched helper task items).
    if let Some(wait) = snap.stage("scheduler_wait", "dashboard") {
        assert!(wait.count >= 1);
        assert!(wait.p50 <= wait.p99);
    }

    // The same series reach the Prometheus exposition.
    let body = match facade.handle(WebRequest::MetricsText) {
        WebResponse::MetricsText { body } => body,
        other => panic!("unexpected response {other:?}"),
    };
    assert!(body.contains("sdwp_scheduler_workers 3"));
    assert!(body.contains("sdwp_scheduler_share_dashboard 3"));
    assert!(body.contains("sdwp_scheduler_shed_total 1"));
}

/// A guaranteed-class query that blocks in admission while a deadline is
/// set expires *in the queue*: the caller gets the typed deadline error
/// promptly (bounded wait, not a park-forever), nothing was shed, and
/// the slot accounting stays balanced — once capacity frees, the same
/// request succeeds.
#[test]
fn deadline_expires_while_blocked_in_admission() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let facade = facade(&scenario);
    let class = facade
        .engine()
        .set_tenant_policy("analyst", TenantPolicy::default().with_max_in_flight(1));
    let session = login(&facade, "analyst");
    let pool = Arc::clone(
        facade
            .engine()
            .morsel_pool()
            .expect("parallel engine has a pool"),
    );
    let slot = pool
        .try_admit(class)
        .expect("first admission fits the budget");

    // The budget covers the admission wait: with the slot held, a 20 ms
    // deadline expires in the queue and surfaces as the typed error —
    // not a shed, not a hang.
    let started = std::time::Instant::now();
    let response = facade.handle(WebRequest::Aggregate {
        session,
        fact: "Sales".into(),
        measure: "UnitSales".into(),
        group_by: vec![("Store".into(), "City".into(), "name".into())],
        deadline_micros: Some(20_000),
    });
    let waited = started.elapsed();
    match response {
        WebResponse::Error { message } => {
            assert!(
                message.contains("deadline exceeded"),
                "expected the typed deadline refusal, got: {message}"
            );
        }
        other => panic!("expected the deadline error, got {other:?}"),
    }
    assert!(
        waited >= Duration::from_millis(20) && waited < Duration::from_secs(5),
        "the admission wait must be bounded by the deadline, waited {waited:?}"
    );
    // Expiring in the queue is not shedding, and it leaks no slot.
    let snap = metrics(&facade);
    assert_eq!(snap.counter("scheduler_shed_total"), Some(0));
    assert_eq!(snap.gauge("scheduler_in_flight_analyst"), Some(1));

    // Capacity frees: the identical request (same deadline, now ample)
    // succeeds end to end, proving the expiry left no residue behind.
    drop(slot);
    assert!(matches!(
        facade.handle(WebRequest::Aggregate {
            session,
            fact: "Sales".into(),
            measure: "UnitSales".into(),
            group_by: vec![("Store".into(), "City".into(), "name".into())],
            deadline_micros: Some(5_000_000),
        }),
        WebResponse::Table { .. }
    ));
    assert_eq!(
        metrics(&facade).gauge("scheduler_in_flight_analyst"),
        Some(0)
    );
}

/// Shedding under an armed failpoint: an over-budget best-effort query
/// is refused with the typed `Overloaded` *before* any faulty stage can
/// run, and once capacity frees the degraded-but-healthy scan still
/// answers. Only exists under `--features failpoints`; the armed action
/// is a sleep, so concurrently running tests are at most slowed, never
/// corrupted.
#[cfg(feature = "failpoints")]
#[test]
fn shed_stays_typed_while_a_failpoint_is_armed() {
    use sdwp::olap::fault::{self, FailAction};

    /// Disarms on drop so a failed assertion cannot leak the armed
    /// point into another test.
    struct Teardown;
    impl Drop for Teardown {
        fn drop(&mut self) {
            fault::disarm("query.scan.morsel");
        }
    }

    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let facade = facade(&scenario);
    let class = facade.engine().set_tenant_policy(
        "dashboard",
        TenantPolicy::default().best_effort().with_max_in_flight(1),
    );
    let session = login(&facade, "dashboard");
    let pool = Arc::clone(
        facade
            .engine()
            .morsel_pool()
            .expect("parallel engine has a pool"),
    );

    let _teardown = Teardown;
    fault::arm("query.scan.morsel", FailAction::SleepMs(5), 1, None);

    // Over budget with the scan stage armed: the shed happens at the
    // admission gate, so the refusal is still the immediate typed
    // `Overloaded` — the fault never gets a chance to run.
    let slot = pool
        .try_admit(class)
        .expect("first admission fits the budget");
    match facade.handle(aggregate(session)) {
        WebResponse::Overloaded { class, .. } => assert_eq!(class, "dashboard"),
        other => panic!("expected Overloaded under the armed failpoint, got {other:?}"),
    }
    assert_eq!(
        metrics(&facade).counter("scheduler_shed_dashboard"),
        Some(1)
    );

    // Capacity frees: the query runs through the degraded (sleeping)
    // scan and still completes normally.
    drop(slot);
    assert!(matches!(
        facade.handle(aggregate(session)),
        WebResponse::Table { .. }
    ));
}

#[test]
fn rebalance_feedback_is_reachable_from_the_engine() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let facade = facade(&scenario);
    facade.engine().set_tenant_policy(
        "dashboard",
        TenantPolicy::default().with_target_p99_micros(1),
    );
    let session = login(&facade, "dashboard");
    // Enough samples to clear the rebalancer's minimum-window guard; an
    // impossible 1µs target means the class is missing it.
    for _ in 0..10 {
        assert!(matches!(
            facade.handle(WebRequest::QueryBatch {
                session,
                queries: vec![sdwp::olap::Query::over("Sales").measure("UnitSales")],
                deadline_micros: None,
            }),
            WebResponse::BatchResult { .. }
        ));
    }
    // QueryTotal only records on the standalone path; drive it too.
    for _ in 0..10 {
        assert!(matches!(
            facade.handle(aggregate(session)),
            WebResponse::Table { .. }
        ));
    }
    let changed = facade.engine().rebalance_worker_shares();
    assert!(
        changed
            .iter()
            .any(|(name, share)| name == "dashboard" && *share > 1),
        "a tenant missing its latency target gains worker share, got {changed:?}"
    );
}
