//! Spatial selection equivalence on generated scenarios: the R-tree and
//! grid accelerated `members_within_distance_indexed` must agree with the
//! linear `members_within_distance` scan, and `nearest_members` must
//! agree with brute-force kNN — across seeds, radii, metrics and query
//! points drawn from `datagen` scenarios.

use sdwp::datagen::{PaperScenario, ScenarioConfig};
use sdwp::geometry::distance::{distance, DistanceMetric};
use sdwp::geometry::{Geometry, Point};
use sdwp::olap::spatial::{
    build_level_grid, build_level_rtree, level_geometries, members_within_distance,
    members_within_distance_indexed, nearest_members,
};
use sdwp::olap::Cube;

fn scenarios() -> Vec<PaperScenario> {
    [7u64, 2024, 4711]
        .into_iter()
        .map(|seed| PaperScenario::generate(ScenarioConfig::tiny().with_seed(seed)))
        .collect()
}

/// Query points exercising the interesting cases: on a store, between
/// stores, at the region edge, far outside.
fn query_points(scenario: &PaperScenario) -> Vec<Point> {
    let first = scenario.retail.stores[0].location;
    let last = scenario.retail.stores[scenario.retail.stores.len() - 1].location;
    vec![
        first,
        Point::new((first.x() + last.x()) / 2.0, (first.y() + last.y()) / 2.0),
        Point::new(0.0, 0.0),
        Point::new(10_000.0, 10_000.0),
    ]
}

#[test]
fn indexed_within_distance_equals_linear_scan() {
    for scenario in scenarios() {
        let cube = &scenario.cube;
        let rtree = build_level_rtree(cube, "Store", "Store").unwrap();
        for cell_size in [1.0, 10.0, 50.0] {
            let grid = build_level_grid(cube, "Store", "Store", cell_size).unwrap();
            for point in query_points(&scenario) {
                let target: Geometry = point.into();
                for radius in [0.5, 5.0, 25.0, 500.0] {
                    let linear = members_within_distance(
                        cube,
                        "Store",
                        "Store",
                        &target,
                        radius,
                        DistanceMetric::Euclidean,
                    )
                    .unwrap();
                    let via_rtree = members_within_distance_indexed(
                        cube,
                        "Store",
                        "Store",
                        &rtree,
                        &target,
                        radius,
                        DistanceMetric::Euclidean,
                    )
                    .unwrap();
                    let via_grid = members_within_distance_indexed(
                        cube,
                        "Store",
                        "Store",
                        &grid,
                        &target,
                        radius,
                        DistanceMetric::Euclidean,
                    )
                    .unwrap();
                    assert_eq!(via_rtree, linear, "rtree, r={radius}, p={point:?}");
                    assert_eq!(
                        via_grid, linear,
                        "grid {cell_size}, r={radius}, p={point:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn indexed_within_distance_equals_linear_scan_haversine() {
    // A dedicated small-coordinate scenario keeps haversine angles sane.
    let scenario = PaperScenario::generate(ScenarioConfig::tiny().with_seed(99));
    let cube = &scenario.cube;
    let rtree = build_level_rtree(cube, "Store", "Store").unwrap();
    let grid = build_level_grid(cube, "Store", "Store", 0.5).unwrap();
    let store0 = scenario.retail.stores[0].location;
    let target: Geometry = Point::new(store0.x() / 100.0, store0.y() / 100.0).into();
    for radius_km in [10.0, 150.0, 2_000.0] {
        let linear = members_within_distance(
            cube,
            "Store",
            "Store",
            &target,
            radius_km,
            DistanceMetric::HaversineKm,
        )
        .unwrap();
        for (label, index) in [
            ("rtree", &rtree as &dyn sdwp::index::SpatialQuery<usize>),
            ("grid", &grid as &dyn sdwp::index::SpatialQuery<usize>),
        ] {
            let indexed = members_within_distance_indexed(
                cube,
                "Store",
                "Store",
                index,
                &target,
                radius_km,
                DistanceMetric::HaversineKm,
            )
            .unwrap();
            assert_eq!(indexed, linear, "{label}, r={radius_km}km");
        }
    }
}

/// Brute-force kNN over the raw geometries, mirroring the contract of
/// `nearest_members` (ascending exact Euclidean distance, ties broken by
/// the stable sort's input order).
fn brute_force_knn(
    cube: &Cube,
    dimension: &str,
    level: &str,
    target: &Point,
    k: usize,
) -> Vec<usize> {
    let target_geom: Geometry = (*target).into();
    let mut rows: Vec<(f64, usize)> = level_geometries(cube, dimension, level)
        .unwrap()
        .into_iter()
        .map(|(row, g)| (distance(&g, &target_geom, DistanceMetric::Euclidean), row))
        .collect();
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    rows.into_iter().take(k).map(|(_, row)| row).collect()
}

#[test]
fn nearest_members_agrees_with_brute_force_knn() {
    for scenario in scenarios() {
        let cube = &scenario.cube;
        for point in query_points(&scenario) {
            for k in [0, 1, 3, 10, 1_000] {
                let fast = nearest_members(cube, "Store", "Store", &point, k).unwrap();
                let brute = brute_force_knn(cube, "Store", "Store", &point, k);
                assert_eq!(fast, brute, "k={k}, p={point:?}");
                assert_eq!(fast.len(), k.min(scenario.retail.stores.len()));
                // The returned rows really are sorted by distance.
                let target: Geometry = point.into();
                let distances: Vec<f64> = fast
                    .iter()
                    .map(|&row| {
                        let geometries = level_geometries(cube, "Store", "Store").unwrap();
                        let g = &geometries.iter().find(|(r, _)| *r == row).unwrap().1;
                        distance(g, &target, DistanceMetric::Euclidean)
                    })
                    .collect();
                for pair in distances.windows(2) {
                    assert!(pair[0] <= pair[1], "distances not ascending: {distances:?}");
                }
            }
        }
    }
}

#[test]
fn customer_level_knn_and_distance_agree_too() {
    // The Customer dimension exercises a second geometry column layout.
    let scenario = PaperScenario::generate(ScenarioConfig::tiny().with_seed(1));
    let cube = &scenario.cube;
    let rtree = build_level_rtree(cube, "Customer", "Customer").unwrap();
    let point = scenario.retail.stores[0].location;
    let target: Geometry = point.into();
    let linear = members_within_distance(
        cube,
        "Customer",
        "Customer",
        &target,
        30.0,
        DistanceMetric::Euclidean,
    )
    .unwrap();
    let indexed = members_within_distance_indexed(
        cube,
        "Customer",
        "Customer",
        &rtree,
        &target,
        30.0,
        DistanceMetric::Euclidean,
    )
    .unwrap();
    assert_eq!(indexed, linear);
    assert_eq!(
        nearest_members(cube, "Customer", "Customer", &point, 5).unwrap(),
        brute_force_knn(cube, "Customer", "Customer", &point, 5)
    );
}
