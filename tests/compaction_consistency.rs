//! Compaction-consistency suite: tombstone compaction must be invisible
//! to open sessions, even while ingestion keeps running.
//!
//! The engine's contract: a compaction rewrites a fact table's live rows
//! into fresh chunks and remaps the stable row ids, publishing the remap
//! chain on the fact table and eagerly remapping stored session views —
//! so a session whose personalized view selected fact rows *before* the
//! compaction keeps resolving exactly the same live rows afterwards, and
//! rows appended after the selection never leak into it.
//!
//! The writer below follows the producer-side protocol for id-addressed
//! deltas: after every flush it re-reads the published remap chain and
//! translates its outstanding row ids before submitting the next batch.

use sdwp::core::PersonalizationEngine;
use sdwp::datagen::{PaperScenario, ScenarioConfig};
use sdwp::ingest::{CompactionPolicy, DeltaBatch, EpochPolicy, IngestConfig};
use sdwp::olap::{CellValue, ExecutionConfig, Query, QueryEngine};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

#[test]
fn session_views_survive_compaction_under_concurrent_ingest() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let total_rows = scenario.retail.sales.len();
    assert!(total_rows >= 8, "scenario too small to exercise compaction");
    let engine = Arc::new(PersonalizationEngine::new(scenario.cube.clone()));
    engine.register_user(scenario.manager.clone());
    let session = engine
        .start_session("regional-manager", None)
        .expect("session starts")
        .id;

    // Personalize the session by hand (no rules registered): it sees only
    // the even-numbered fact rows. The writer will retract odd rows only,
    // so the personalized aggregate is invariant for the whole run.
    let selected: Vec<usize> = (0..total_rows).step_by(2).collect();
    engine
        .sessions()
        .with_session_mut(session, |state| {
            Arc::make_mut(&mut state.view).select_fact_rows("Sales", selected.iter().copied());
        })
        .expect("session exists");

    let sum_query = Query::over("Sales").measure("UnitSales");
    let baseline = engine.query(session, &sum_query).expect("baseline query");
    assert!(baseline.facts_scanned > 0);

    // Aggressive policies so the run publishes and compacts constantly.
    let ingest = engine.start_ingest(
        IngestConfig::default()
            .with_epoch(
                EpochPolicy::default()
                    .with_max_rows(1)
                    .with_max_interval(std::time::Duration::from_millis(1)),
            )
            .with_compaction(
                CompactionPolicy::disabled()
                    .with_max_tombstone_ratio(0.25)
                    .with_min_rows(4),
            ),
    );

    // Readers race the writer: the personalized aggregate must equal the
    // baseline on every snapshot, and the morsel-parallel executor must
    // agree with the serial reference on whatever (cube, view) pair they
    // load.
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            let sum_query = sum_query.clone();
            let baseline = baseline.clone();
            thread::spawn(move || {
                let parallel = QueryEngine::with_config(
                    ExecutionConfig::default()
                        .with_workers(4)
                        .with_morsel_rows(3),
                );
                let serial = QueryEngine::with_config(ExecutionConfig::serial());
                let mut observed = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let through_engine = engine
                        .query(session, &sum_query)
                        .expect("session query succeeds mid-compaction");
                    assert_eq!(
                        through_engine.rows, baseline.rows,
                        "personalized aggregate drifted across compaction"
                    );
                    // Executor equivalence on a self-consistent
                    // (view, cube) pair loaded in the engine's own order.
                    let view = engine.session_view(session).expect("view loads");
                    let (_, cube) = engine.cube_versioned();
                    let a = parallel
                        .execute_with_view(&cube, &sum_query, &view)
                        .expect("parallel");
                    let b = serial
                        .execute_serial_with_view(&cube, &sum_query, &view)
                        .expect("serial");
                    assert_eq!(a, b, "executors diverged on a compacted snapshot");
                    observed += 1;
                }
                observed
            })
        })
        .collect();

    // The writer retracts every odd row (never a selected one) and
    // appends fresh rows, translating its outstanding ids through the
    // published remap chain after every flush — the producer-side remap
    // protocol.
    let mut pending: Vec<usize> = (1..total_rows).step_by(2).collect();
    let mut version_seen = 0u64;
    while !pending.is_empty() {
        let chunk: Vec<usize> = pending.drain(..pending.len().min(3)).collect();
        let mut batch = DeltaBatch::new();
        for row in chunk {
            batch = batch.retract("Sales", row);
        }
        batch = batch.append(
            "Sales",
            vec![
                ("Store", 0usize),
                ("Customer", 0usize),
                ("Product", 0usize),
                ("Time", 0usize),
            ],
            vec![("UnitSales", CellValue::Float(1_000_000.0))],
        );
        ingest.submit(batch).expect("submit");
        ingest.flush().expect("flush");
        // Re-anchor outstanding ids to the current numbering. The chain
        // is trimmed behind live references, so a producer that
        // re-anchors after every flush walks the retained transitions
        // (`translate_rows_from`) rather than absolute chain indices.
        let cube = engine.cube();
        let fact_table = cube.fact_table("Sales").expect("Sales exists");
        let current = fact_table.compaction_version();
        if current > version_seen {
            pending = fact_table.translate_rows_from(version_seen, pending);
            version_seen = current;
        }
    }
    done.store(true, Ordering::Relaxed);
    for reader in readers {
        assert!(reader.join().expect("reader thread") > 0);
    }

    // The run actually compacted (half the table was tombstoned against a
    // 0.25 ratio), the stored session view was remapped eagerly, and the
    // invariant still holds on the final state.
    let stats = engine.ingest_stats().expect("pipeline running");
    assert!(stats.compactions >= 1, "compaction never triggered");
    assert_eq!(stats.rows_retracted as usize, total_rows / 2);
    let view = engine.session_view(session).expect("view loads");
    assert_eq!(
        view.fact_selection_version("Sales"),
        Some(stats.compactions),
        "stored view must ride every compaction"
    );
    assert_eq!(
        view.selected_fact_rows("Sales").map(|rows| rows.len()),
        Some(selected.len()),
        "no selected row was lost to compaction"
    );
    let final_result = engine.query(session, &sum_query).expect("final query");
    assert_eq!(final_result.rows, baseline.rows);
    // The appended sentinel rows are invisible to the closed selection …
    assert!(final_result
        .rows
        .iter()
        .all(|row| row.values[0].as_number().unwrap_or(0.0) < 1_000_000.0));
    // … but visible without personalization.
    let unrestricted = engine
        .query_unpersonalized(&sum_query)
        .expect("unpersonalized query");
    assert!(unrestricted.rows[0].values[0].as_number().unwrap() >= 1_000_000.0);
    let sales = engine
        .ingest_stats()
        .unwrap()
        .fact_tables
        .into_iter()
        .find(|s| s.fact == "Sales")
        .expect("Sales gauge");
    assert!(
        sales.tombstone_ratio < 0.25,
        "compaction kept tombstone pressure under the policy"
    );
    // The remap chain was trimmed behind the (eagerly remapped) session
    // views: however many compactions ran, at most the latest transition
    // is retained.
    assert!(
        sales.remap_chain_len <= 1,
        "remap chain grew unboundedly: {} retained after {} compactions",
        sales.remap_chain_len,
        stats.compactions
    );
    engine.stop_ingest();
}
