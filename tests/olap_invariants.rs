//! Cross-crate invariants of the OLAP layer under personalization: the
//! personalized results must always be a "subset" of the full results.

use sdwp::core::PersonalizationEngine;
use sdwp::datagen::{PaperScenario, ScenarioConfig};
use sdwp::olap::{AttributeRef, CellValue, Query};
use sdwp::prml::corpus::ALL_PAPER_RULES;
use sdwp::user::LocationContext;
use std::sync::Arc;

fn setup() -> (PersonalizationEngine, PaperScenario, u64) {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny().with_seed(2024));
    let engine = PersonalizationEngine::with_layer_source(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
    );
    engine.register_user(scenario.manager.clone());
    engine.set_parameter("threshold", 2.0);
    for rule in ALL_PAPER_RULES {
        engine.add_rules_text(rule).unwrap();
    }
    let store = &scenario.retail.stores[0];
    let session = engine
        .start_session(
            "regional-manager",
            Some(LocationContext::at_point(
                "office",
                store.location.x(),
                store.location.y(),
            )),
        )
        .unwrap();
    let id = session.id;
    (engine, scenario, id)
}

#[test]
fn personalized_totals_never_exceed_full_totals() {
    let (engine, _scenario, session) = setup();
    for measure in ["UnitSales", "StoreCost", "StoreSales"] {
        let query = Query::over("Sales").measure(measure);
        let personalized = engine.query(session, &query).unwrap();
        let full = engine.query_unpersonalized(&query).unwrap();
        let p = personalized
            .rows
            .first()
            .map(|r| r.values[0].as_number().unwrap())
            .unwrap_or(0.0);
        let f = full.rows[0].values[0].as_number().unwrap();
        assert!(p <= f + 1e-6, "{measure}: personalized {p} > full {f}");
        assert!(p >= 0.0);
    }
}

#[test]
fn personalized_groups_are_a_subset_of_full_groups() {
    let (engine, _scenario, session) = setup();
    let query = Query::over("Sales")
        .group_by(AttributeRef::new("Store", "City", "name"))
        .measure("UnitSales");
    let personalized = engine.query(session, &query).unwrap();
    let full = engine.query_unpersonalized(&query).unwrap();
    assert!(personalized.len() <= full.len());
    for row in &personalized.rows {
        let counterpart = full
            .find(&row.keys)
            .expect("group exists in the full result");
        assert!(
            row.values[0].as_number().unwrap() <= counterpart.values[0].as_number().unwrap() + 1e-6
        );
    }
}

#[test]
fn group_totals_add_up_to_the_grand_total() {
    let (engine, _scenario, session) = setup();
    let grand = engine
        .query(session, &Query::over("Sales").measure("UnitSales"))
        .unwrap();
    let grand_total = grand
        .rows
        .first()
        .map(|r| r.values[0].as_number().unwrap())
        .unwrap_or(0.0);
    let by_city = engine
        .query(
            session,
            &Query::over("Sales")
                .group_by(AttributeRef::new("Store", "City", "name"))
                .measure("UnitSales"),
        )
        .unwrap();
    assert!((by_city.column_total(0) - grand_total).abs() < 1e-6);
    // Rolling up to the coarser State level preserves the total as well.
    let by_state = engine
        .query(
            session,
            &Query::over("Sales")
                .group_by(AttributeRef::new("Store", "State", "name"))
                .measure("UnitSales"),
        )
        .unwrap();
    assert!((by_state.column_total(0) - grand_total).abs() < 1e-6);
    assert!(by_state.len() <= by_city.len());
}

#[test]
fn counts_match_visible_fact_rows() {
    let (engine, _scenario, session) = setup();
    let count_query =
        Query::over("Sales").measure_agg("UnitSales", sdwp::model::AggregationFunction::Count);
    let counted = engine.query(session, &count_query).unwrap();
    let visible = engine
        .session_view(session)
        .unwrap()
        .visible_fact_count(&engine.cube(), "Sales")
        .unwrap();
    assert_eq!(
        counted.rows[0].values[0],
        CellValue::Integer(visible as i64)
    );
}
