//! Reproduction of the paper's model figures (F2, F3, F4, F5, F6 in
//! EXPERIMENTS.md): the structures the paper draws as UML diagrams are
//! constructed programmatically and their content verified.

use sdwp::datagen::scenario::{regional_sales_manager, sales_schema};
use sdwp::geometry::GeometricType;
use sdwp::model::{render::render_text, SchemaDiff, Stereotype};
use sdwp::prml::corpus::ALL_PAPER_RULES;
use sdwp::prml::metamodel::{classify_rule, MetaClass};
use sdwp::prml::parse_rule;
use sdwp::user::{SusModel, SusStereotype};

/// Figure 2: the MD model for sales analysis.
#[test]
fn figure_2_md_model_for_sales() {
    let schema = sales_schema();
    let fact = schema.fact("Sales").expect("Sales fact");
    // Who bought (Customer), where (Store), what (Product), when (Time).
    assert_eq!(
        fact.dimensions,
        vec!["Store", "Customer", "Product", "Time"]
    );
    // Measures shown in the figure.
    for measure in ["UnitSales", "StoreCost", "StoreSales"] {
        assert!(fact.measure(measure).is_some());
    }
    // Only the Store dimension is expanded in the figure: Store→City→State.
    let store = schema.dimension("Store").unwrap();
    assert_eq!(store.aggregation_path(), vec!["Store", "City", "State"]);
    assert_eq!(store.leaf_level().unwrap().stereotype(), Stereotype::Base);
    // Roll-up (r) and drill-down (d) roles.
    assert_eq!(store.roll_up_target("City").unwrap().unwrap().name, "State");
    assert_eq!(
        store.drill_down_target("City").unwrap().unwrap().name,
        "Store"
    );
    // No spatiality in the initial model.
    assert!(!schema.is_geographic());
    // The rendering mentions every stereotype of the figure.
    let text = render_text(&schema);
    assert!(text.contains("«Fact» Sales"));
    assert!(text.contains("«Dimension» Store"));
    assert!(text.contains("«Base» City"));
    assert!(text.contains("«FactAttribute» UnitSales"));
}

/// Figure 3: the UML profile for the spatial-aware user model.
#[test]
fn figure_3_sus_profile_stereotypes() {
    let names: Vec<String> = SusStereotype::ALL.iter().map(ToString::to_string).collect();
    assert_eq!(
        names,
        vec![
            "User",
            "Session",
            "Characteristic",
            "LocationContext",
            "SpatialSelection"
        ]
    );
    // The GeometricTypes enumeration of the profile: POINT, LINE, POLYGON,
    // COLLECTION (ISO/OGC compliant).
    let geo: Vec<&str> = GeometricType::ALL.iter().map(|g| g.as_str()).collect();
    assert_eq!(geo, vec!["POINT", "LINE", "POLYGON", "COLLECTION"]);
}

/// Figure 4: the spatial-aware user model for the motivating example.
#[test]
fn figure_4_user_model_instance() {
    let model = SusModel::motivating_example();
    model.validate().expect("the Fig. 4 model is well-formed");
    assert!(model.find("DecisionMaker").is_some());
    assert!(model.find("AirportCity").is_some());
    // The runtime profile carries the same information: role and interest.
    let profile = regional_sales_manager();
    assert_eq!(profile.role_name(), Some("RegionalSalesManager"));
    assert_eq!(profile.interest("AirportCity").unwrap().degree, 0.0);
}

/// Figure 5: the adapted PRML metamodel — every published rule parses and
/// its metamodel elements are identifiable.
#[test]
fn figure_5_prml_metamodel_coverage() {
    let mut covered = std::collections::BTreeSet::new();
    for text in ALL_PAPER_RULES {
        let rule = parse_rule(text).expect("paper rule parses");
        covered.extend(classify_rule(&rule));
    }
    for expected in [
        MetaClass::Rule,
        MetaClass::SessionStartEvent,
        MetaClass::SpatialSelectionEvent,
        MetaClass::DistanceOperator,
        MetaClass::IntersectionOperator,
        MetaClass::SetContentAction,
        MetaClass::SelectInstanceAction,
        MetaClass::BecomeSpatialAction,
        MetaClass::AddLayerAction,
        MetaClass::ForeachStatement,
        MetaClass::IfStatement,
    ] {
        assert!(covered.contains(&expected), "missing {expected:?}");
    }
}

/// Figure 6: the GeoMD model obtained after applying the schema rules.
#[test]
fn figure_6_geomd_model_after_schema_rules() {
    let before = sales_schema();
    let mut after = before.clone();
    // The effects of rule 5.1.
    after.add_layer("Airport", GeometricType::Point).unwrap();
    after.become_spatial("Store", GeometricType::Point).unwrap();
    // Plus the Train layer the paper also shows in Fig. 6.
    after.add_layer("Train", GeometricType::Line).unwrap();

    assert!(after.is_geographic());
    let (_, store_level) = after.find_level("Store").unwrap();
    assert_eq!(store_level.stereotype(), Stereotype::SpatialLevel);
    assert_eq!(store_level.geometry, Some(GeometricType::Point));
    assert_eq!(
        after.layer("Airport").unwrap().geometry,
        GeometricType::Point
    );
    assert_eq!(after.layer("Train").unwrap().geometry, GeometricType::Line);

    let diff = SchemaDiff::between(&before, &after);
    assert_eq!(diff.added_layers.len(), 2);
    assert_eq!(diff.levels_become_spatial.len(), 1);
    let rendered = render_text(&after);
    assert!(rendered.contains("«SpatialLevel» Store geometry=POINT"));
    assert!(rendered.contains("«Layer» Airport geometry=POINT"));
    assert!(rendered.contains("«Layer» Train geometry=LINE"));
}
