//! Concurrency test of the multi-session engine core: many threads log in,
//! fire rules, query and log out **through one shared engine**, and the
//! per-session personalization must stay isolated while the shared schema
//! only ever grows.

use sdwp::core::{PersonalizationEngine, WebFacade, WebRequest, WebResponse};
use sdwp::datagen::{PaperScenario, ScenarioConfig};
use sdwp::olap::{AttributeRef, Query};
use sdwp::prml::corpus::ALL_PAPER_RULES;
use sdwp::user::{LocationContext, Role, UserProfile};
use std::collections::BTreeSet;
use std::sync::{Arc, Barrier};
use std::thread;

const THREADS: usize = 8;
const ROUNDS: usize = 5;

/// Builds the shared engine: one manager profile *per even worker* (so each
/// thread's interest tracking stays isolated), one analyst profile shared
/// by the odd workers.
fn shared_engine(scenario: &PaperScenario) -> Arc<PersonalizationEngine> {
    let engine = PersonalizationEngine::with_layer_source(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
    );
    for worker in (0..THREADS).step_by(2) {
        let mut manager = scenario.manager.clone();
        manager.id = format!("manager-{worker}");
        engine.register_user(manager);
    }
    engine.register_user(UserProfile::new("analyst", "Ana Lyst").with_role(Role::new("Analyst")));
    engine.set_parameter("threshold", 2.0);
    for rule in ALL_PAPER_RULES {
        engine.add_rules_text(rule).expect("paper rule registers");
    }
    Arc::new(engine)
}

fn layer_names(engine: &PersonalizationEngine) -> BTreeSet<String> {
    engine
        .cube()
        .schema()
        .layers
        .iter()
        .map(|l| l.name.clone())
        .collect()
}

/// ≥ 8 threads drive full session lifecycles concurrently; each asserts its
/// own view's isolation, and every thread checks schema monotonicity (the
/// layer set it last observed is always a subset of what it observes next).
#[test]
fn eight_threads_of_concurrent_full_lifecycles() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let engine = shared_engine(&scenario);
    let baseline_layers = layer_names(&engine);
    let barrier = Arc::new(Barrier::new(THREADS));

    let workers: Vec<_> = (0..THREADS)
        .map(|worker| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            // Even workers are managers next to a store (personalized
            // restrictions); odd workers are analysts far away (fully
            // filtered views).
            let store = &scenario.retail.stores[0];
            let (user, location) = if worker % 2 == 0 {
                (
                    format!("manager-{worker}"),
                    LocationContext::at_point("office", store.location.x(), store.location.y()),
                )
            } else {
                (
                    "analyst".to_string(),
                    LocationContext::at_point("remote", 9_999.0, 9_999.0),
                )
            };
            thread::spawn(move || {
                barrier.wait();
                let mut seen_layers = BTreeSet::new();
                for round in 0..ROUNDS {
                    let handle = engine
                        .start_session(&user, Some(location.clone()))
                        .expect("session starts under contention");

                    // Per-session view isolation: this session's view is
                    // restricted by *its own* location, regardless of what
                    // other sessions do concurrently.
                    let view = engine.session_view(handle.id).unwrap();
                    assert!(!view.is_unrestricted());
                    let visible = view.visible_fact_count(&engine.cube(), "Sales").unwrap();
                    if user == "analyst" {
                        assert_eq!(visible, 0, "analyst far away must see nothing");
                    } else if round < 2 {
                        // Before this manager's interest crosses the
                        // threshold, only the 5 km rule restricts the view.
                        // (Later rounds also intersect the train-connected
                        // cities, which may legally empty the view.)
                        assert!(visible > 0, "manager next to a store must see facts");
                    }

                    // Fire acquisition rules and query through the view.
                    // Analysts select a different element: the paper's
                    // example corpus couples the AirportCity interest to
                    // rule TrainAirportCity, which dereferences the Airport
                    // layer that only the *manager* role's rule 5.1
                    // materializes — an analyst crossing the threshold
                    // before any manager ever logged in would hit a rule
                    // evaluation error (a property of the example rules,
                    // not of the engine).
                    let element = if user == "analyst" {
                        "GeoMD.Store.State"
                    } else {
                        "GeoMD.Store.City"
                    };
                    engine
                        .record_spatial_selection(handle.id, element, None)
                        .unwrap();
                    let query = Query::over("Sales")
                        .group_by(AttributeRef::new("Store", "City", "name"))
                        .measure("UnitSales");
                    let result = engine.query(handle.id, &query).unwrap();
                    if user == "analyst" {
                        assert_eq!(result.facts_matched, 0);
                    }

                    // Schema monotonicity: the layer set never shrinks
                    // between two observations from the same thread.
                    let layers = layer_names(&engine);
                    assert!(
                        seen_layers.is_subset(&layers),
                        "schema lost layers: {seen_layers:?} → {layers:?}"
                    );
                    seen_layers = layers;

                    engine.end_session(handle.id).unwrap();
                    // Ended sessions are rejected for further queries.
                    assert!(engine.query(handle.id, &query).is_err());
                }
                (user, seen_layers)
            })
        })
        .collect();

    let mut per_thread = Vec::new();
    for worker in workers {
        per_thread.push(worker.join().expect("worker thread must not panic"));
    }

    // Monotonicity across the whole run: everything any thread ever saw is
    // contained in the final schema, and the baseline never disappeared.
    let final_layers = layer_names(&engine);
    assert!(baseline_layers.is_subset(&final_layers));
    for (_, seen) in &per_thread {
        assert!(seen.is_subset(&final_layers));
    }
    let diff = engine.schema_diff();
    assert!(
        diff.removed_layers.is_empty(),
        "personalization is additive"
    );
    assert!(
        diff.added_layers.iter().any(|(name, _)| name == "Airport"),
        "manager sessions must have added the Airport layer"
    );
    // Each manager crossed the interest threshold, so the Train layer got
    // personalized in as well.
    assert!(
        diff.added_layers.iter().any(|(name, _)| name == "Train"),
        "interest tracking must have added the Train layer"
    );

    // Profile isolation: each manager made exactly ROUNDS selections on its
    // own profile; concurrent updates never leaked across users. The shared
    // analyst profile accumulated the selections of all odd workers.
    for (user, _) in &per_thread {
        if user.starts_with("manager-") {
            let profile = engine.user_profile(user).unwrap();
            assert_eq!(
                profile.interest("AirportCity").unwrap().degree,
                ROUNDS as f64,
                "interest updates of {user} must not be lost or duplicated"
            );
        }
    }

    // Every session was logged out, and logout reclaims the per-session
    // state — the map does not grow with the login history.
    assert!(engine.sessions().is_empty());
}

/// The same exercise through the web facade: cloned handles dispatch
/// requests from many threads against the one shared engine.
#[test]
fn cloned_web_facades_serve_concurrent_logins() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let facade = WebFacade::from_shared(shared_engine(&scenario));
    let store = &scenario.retail.stores[0];
    let location = (store.location.x(), store.location.y());
    let barrier = Arc::new(Barrier::new(THREADS));

    let workers: Vec<_> = (0..THREADS)
        .map(|worker| {
            let facade = facade.clone();
            let barrier = Arc::clone(&barrier);
            let user = format!("manager-{}", (worker / 2) * 2);
            thread::spawn(move || {
                barrier.wait();
                let session = match facade.handle(WebRequest::Login {
                    user,
                    location: Some(location),
                    class: None,
                }) {
                    WebResponse::LoggedIn { session, report } => {
                        assert!(report.is_personalized());
                        session
                    }
                    other => panic!("unexpected login response {other:?}"),
                };
                match facade.handle(WebRequest::Aggregate {
                    session,
                    fact: "Sales".into(),
                    measure: "UnitSales".into(),
                    group_by: vec![("Store".into(), "City".into(), "name".into())],
                    deadline_micros: None,
                }) {
                    WebResponse::Table { facts_matched, .. } => assert!(facts_matched > 0),
                    other => panic!("unexpected aggregate response {other:?}"),
                }
                assert_eq!(
                    facade.handle(WebRequest::Logout { session }),
                    WebResponse::LoggedOut
                );
                session
            })
        })
        .collect();

    let mut sessions: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    sessions.sort_unstable();
    sessions.dedup();
    assert_eq!(sessions.len(), THREADS, "session ids are unique");
}
