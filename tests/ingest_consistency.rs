//! Snapshot-consistency suite for the streaming-ingestion subsystem.
//!
//! The write path's contract: visibility advances only at epoch
//! boundaries, whole batches at a time. These tests pin the observable
//! consequences:
//!
//! * a concurrent reader can never observe a partially applied
//!   [`DeltaBatch`] — every snapshot it loads contains a whole number of
//!   batches;
//! * a query issued during active ingestion returns exactly what the
//!   serial reference executor returns against the snapshot it observed —
//!   morsel-parallel and row-at-a-time execution stay equivalent on a cube
//!   mid-ingest (appends, upserts and retractions included);
//! * routing an update stream through the bounded-channel pipeline ends in
//!   the same warehouse state as applying the same batches inline, for
//!   arbitrary ticker shapes and epoch policies (property-tested).

use proptest::prelude::*;
use sdwp::core::PersonalizationEngine;
use sdwp::datagen::{PaperScenario, RetailTicker, ScenarioConfig, TickerConfig};
use sdwp::ingest::{DeltaBatch, EpochPolicy, IngestConfig};
use sdwp::olap::{AttributeRef, CellValue, ExecutionConfig, InstanceView, Query, QueryEngine};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

fn queries() -> Vec<Query> {
    vec![
        Query::over("Sales").measure("UnitSales"),
        Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales")
            .measure("StoreSales"),
        Query::over("Sales")
            .group_by(AttributeRef::new("Product", "Category", "name"))
            .measure_agg("UnitSales", sdwp::model::AggregationFunction::Count)
            .measure_agg("StoreCost", sdwp::model::AggregationFunction::Avg),
    ]
}

/// Readers racing an append-only ingest stream must never see a snapshot
/// holding a fraction of a batch, and what they see must match the serial
/// reference on the exact snapshot they observed.
#[test]
fn concurrent_readers_never_observe_a_torn_batch() {
    const ROWS_PER_BATCH: usize = 7;
    const BATCHES: usize = 60;

    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let base_rows = scenario.retail.sales.len();
    let engine = Arc::new(PersonalizationEngine::new(scenario.cube.clone()));
    // Publish every ~2.5 batches so readers race plenty of generations.
    let ingest = engine.start_ingest(
        IngestConfig::default().with_epoch(
            EpochPolicy::default()
                .with_max_rows(ROWS_PER_BATCH * 5 / 2)
                .with_max_interval(std::time::Duration::from_millis(1)),
        ),
    );

    let count_query =
        Query::over("Sales").measure_agg("UnitSales", sdwp::model::AggregationFunction::Count);
    let sum_query = Query::over("Sales").measure("UnitSales");
    let parallel = QueryEngine::with_config(
        ExecutionConfig::default()
            .with_workers(4)
            .with_morsel_rows(64),
    );
    let serial = QueryEngine::with_config(ExecutionConfig::serial());
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            let count_query = count_query.clone();
            let sum_query = sum_query.clone();
            let parallel = parallel.clone();
            let serial = serial.clone();
            thread::spawn(move || {
                let view = InstanceView::unrestricted();
                let mut observed_generations = 0u64;
                while !done.load(Ordering::Relaxed) {
                    // Pin the exact snapshot a query would observe.
                    let (generation, cube) = engine.cube_versioned();
                    let counted = parallel
                        .execute_with_view(&cube, &count_query, &view)
                        .expect("count query runs");
                    let summed = parallel
                        .execute_with_view(&cube, &sum_query, &view)
                        .expect("sum query runs");
                    let count = counted.rows[0].values[0].as_number().unwrap() as usize;
                    let sum = summed.rows[0].values[0].as_number().unwrap();
                    // Whole batches only: every batch appends exactly
                    // ROWS_PER_BATCH rows of UnitSales = 1.
                    let ingested = count - base_rows;
                    assert_eq!(
                        ingested % ROWS_PER_BATCH,
                        0,
                        "observed a torn batch at generation {generation}: \
                         {ingested} ingested rows is not a whole number of batches"
                    );
                    let base_sum = summed_base();
                    assert!(
                        (sum - (base_sum + ingested as f64)).abs() < 1e-6,
                        "snapshot sum inconsistent with whole-batch visibility"
                    );
                    // The parallel result equals the serial reference on
                    // the very snapshot it observed.
                    assert_eq!(
                        counted,
                        serial
                            .execute_serial_with_view(&cube, &count_query, &view)
                            .unwrap()
                    );
                    assert_eq!(
                        summed,
                        serial
                            .execute_serial_with_view(&cube, &sum_query, &view)
                            .unwrap()
                    );
                    observed_generations = observed_generations.max(generation);
                }
                observed_generations
            })
        })
        .collect();

    // The base scenario's total is needed inside the readers; recompute it
    // once here (deterministic seed).
    fn summed_base() -> f64 {
        thread_local! {
            static BASE: f64 = PaperScenario::generate(ScenarioConfig::tiny())
                .retail
                .total_unit_sales();
        }
        BASE.with(|b| *b)
    }

    for _ in 0..BATCHES {
        let mut batch = DeltaBatch::new();
        for _ in 0..ROWS_PER_BATCH {
            batch = batch.append(
                "Sales",
                vec![
                    ("Store", 0usize),
                    ("Customer", 0usize),
                    ("Product", 0usize),
                    ("Time", 0usize),
                ],
                vec![("UnitSales", CellValue::Float(1.0))],
            );
        }
        ingest.submit(batch).expect("pipeline accepts the batch");
    }
    ingest.flush().expect("stream drains");
    done.store(true, Ordering::Relaxed);
    for reader in readers {
        reader.join().expect("reader never observed a torn batch");
    }

    // Everything arrived.
    let final_count = engine.cube().total_live_fact_rows();
    assert_eq!(final_count, base_rows + ROWS_PER_BATCH * BATCHES);
    let stats = engine.ingest_stats().unwrap();
    assert_eq!(stats.rows_appended as usize, ROWS_PER_BATCH * BATCHES);
    assert!(stats.epochs_published >= 1);
}

/// Serial vs morsel-parallel comparison on arbitrary (non-dyadic) floats:
/// group keys, scan counters and row sets must match exactly; summed
/// float values to 1e-9 relative — serial row-at-a-time and morsel-merged
/// addition associate differently, so the last ulp may differ (the
/// parallel executor's bit-exactness contract is *worker-count*
/// invariance at a fixed morsel size, asserted separately below).
fn assert_equivalent(a: &sdwp::olap::QueryResult, b: &sdwp::olap::QueryResult) {
    assert_eq!(a.key_names, b.key_names);
    assert_eq!(a.value_names, b.value_names);
    assert_eq!(a.facts_scanned, b.facts_scanned);
    assert_eq!(a.facts_matched, b.facts_matched);
    assert_eq!(a.rows.len(), b.rows.len());
    for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
        assert_eq!(ra.keys, rb.keys);
        assert_eq!(ra.values.len(), rb.values.len());
        for (va, vb) in ra.values.iter().zip(rb.values.iter()) {
            match (va.as_number(), vb.as_number()) {
                (Some(na), Some(nb)) => {
                    let scale = na.abs().max(nb.abs()).max(1.0);
                    assert!(
                        (na - nb).abs() <= 1e-9 * scale,
                        "float divergence beyond rounding: {na} vs {nb}"
                    );
                }
                _ => assert_eq!(va, vb),
            }
        }
    }
}

/// Serial and morsel-parallel execution stay equivalent on snapshots taken
/// mid-ingest of a full mixed workload (appends + corrections +
/// retractions), including through a personalized view.
#[test]
fn serial_and_parallel_agree_on_snapshots_mid_ingest() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let engine = Arc::new(PersonalizationEngine::new(scenario.cube.clone()));
    let ingest = engine.start_ingest(
        IngestConfig::default().with_epoch(
            EpochPolicy::default()
                .with_max_rows(16)
                .with_max_interval(std::time::Duration::from_millis(1)),
        ),
    );

    let mut view = InstanceView::unrestricted();
    // Restrict to half the stores: ingested rows referencing hidden stores
    // must stay hidden.
    view.select_dimension_members("Store", 0..scenario.retail.stores.len() / 2);
    let views = [InstanceView::unrestricted(), view];
    let parallel = QueryEngine::with_config(
        ExecutionConfig::default()
            .with_workers(8)
            .with_morsel_rows(32),
    );
    let one_worker = QueryEngine::with_config(
        ExecutionConfig::default()
            .with_workers(1)
            .with_morsel_rows(32),
    );
    let serial = QueryEngine::with_config(ExecutionConfig::serial());

    let mut ticker = RetailTicker::new(
        &scenario,
        TickerConfig::default()
            .with_appends(6)
            .with_corrections(2)
            .with_retractions(2),
    );
    for round in 0..40 {
        ingest.submit(ticker.next_batch()).unwrap();
        if round % 5 == 0 {
            let (_, cube) = engine.cube_versioned();
            for query in &queries() {
                for view in &views {
                    let result = parallel.execute_with_view(&cube, query, view).unwrap();
                    // Worker-count invariance is bit-exact at a fixed
                    // morsel size, mid-ingest included.
                    assert_eq!(
                        result,
                        one_worker.execute_with_view(&cube, query, view).unwrap(),
                        "worker-count divergence at round {round}"
                    );
                    assert_equivalent(
                        &result,
                        &serial.execute_serial_with_view(&cube, query, view).unwrap(),
                    );
                }
            }
        }
    }
    ingest.flush().unwrap();
    let (_, cube) = engine.cube_versioned();
    for query in &queries() {
        assert_equivalent(
            &parallel.execute_with_view(&cube, query, &views[1]).unwrap(),
            &serial
                .execute_serial_with_view(&cube, query, &views[1])
                .unwrap(),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Routing an arbitrary update stream through the bounded-channel
    /// pipeline (arbitrary epoch policy, so publication points vary) ends
    /// in exactly the warehouse state of applying the same batches inline.
    #[test]
    fn pipeline_matches_inline_application(
        seed in 0u64..1_000,
        appends in 1usize..8,
        corrections in 0usize..4,
        retractions in 0usize..3,
        batches in 1usize..20,
        epoch_rows in 1usize..64,
    ) {
        let scenario = PaperScenario::generate(ScenarioConfig::tiny());
        let config = TickerConfig::default()
            .with_seed(seed)
            .with_appends(appends)
            .with_corrections(corrections)
            .with_retractions(retractions);

        // Inline reference: apply every batch directly.
        let mut reference = scenario.cube.clone();
        for batch in RetailTicker::new(&scenario, config).take(batches) {
            batch.validate(&reference).expect("ticker batches validate");
            batch.apply(&mut reference);
        }

        // Pipeline path: same batches through the ingest worker.
        let engine = PersonalizationEngine::new(scenario.cube.clone());
        let ingest = engine.start_ingest(IngestConfig::default().with_epoch(
            EpochPolicy::default().with_max_rows(epoch_rows),
        ));
        for batch in RetailTicker::new(&scenario, config).take(batches) {
            ingest.submit(batch).expect("pipeline accepts the batch");
        }
        ingest.flush().expect("stream drains");

        let snapshot = engine.cube();
        prop_assert_eq!(snapshot.total_fact_rows(), reference.total_fact_rows());
        prop_assert_eq!(snapshot.total_live_fact_rows(), reference.total_live_fact_rows());
        let executor = QueryEngine::new();
        for query in &queries() {
            prop_assert_eq!(
                executor.execute(&snapshot, query).expect("query runs"),
                executor.execute(&reference, query).expect("query runs"),
            );
        }
        // No batch was rejected or failed along the way.
        let stats = engine.ingest_stats().unwrap();
        prop_assert_eq!(stats.batches_failed, 0);
        prop_assert_eq!(stats.batches_applied, batches as u64);
    }
}
