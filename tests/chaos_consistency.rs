//! Chaos suite: armed failpoints × concurrent sessions.
//!
//! The contract under injected faults is all-or-nothing per query:
//! every concurrent caller either gets a result **bit-identical to the
//! serial reference** (survivors are never silently degraded) or a
//! *typed* lifecycle refusal — the injected error's message, the
//! contained [`CoreError::ExecutionPanicked`], or
//! [`CoreError::DeadlineExceeded`] — and after the chaos is disarmed
//! the engine serves exactly as before: no invariant drift in the pool
//! gauges, the result cache, or the warehouse itself. The ingest side
//! gets the same treatment: a supervised worker that panics mid-stream
//! restarts with consistent stats, and the warehouse ends at exactly
//! the rows of the batches that survived.
//!
//! The failpoint registry and the chaos seed are process-global, so
//! every test serialises on [`serial`] and disarms through a drop
//! guard — a failed assertion cannot leak an armed point into the next
//! test. Each round is seeded ([`fault::set_seed`]), so a failure here
//! reproduces exactly under the same seed.
//!
//! The whole file only exists under `--features failpoints`; the
//! default build compiles none of it (and none of the hooks it arms).

#![cfg(feature = "failpoints")]

use sdwp::core::{CoreError, PersonalizationEngine};
use sdwp::datagen::{PaperScenario, RetailTicker, ScenarioConfig, TickerConfig};
use sdwp::ingest::{EpochPolicy, IngestConfig};
use sdwp::model::AggregationFunction;
use sdwp::olap::fault::{self, FailAction};
use sdwp::olap::{AttributeRef, ExecutionConfig, OlapError, Query, QueryResult};
use sdwp::user::LocationContext;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

const THREADS: usize = 4;
const ROUNDS: usize = 8;
/// Chaos seeds swept per matrix cell: each shifts the firing phase of
/// every armed point, so the same cell explores different
/// interleavings while staying reproducible run to run.
const SEEDS: [u64; 3] = [1, 7, 13];

/// The failpoint registry is process-global: every test takes this lock.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Disarms everything on drop, even when an assertion unwinds.
struct Teardown;
impl Drop for Teardown {
    fn drop(&mut self) {
        fault::disarm_all();
        fault::set_seed(0);
    }
}

/// Silences *injected* panics only (each would otherwise print a full
/// backtrace); everything else — failed assertions included — still
/// reaches the previous hook. Restored on drop.
struct QuietPanics(Arc<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>);
impl QuietPanics {
    fn install() -> Self {
        let previous: Arc<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send> =
            Arc::from(std::panic::take_hook());
        let forward = Arc::clone(&previous);
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|message| message.starts_with("failpoint "));
            if !injected {
                forward(info);
            }
        }));
        QuietPanics(previous)
    }
}
impl Drop for QuietPanics {
    fn drop(&mut self) {
        // Restoring the hook from a panicking thread would itself panic
        // (a double panic aborts the process); a failed assertion keeps
        // the filtering hook instead, which only hides injected noise.
        if std::thread::panicking() {
            return;
        }
        let previous = Arc::clone(&self.0);
        std::panic::set_hook(Box::new(move |info| previous(info)));
    }
}

/// The engine under chaos: a parallel executor (so the shared pool and
/// its containment paths exist), small morsels (so the scan-loop
/// failpoints evaluate many times per query), and the result cache off
/// — a hit would answer from memory and bypass the very paths being
/// tested. Cache semantics under faults get their own test with the
/// cache on.
fn chaos_engine(scenario: &PaperScenario, cache_capacity: usize) -> Arc<PersonalizationEngine> {
    let engine = PersonalizationEngine::with_execution_config(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
        ExecutionConfig::default()
            .with_workers(4)
            .with_morsel_rows(16)
            .with_cache_capacity(cache_capacity),
    );
    engine.register_user(scenario.manager.clone());
    Arc::new(engine)
}

fn login(engine: &PersonalizationEngine, scenario: &PaperScenario) -> u64 {
    let store = &scenario.retail.stores[0];
    engine
        .start_session(
            "regional-manager",
            Some(LocationContext::at_point(
                "office",
                store.location.x(),
                store.location.y(),
            )),
        )
        .expect("session starts")
        .id
}

/// The query panel every chaos round runs.
fn panel() -> Vec<Query> {
    vec![
        Query::over("Sales").measure("UnitSales"),
        Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales")
            .measure("StoreSales"),
        Query::over("Sales")
            .group_by(AttributeRef::new("Product", "Category", "name"))
            .measure_agg("UnitSales", AggregationFunction::Count)
            .measure_agg("StoreCost", AggregationFunction::Avg),
    ]
}

/// Asserts the pool shows no residue: nothing in flight, nothing queued.
fn assert_pool_quiescent(engine: &PersonalizationEngine) {
    let stats = engine
        .morsel_pool()
        .expect("parallel engine has a pool")
        .stats();
    for tenant in &stats.tenants {
        assert_eq!(
            (tenant.in_flight, tenant.queued),
            (0, 0),
            "pool residue after chaos: {tenant:?}"
        );
    }
}

/// Survivors of injected *errors* are bit-identical to the serial
/// reference; the failures carry the injected message through the typed
/// error chain; and once disarmed the engine serves exactly as before.
#[test]
fn injected_errors_leave_survivors_bit_identical() {
    let _serial = serial();
    let _teardown = Teardown;
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let engine = chaos_engine(&scenario, 0);
    let queries = panel();
    let reference_session = login(&engine, &scenario);
    let reference: Vec<QueryResult> = queries
        .iter()
        .map(|q| engine.query(reference_session, q).expect("reference runs"))
        .collect();

    // One failpoint per pipeline stage: plan resolution, the morsel scan
    // loop (standalone and shared-scan batch), and the merge.
    for site in [
        "query.resolve",
        "query.scan.morsel",
        "query.batch.morsel",
        "query.merge",
    ] {
        for seed in SEEDS {
            fault::set_seed(seed);
            fault::arm(site, FailAction::Error("chaos".into()), 3, None);
            let failures: u64 = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..THREADS)
                    .map(|_| {
                        let engine = Arc::clone(&engine);
                        let scenario = &scenario;
                        let queries = &queries;
                        let reference = &reference;
                        scope.spawn(move || {
                            let session = login(&engine, scenario);
                            let mut failures = 0u64;
                            for _ in 0..ROUNDS {
                                for (query, expected) in queries.iter().zip(reference) {
                                    match engine.query(session, query) {
                                        Ok(result) => assert_eq!(
                                            &result, expected,
                                            "a survivor drifted from the serial reference"
                                        ),
                                        Err(CoreError::Olap(OlapError::InvalidQuery {
                                            message,
                                        })) => {
                                            assert_eq!(message, "injected: chaos");
                                            failures += 1;
                                        }
                                        Err(other) => {
                                            panic!("untyped failure under {site}: {other:?}")
                                        }
                                    }
                                }
                                // The shared-scan batch path, same contract
                                // per panel entry.
                                match engine.query_batch(session, queries) {
                                    Ok(entries) => {
                                        for (entry, expected) in entries.into_iter().zip(reference)
                                        {
                                            match entry {
                                                Ok(result) => assert_eq!(&result, expected),
                                                Err(CoreError::Olap(OlapError::InvalidQuery {
                                                    message,
                                                })) => {
                                                    assert_eq!(message, "injected: chaos");
                                                    failures += 1;
                                                }
                                                Err(other) => panic!(
                                                    "untyped batch failure under {site}: {other:?}"
                                                ),
                                            }
                                        }
                                    }
                                    Err(CoreError::Olap(OlapError::InvalidQuery { message })) => {
                                        assert_eq!(message, "injected: chaos");
                                        failures += 1;
                                    }
                                    Err(other) => {
                                        panic!("untyped batch failure under {site}: {other:?}")
                                    }
                                }
                            }
                            engine.end_session(session).expect("chaos session ends");
                            failures
                        })
                    })
                    .collect();
                workers.into_iter().map(|w| w.join().unwrap()).sum()
            });
            assert!(
                fault::hits(site) > 0,
                "the {site} round never fired — the chaos was a no-op"
            );
            // The scan sites fire per morsel inside whichever path owns
            // them; the per-query sites must have failed queries.
            if site == "query.resolve" || site == "query.merge" {
                assert!(failures > 0, "{site} fired but nothing surfaced");
            }
            fault::disarm(site);
        }
    }

    // No drift once disarmed: the same panel, the same bytes.
    for (query, expected) in queries.iter().zip(&reference) {
        assert_eq!(&engine.query(reference_session, query).unwrap(), expected);
    }
    assert_pool_quiescent(&engine);
}

/// Injected *panics* in the scan loop and at helper startup are
/// contained to their own query: concurrent survivors stay
/// bit-identical, the victims get the typed
/// [`CoreError::ExecutionPanicked`], and the pool keeps its workers.
#[test]
fn contained_panics_poison_only_their_own_query() {
    let _serial = serial();
    let _teardown = Teardown;
    let _quiet = QuietPanics::install();
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let engine = chaos_engine(&scenario, 0);
    let queries = panel();
    let reference_session = login(&engine, &scenario);
    let reference: Vec<QueryResult> = queries
        .iter()
        .map(|q| engine.query(reference_session, q).expect("reference runs"))
        .collect();
    let workers_before = engine.morsel_pool().unwrap().stats().workers;

    for site in ["query.scan.morsel", "pool.helper.start"] {
        for seed in SEEDS {
            fault::set_seed(seed);
            fault::arm(site, FailAction::Panic("chaos".into()), 5, None);
            let contained: u64 = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..THREADS)
                    .map(|_| {
                        let engine = Arc::clone(&engine);
                        let scenario = &scenario;
                        let queries = &queries;
                        let reference = &reference;
                        scope.spawn(move || {
                            let session = login(&engine, scenario);
                            let mut contained = 0u64;
                            for _ in 0..ROUNDS {
                                for (query, expected) in queries.iter().zip(reference) {
                                    match engine.query(session, query) {
                                        Ok(result) => assert_eq!(
                                            &result, expected,
                                            "a survivor drifted next to a contained panic"
                                        ),
                                        Err(CoreError::ExecutionPanicked) => contained += 1,
                                        Err(other) => {
                                            panic!("uncontained failure under {site}: {other:?}")
                                        }
                                    }
                                }
                            }
                            engine.end_session(session).expect("chaos session ends");
                            contained
                        })
                    })
                    .collect();
                workers.into_iter().map(|w| w.join().unwrap()).sum()
            });
            assert!(fault::hits(site) > 0, "the {site} round never fired");
            assert!(contained > 0, "{site} panicked but nothing was contained");
            fault::disarm(site);
        }
    }

    // Containment really contained: every worker survived, the pool is
    // clean, and the panel still matches the reference bit for bit.
    assert_eq!(
        engine.morsel_pool().unwrap().stats().workers,
        workers_before
    );
    for (query, expected) in queries.iter().zip(&reference) {
        assert_eq!(&engine.query(reference_session, query).unwrap(), expected);
    }
    assert_pool_quiescent(&engine);
}

/// A deadline expiring inside a degraded scan cancels with the typed
/// refusal and **no partial state**: the result cache holds nothing a
/// cancelled query touched, and once the fault clears the same query
/// completes and caches normally.
#[test]
fn deadlines_cancel_degraded_queries_with_no_partial_state() {
    let _serial = serial();
    let _teardown = Teardown;
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    // Cache ON here: the point is that cancelled queries never publish
    // into it.
    let engine = chaos_engine(&scenario, 64);
    let session = login(&engine, &scenario);
    let query = Query::over("Sales")
        .group_by(AttributeRef::new("Store", "City", "name"))
        .measure("UnitSales");
    let budget = Some(Duration::from_millis(5));

    fault::set_seed(SEEDS[0]);
    fault::arm("query.scan.morsel", FailAction::SleepMs(10), 1, None);
    fault::arm("query.batch.morsel", FailAction::SleepMs(10), 1, None);
    for _ in 0..3 {
        match engine.query_with_deadline(session, &query, budget) {
            Err(CoreError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
    match engine.query_batch_with_deadline(session, std::slice::from_ref(&query), budget) {
        Err(CoreError::DeadlineExceeded) => {}
        Ok(entries) => {
            for entry in entries {
                match entry {
                    Err(CoreError::DeadlineExceeded) => {}
                    other => panic!("expected DeadlineExceeded in the batch, got {other:?}"),
                }
            }
        }
        Err(other) => panic!("untyped batch failure: {other:?}"),
    }
    assert!(fault::hits("query.scan.morsel") > 0);
    assert!(fault::hits("query.batch.morsel") > 0);
    fault::disarm("query.batch.morsel");
    assert_eq!(
        engine.cache_stats().entries,
        0,
        "a cancelled query must leave the result cache untouched"
    );
    fault::disarm("query.scan.morsel");

    // Fault cleared: the very same call completes, caches, and repeats
    // identically from the cache.
    let first = engine
        .query_with_deadline(session, &query, budget)
        .expect("healthy scan beats the budget");
    assert_eq!(engine.cache_stats().entries, 1);
    let again = engine.query(session, &query).expect("cache answers");
    assert_eq!(first, again);
    assert!(engine.cache_stats().hits >= 1);
    assert_pool_quiescent(&engine);
}

/// The supervised ingest worker under an armed apply-phase panic:
/// every crash drops exactly its own batch, the supervisor restarts the
/// worker (consistent stats, live heartbeat, no residue in the queue
/// accounting), and the warehouse ends at precisely the rows of the
/// batches that survived.
#[test]
fn supervised_ingest_survives_apply_crashes_without_drift() {
    const BATCHES: u64 = 24;
    const APPENDS: usize = 8;

    let _serial = serial();
    let _teardown = Teardown;
    let _quiet = QuietPanics::install();
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let base_rows = scenario.retail.sales.len() as u64;
    let engine = chaos_engine(&scenario, 0);
    let session = login(&engine, &scenario);
    let ingest = engine.start_ingest(
        IngestConfig::default().with_epoch(EpochPolicy::default().with_max_rows(APPENDS)),
    );

    // Appends-only stream: a dropped batch loses its own rows and
    // nothing else, so later batches stay valid no matter which ones
    // the chaos eats. (Id-addressed corrections would desynchronise on
    // the first drop — that producer-side story is the `ProducerLagged`
    // contract, tested with the ticker.)
    let mut ticker = RetailTicker::new(
        &scenario,
        TickerConfig::default()
            .with_appends(APPENDS)
            .with_corrections(0)
            .with_retractions(0),
    );
    fault::set_seed(SEEDS[1]);
    fault::arm("ingest.apply", FailAction::Panic("chaos".into()), 6, None);
    for _ in 0..BATCHES {
        ingest.submit(ticker.next_batch()).expect("stream submits");
    }
    ingest.flush().expect("flush drains the chaos stream");
    // Read the hit counter before disarming: disarm drops the point's
    // state, counters included.
    let crashes = fault::hits("ingest.apply");
    fault::disarm("ingest.apply");
    assert!(crashes > 0, "the ingest round never fired");

    // Supervisor accounting: one restart and one failed batch per
    // crash, everything else applied, nothing stuck in the queue, the
    // worker alive and heartbeating.
    let stats = ingest.stats();
    assert_eq!(stats.batches_submitted, BATCHES);
    assert_eq!(stats.worker_restarts, crashes);
    assert_eq!(stats.batches_failed, crashes);
    assert_eq!(stats.batches_applied, BATCHES - crashes);
    assert_eq!(stats.queue_depth, 0);
    assert!(!stats.worker_down);
    assert!(stats.last_heartbeat_micros > 0);
    assert!(stats
        .last_error
        .as_deref()
        .expect("the crash left a note")
        .contains("panicked"));

    // Warehouse truth: exactly the survivors' rows are visible — a
    // count over the published snapshot equals base + applied × batch
    // size, with no torn batch in between.
    let count = engine
        .query(
            session,
            &Query::over("Sales").measure_agg("UnitSales", AggregationFunction::Count),
        )
        .expect("post-chaos query runs");
    let expected = base_rows + stats.batches_applied * APPENDS as u64;
    assert_eq!(
        count.rows[0].values[0],
        sdwp::olap::CellValue::Integer(expected as i64)
    );

    // A publish-phase crash after a successful apply: the restart
    // republishes the applied-but-unpublished state, so the batch's
    // rows are visible even though its publish step never ran.
    fault::arm(
        "ingest.publish",
        FailAction::Panic("chaos".into()),
        1,
        Some(1),
    );
    ingest.submit(ticker.next_batch()).expect("submit survives");
    ingest.flush().expect("flush survives the publish crash");
    assert_eq!(fault::hits("ingest.publish"), 1);
    fault::disarm("ingest.publish");
    let after = ingest.stats();
    assert_eq!(after.worker_restarts, crashes + 1);
    assert_eq!(after.batches_applied, stats.batches_applied + 1);
    let count = engine
        .query(
            session,
            &Query::over("Sales").measure_agg("UnitSales", AggregationFunction::Count),
        )
        .expect("query after publish crash");
    assert_eq!(
        count.rows[0].values[0],
        sdwp::olap::CellValue::Integer((expected + APPENDS as u64) as i64),
        "an applied batch whose publish crashed must still become visible"
    );
}
