//! Integration test of the observability surface: stage-timing
//! histograms keyed by session class, engine counters and gauges, the
//! slow-query journal, and the `Metrics`/`MetricsText`/`DictCacheStats`
//! facade endpoints — plus the disabled-registry zero-recording path.

use sdwp::core::{MetricsRegistry, PersonalizationEngine, WebFacade, WebRequest, WebResponse};
use sdwp::datagen::{PaperScenario, ScenarioConfig};
use sdwp::ingest::DeltaBatch;
use sdwp::olap::{AttributeRef, CellValue, ExecutionConfig, Query};
use sdwp::prml::corpus::ALL_PAPER_RULES;
use std::sync::Arc;

fn facade(scenario: &PaperScenario) -> WebFacade {
    let engine = PersonalizationEngine::with_layer_source(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
    );
    engine.register_user(scenario.manager.clone());
    engine.set_parameter("threshold", 2.0);
    for rule in ALL_PAPER_RULES {
        engine.add_rules_text(rule).expect("paper rule registers");
    }
    WebFacade::new(engine)
}

fn login_classed(facade: &WebFacade, class: Option<&str>) -> u64 {
    match facade.handle(WebRequest::Login {
        user: "regional-manager".into(),
        location: Some((50.0, 50.0)),
        class: class.map(str::to_string),
    }) {
        WebResponse::LoggedIn { session, .. } => session,
        other => panic!("unexpected response {other:?}"),
    }
}

fn metrics(facade: &WebFacade) -> sdwp::core::MetricsSnapshot {
    match facade.handle(WebRequest::Metrics) {
        WebResponse::Metrics { snapshot } => snapshot,
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn stage_latencies_are_keyed_by_session_class() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let facade = facade(&scenario);
    let session = login_classed(&facade, Some("dashboard"));

    // A standalone aggregate, twice: the repeat hits the result cache,
    // so exactly one execution flows through the scan/merge stages.
    let aggregate = WebRequest::Aggregate {
        session,
        fact: "Sales".into(),
        measure: "UnitSales".into(),
        group_by: vec![("Store".into(), "City".into(), "name".into())],
        deadline_micros: None,
    };
    assert!(matches!(
        facade.handle(aggregate.clone()),
        WebResponse::Table { .. }
    ));
    assert!(matches!(
        facade.handle(aggregate),
        WebResponse::Table { .. }
    ));

    // A dashboard batch through the shared-scan pipeline.
    let by_city = Query::over("Sales")
        .measure("UnitSales")
        .group_by(AttributeRef::new("Store", "City", "name"));
    let total = Query::over("Sales").measure("StoreCost");
    assert!(matches!(
        facade.handle(WebRequest::QueryBatch {
            session,
            queries: vec![by_city, total],
            deadline_micros: None,
        }),
        WebResponse::BatchResult { .. }
    ));

    // A spatial selection fires the (compiled) content-update rule.
    assert!(matches!(
        facade.handle(WebRequest::SpatialSelection {
            session,
            element: "GeoMD.Store.City".into(),
            expression: None,
        }),
        WebResponse::SelectionRecorded { .. }
    ));

    let snap = metrics(&facade);
    assert!(snap.enabled);

    // Every query-pipeline stage shows up under the login's class, with
    // ordered quantiles and a per-stage count matching one execution.
    for stage in [
        "query_resolve",
        "query_scan",
        "query_merge",
        "query_finalize",
        "query_total",
        "batch_resolve",
        "batch_scan",
        "batch_merge",
        "batch_finalize",
        "batch_total",
        "cache_lookup",
        "session_start",
    ] {
        let row = snap
            .stage(stage, "dashboard")
            .unwrap_or_else(|| panic!("stage {stage} missing for class dashboard"));
        assert!(row.count >= 1, "{stage} count");
        assert!(
            row.p50 <= row.p90 && row.p90 <= row.p99,
            "{stage} quantiles"
        );
        assert!(
            snap.stage(stage, "default").is_none(),
            "{stage} leaked into the default class"
        );
    }
    // query_total counts both calls (the cached repeat included); the
    // execution stages only saw the miss.
    assert_eq!(snap.stage("query_total", "dashboard").unwrap().count, 2);
    assert_eq!(snap.stage("query_scan", "dashboard").unwrap().count, 1);

    // Rule firing was timed per phase under the session's class.
    assert!(snap.stage("rule_condition", "dashboard").is_some());
    assert!(snap.stage("rule_effect", "dashboard").is_some());

    // Engine counters and gauges ride along in the same snapshot.
    assert!(snap.counter("cache_hits").unwrap() >= 1);
    assert!(snap.counter("dict_cache_misses").unwrap() >= 1);
    assert_eq!(snap.gauge("sessions_active"), Some(1));
    assert!(snap.gauge("cube_generation").is_some());

    // Logout moves the gauge pair and times session_end.
    assert_eq!(
        facade.handle(WebRequest::Logout { session }),
        WebResponse::LoggedOut
    );
    let after = metrics(&facade);
    assert_eq!(after.gauge("sessions_active"), Some(0));
    assert_eq!(after.counter("sessions_reclaimed"), Some(1));
    assert!(after.stage("session_end", "dashboard").is_some());
}

#[test]
fn ingest_stages_and_queue_depth_are_observable() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let facade = facade(&scenario);
    let batch = DeltaBatch::new().append(
        "Sales",
        vec![
            ("Store", 0usize),
            ("Customer", 0usize),
            ("Product", 0usize),
            ("Time", 0usize),
        ],
        vec![("UnitSales", CellValue::Float(3.0))],
    );
    assert!(matches!(
        facade.handle(WebRequest::Ingest { batch }),
        WebResponse::IngestAccepted { .. }
    ));
    facade
        .engine()
        .ingest_handle()
        .expect("ingest pipeline is running")
        .flush()
        .unwrap();

    let snap = metrics(&facade);
    for stage in ["ingest_validate", "ingest_apply", "ingest_publish"] {
        let row = snap
            .stage(stage, "default")
            .unwrap_or_else(|| panic!("stage {stage} missing"));
        assert!(row.count >= 1, "{stage} count");
    }
    // After the flush drained the queue, the derived backlog gauge is 0,
    // and the same number reaches the IngestStats response.
    assert_eq!(snap.gauge("ingest_queue_depth"), Some(0));
    assert_eq!(snap.counter("ingest_batches_applied"), Some(1));
    match facade.handle(WebRequest::IngestStats) {
        WebResponse::IngestStats { queue_depth, .. } => assert_eq!(queue_depth, 0),
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn slow_query_journal_captures_the_stage_breakdown() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let facade = facade(&scenario);
    let session = login_classed(&facade, Some("vip"));
    // Threshold 0: every query is journaled.
    facade.engine().set_slow_query_threshold_micros(0);
    assert!(matches!(
        facade.handle(WebRequest::Aggregate {
            session,
            fact: "Sales".into(),
            measure: "UnitSales".into(),
            group_by: vec![("Store".into(), "City".into(), "name".into())],
            deadline_micros: None,
        }),
        WebResponse::Table { .. }
    ));
    let by_city = Query::over("Sales")
        .measure("StoreCost")
        .group_by(AttributeRef::new("Store", "City", "name"));
    assert!(matches!(
        facade.handle(WebRequest::QueryBatch {
            session,
            queries: vec![by_city],
            deadline_micros: None,
        }),
        WebResponse::BatchResult { .. }
    ));

    let snap = metrics(&facade);
    let standalone = snap
        .slow_queries
        .iter()
        .find(|r| r.shape.starts_with("Sales"))
        .expect("standalone query journaled");
    assert!(standalone.shape.contains("group_by=[name]"));
    assert_eq!(standalone.class, "vip");
    assert!(standalone.workers >= 1);
    // The stage breakdown never exceeds the end-to-end total.
    assert!(
        standalone.resolve_micros
            + standalone.scan_micros
            + standalone.merge_micros
            + standalone.finalize_micros
            <= standalone.total_micros
    );
    let batched = snap
        .slow_queries
        .iter()
        .find(|r| r.shape.starts_with("batch:Sales"))
        .expect("batch fact group journaled");
    assert_eq!(batched.class, "vip");

    // Raising the threshold stops journaling without clearing history.
    facade.engine().set_slow_query_threshold_micros(u64::MAX);
    let _ = login_classed(&facade, Some("vip"));
    assert_eq!(metrics(&facade).slow_queries.len(), snap.slow_queries.len());
}

#[test]
fn prometheus_text_and_dict_cache_endpoints() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let facade = facade(&scenario);
    let session = login_classed(&facade, None);
    assert!(matches!(
        facade.handle(WebRequest::Aggregate {
            session,
            fact: "Sales".into(),
            measure: "UnitSales".into(),
            group_by: vec![("Store".into(), "City".into(), "name".into())],
            deadline_micros: None,
        }),
        WebResponse::Table { .. }
    ));

    let body = match facade.handle(WebRequest::MetricsText) {
        WebResponse::MetricsText { body } => body,
        other => panic!("unexpected response {other:?}"),
    };
    assert!(body.contains("# TYPE sdwp_stage_latency_micros summary"));
    assert!(body.contains("stage=\"query_scan\",class=\"default\",quantile=\"0.99\""));
    assert!(body.contains("sdwp_sessions_active 1"));
    assert!(body.contains("sdwp_slow_queries_retained"));

    // The grouped aggregate built one dictionary: the dedicated
    // endpoint reports the same counters `dict_cache_stats()` holds.
    let stats = facade.engine().dict_cache_stats();
    match facade.handle(WebRequest::DictCacheStats) {
        WebResponse::DictCacheStats {
            hits,
            misses,
            entries,
            invalidations,
        } => {
            assert_eq!(
                (hits, misses, entries, invalidations),
                (stats.hits, stats.misses, stats.entries, stats.invalidations)
            );
            assert!(misses >= 1);
            assert!(entries >= 1);
        }
        other => panic!("unexpected response {other:?}"),
    }

    // The structured snapshot survives the serde boundary the facade
    // messages are built for (round trip through the derive shim).
    let response = facade.handle(WebRequest::Metrics);
    let debug = format!("{response:?}");
    assert!(debug.contains("query_scan"));
    let request = WebRequest::Metrics;
    assert_eq!(request.clone(), request);
}

#[test]
fn disabled_registry_keeps_the_pipeline_dark() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let engine = PersonalizationEngine::with_observability(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
        ExecutionConfig::default(),
        Arc::new(MetricsRegistry::disabled()),
    );
    engine.register_user(scenario.manager.clone());
    engine.set_parameter("threshold", 2.0);
    for rule in ALL_PAPER_RULES {
        engine.add_rules_text(rule).expect("paper rule registers");
    }
    let facade = WebFacade::new(engine);
    let session = login_classed(&facade, Some("dashboard"));
    assert!(matches!(
        facade.handle(WebRequest::Aggregate {
            session,
            fact: "Sales".into(),
            measure: "UnitSales".into(),
            group_by: vec![("Store".into(), "City".into(), "name".into())],
            deadline_micros: None,
        }),
        WebResponse::Table { .. }
    ));
    let snap = metrics(&facade);
    assert!(!snap.enabled);
    assert!(snap.stages.is_empty(), "disabled registry recorded stages");
    assert!(snap.slow_queries.is_empty());
    // Engine-owned counters still work — they are plain atomics, not
    // part of the recording fast path.
    assert_eq!(snap.gauge("sessions_active"), Some(1));
}
