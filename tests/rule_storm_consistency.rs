//! Concurrency suite for hot-swappable compiled rulesets: an event storm
//! races ruleset reloads, ingest epochs and compiled/interpreted mode
//! flips, and no firing may ever observe a half-swapped ruleset or a torn
//! warehouse snapshot.
//!
//! The two rulesets in rotation are distinguishable by construction: the
//! *alpha* set fires exactly two named rules on `SessionStart`, the
//! *beta* set exactly three. Every login therefore must report either the
//! complete alpha effect set or the complete beta effect set — a mixed
//! report would prove a firing saw rules from two different publications
//! (exactly what publishing the interpreter + compiled pair as one
//! `ArcSwap` value forbids). Broken reloads thrown into the storm must
//! bounce without ever interrupting service.

use sdwp::core::PersonalizationEngine;
use sdwp::datagen::{PaperScenario, ScenarioConfig};
use sdwp::ingest::{DeltaBatch, EpochPolicy, IngestConfig};
use sdwp::model::AggregationFunction;
use sdwp::olap::{CellValue, Query};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

const STORM_THREADS: usize = 6;
const LIFECYCLES: usize = 40;
/// Hard cap on extra lifecycles a worker may run while waiting to observe
/// both publications; hitting it means reloads stopped landing at all.
const MAX_LIFECYCLES: usize = 10_000;
const ROWS_PER_BATCH: usize = 5;

/// The alpha publication: exactly two rules match `SessionStart`.
const ALPHA_RULES: &str = "\
Rule:alphaOne When SessionStart do SetContent(SUS.DecisionMaker.stormAlpha, 1) endWhen
Rule:alphaTwo When SessionStart do SetContent(SUS.DecisionMaker.stormAlphaToo, 2) endWhen
";

/// The beta publication: exactly three rules match `SessionStart`.
const BETA_RULES: &str = "\
Rule:betaOne When SessionStart do SetContent(SUS.DecisionMaker.stormBeta, 1) endWhen
Rule:betaTwo When SessionStart do SetContent(SUS.DecisionMaker.stormBetaToo, 2) endWhen
Rule:betaThree When SessionStart do SetContent(SUS.DecisionMaker.stormBetaTri, 3) endWhen
";

/// A reload that must be rejected at compile time (non-SUS target),
/// leaving whatever publication is in service untouched.
const BROKEN_RULES: &str = "\
Rule:broken When SessionStart do SetContent(MD.Sales.Store, 1) endWhen
";

fn alpha_names() -> BTreeSet<String> {
    ["alphaOne", "alphaTwo"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

fn beta_names() -> BTreeSet<String> {
    ["betaOne", "betaTwo", "betaThree"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// ≥ 6 threads storm full session lifecycles while one thread hot-swaps
/// the ruleset between the alpha and beta publications (with broken
/// reloads mixed in), one thread streams ingest batches so snapshot
/// generations race the firings, and one thread flips compiled firing on
/// and off. Every observed firing must be whole-alpha or whole-beta, and
/// every observed snapshot a whole number of ingest batches.
#[test]
fn rule_storm_never_observes_a_half_swapped_ruleset() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let base_rows = scenario.retail.sales.len();
    let engine = Arc::new(PersonalizationEngine::with_layer_source(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
    ));
    for worker in 0..STORM_THREADS {
        let mut manager = scenario.manager.clone();
        manager.id = format!("storm-{worker}");
        engine.register_user(manager);
    }
    engine
        .reload_rules_text(ALPHA_RULES)
        .expect("alpha rules publish");

    let alpha = alpha_names();
    let beta = beta_names();
    let done = Arc::new(AtomicBool::new(false));
    // Waiters: the storm threads, the swapper, the flipper, and this
    // thread (which feeds the ingest rider below).
    let barrier = Arc::new(Barrier::new(STORM_THREADS + 3));

    // Ingest rider: fixed-size append batches so storm threads can verify
    // whole-batch snapshot visibility while rules fire around them.
    let ingest = engine.start_ingest(
        IngestConfig::default().with_epoch(
            EpochPolicy::default()
                .with_max_rows(ROWS_PER_BATCH * 2)
                .with_max_interval(std::time::Duration::from_millis(1)),
        ),
    );

    // The swapper: alpha → beta → alpha → … until the storm is over, with
    // a broken reload thrown in every few swaps that must bounce without
    // a service gap.
    let swapper = {
        let engine = Arc::clone(&engine);
        let barrier = Arc::clone(&barrier);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            barrier.wait();
            let mut swap = 0usize;
            while !done.load(Ordering::Relaxed) {
                if swap % 5 == 4 {
                    let refused = engine.reload_rules_text(BROKEN_RULES);
                    assert!(refused.is_err(), "broken ruleset must be refused");
                } else {
                    let text = if swap.is_multiple_of(2) {
                        BETA_RULES
                    } else {
                        ALPHA_RULES
                    };
                    engine.reload_rules_text(text).expect("reload publishes");
                }
                swap += 1;
                thread::yield_now();
            }
            swap
        })
    };

    // The mode flipper: compiled and interpreted firing must be
    // indistinguishable, so flipping between them mid-storm is invisible
    // to every invariant below.
    let flipper = {
        let engine = Arc::clone(&engine);
        let barrier = Arc::clone(&barrier);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            barrier.wait();
            let mut compiled = false;
            while !done.load(Ordering::Relaxed) {
                engine.set_compiled_firing(compiled);
                compiled = !compiled;
                thread::yield_now();
            }
            engine.set_compiled_firing(true);
        })
    };

    let alpha_sightings = Arc::new(AtomicUsize::new(0));
    let beta_sightings = Arc::new(AtomicUsize::new(0));
    let count_query = Query::over("Sales").measure_agg("UnitSales", AggregationFunction::Count);

    let workers: Vec<_> = (0..STORM_THREADS)
        .map(|worker| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            let alpha = alpha.clone();
            let beta = beta.clone();
            let alpha_sightings = Arc::clone(&alpha_sightings);
            let beta_sightings = Arc::clone(&beta_sightings);
            let count_query = count_query.clone();
            let user = format!("storm-{worker}");
            thread::spawn(move || {
                barrier.wait();
                let (mut rounds, mut seen_alpha, mut seen_beta) = (0usize, false, false);
                // Run the agreed number of lifecycles, then keep going
                // until this thread has personally raced both
                // publications (capped so a dead swapper fails loudly).
                while rounds < LIFECYCLES || !seen_alpha || !seen_beta {
                    rounds += 1;
                    assert!(
                        rounds <= MAX_LIFECYCLES,
                        "never observed both publications — reloads are not landing"
                    );
                    let handle = engine
                        .start_session(&user, None)
                        .expect("login under storm");
                    let report = &handle.report;

                    // The whole-publication invariant: the fired rule
                    // names are exactly alpha's or exactly beta's.
                    let fired: BTreeSet<String> =
                        report.rules_with_effects.iter().cloned().collect();
                    if fired == alpha {
                        assert_eq!(report.rules_matched, alpha.len());
                        seen_alpha = true;
                        alpha_sightings.fetch_add(1, Ordering::Relaxed);
                    } else if fired == beta {
                        assert_eq!(report.rules_matched, beta.len());
                        seen_beta = true;
                        beta_sightings.fetch_add(1, Ordering::Relaxed);
                    } else {
                        panic!("firing saw a half-swapped ruleset: {fired:?}");
                    }

                    // Spatial selections match no rule in either
                    // publication: the lock-free no-match fast path, under
                    // contention, with the swap racing underneath.
                    let report = engine
                        .record_spatial_selection(handle.id, "GeoMD.Store.City", None)
                        .expect("selection under storm");
                    assert_eq!(report.rules_matched, 0);
                    assert!(report.effects.is_empty());

                    // A query mid-storm sees a whole number of ingest
                    // batches — rule firings never publish a torn fact
                    // snapshot.
                    let result = engine
                        .query(handle.id, &count_query)
                        .expect("query under storm");
                    let counted = result.rows[0].values[0].as_number().unwrap() as usize;
                    assert_eq!(
                        (counted - base_rows) % ROWS_PER_BATCH,
                        0,
                        "observed a torn ingest batch"
                    );

                    let report = engine.end_session(handle.id).expect("logout under storm");
                    assert_eq!(report.rules_matched, 0, "no SessionEnd rules are published");
                }
            })
        })
        .collect();

    // Feed the ingest rider from this thread while the storm runs.
    barrier.wait();
    for _ in 0..80 {
        let mut batch = DeltaBatch::new();
        for _ in 0..ROWS_PER_BATCH {
            batch = batch.append(
                "Sales",
                vec![
                    ("Store", 0usize),
                    ("Customer", 0usize),
                    ("Product", 0usize),
                    ("Time", 0usize),
                ],
                vec![("UnitSales", CellValue::Float(1.0))],
            );
        }
        ingest.submit(batch).expect("pipeline accepts the batch");
    }
    ingest.flush().expect("stream drains");

    for worker in workers {
        worker.join().expect("storm thread must not panic");
    }
    done.store(true, Ordering::Relaxed);
    let swaps = swapper.join().expect("swapper must not panic");
    flipper.join().expect("flipper must not panic");

    // Both publications were actually observed under contention — every
    // storm thread kept running lifecycles until it personally saw alpha
    // and beta, so the reloads provably raced the firings.
    assert!(swaps > 1, "the swapper never alternated publications");
    assert!(
        alpha_sightings.load(Ordering::Relaxed) > 0,
        "the alpha publication was never observed"
    );
    assert!(
        beta_sightings.load(Ordering::Relaxed) > 0,
        "the beta publication was never observed"
    );

    // Whatever publication won the race, the in-service pair is coherent:
    // the interpreter and its compiled form have the same rule count and
    // both correspond to one whole publication.
    let interpreter_rules: BTreeSet<String> = engine
        .rules()
        .rules()
        .iter()
        .map(|r| r.name.clone())
        .collect();
    assert_eq!(engine.rules().rules().len(), engine.compiled_rules().len());
    assert!(
        interpreter_rules == alpha || interpreter_rules == beta,
        "final publication is torn: {interpreter_rules:?}"
    );

    // All ingested rows arrived; sessions all closed.
    assert_eq!(
        engine.cube().total_live_fact_rows(),
        base_rows + 80 * ROWS_PER_BATCH
    );
    // Logout reclaims session state, so a storm of lifecycles leaves the
    // session map empty rather than full of dead entries.
    assert!(engine.sessions().is_empty());
}
