//! Live analysis over a streaming warehouse: decision makers query while
//! the retail ticker streams sales appends, price corrections and
//! cancellations through the ingestion pipeline.
//!
//! Demonstrates the write path end to end — bounded-channel submission,
//! epoch-batched application, atomic snapshot publication — and how the
//! read path (sessions, personalized views, result cache) rides along
//! unchanged: queries never block on ingestion and always see a whole
//! number of batches.
//!
//! Run with: `cargo run --example streaming_ingest`

use sdwp::core::PersonalizationEngine;
use sdwp::datagen::{PaperScenario, RetailTicker, ScenarioConfig, TickerConfig};
use sdwp::ingest::{EpochPolicy, IngestConfig};
use sdwp::olap::{AttributeRef, Query};
use sdwp::prml::corpus::ALL_PAPER_RULES;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn main() {
    let scenario = PaperScenario::generate(ScenarioConfig::default());
    let engine = Arc::new(PersonalizationEngine::with_layer_source(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
    ));
    engine.register_user(scenario.manager.clone());
    engine.set_parameter("threshold", 2.0);
    for rule in ALL_PAPER_RULES {
        engine.add_rules_text(rule).expect("paper rules register");
    }

    // Epochs close after 256 mutations or 10 ms, whichever first.
    let ingest = engine.start_ingest(
        IngestConfig::default().with_queue_depth(32).with_epoch(
            EpochPolicy::default()
                .with_max_rows(256)
                .with_max_interval(Duration::from_millis(10)),
        ),
    );
    println!(
        "warehouse online: {} sales rows, generation {}",
        engine.cube().total_live_fact_rows(),
        engine.cube_generation()
    );

    // The upstream feed: a ticker thread streaming delta batches.
    let stop = Arc::new(AtomicBool::new(false));
    let feed = {
        let stop = Arc::clone(&stop);
        let handle = ingest.clone();
        let mut ticker = RetailTicker::new(
            &scenario,
            TickerConfig::default()
                .with_appends(24)
                .with_corrections(4)
                .with_retractions(2),
        );
        thread::spawn(move || {
            let mut deferred = 0u64;
            // A rejected batch is retried, not regenerated: the ticker
            // tracks the warehouse's row ids, so dropping one of its
            // batches would desynchronise later corrections/retractions.
            let mut pending = None;
            while !stop.load(Ordering::Relaxed) {
                let batch = pending.take().unwrap_or_else(|| ticker.next_batch());
                // try_submit: under backpressure the feed defers instead of
                // stalling, and the refused batch rides back in the error.
                if let Err(refused) = handle.try_submit(batch) {
                    deferred += 1;
                    pending = refused.into_batch();
                }
                thread::sleep(Duration::from_millis(1));
            }
            deferred
        })
    };

    // A regional manager analyses sales while the stream runs.
    let store = &scenario.retail.stores[0];
    let session = engine
        .start_session(
            "regional-manager",
            Some(sdwp::user::LocationContext::at_point(
                "office",
                store.location.x() + 0.5,
                store.location.y(),
            )),
        )
        .expect("login succeeds");
    let by_city = Query::over("Sales")
        .group_by(AttributeRef::new("Store", "City", "name"))
        .measure("UnitSales");

    println!("\n  round | generation | live rows | epochs | visible total");
    println!("  ------+------------+-----------+--------+--------------");
    for round in 1..=8 {
        thread::sleep(Duration::from_millis(25));
        let result = engine.query(session.id, &by_city).expect("query runs");
        let stats = engine.ingest_stats().expect("pipeline running");
        println!(
            "  {round:>5} | {:>10} | {:>9} | {:>6} | {:>13.1}",
            engine.cube_generation(),
            engine.cube().total_live_fact_rows(),
            stats.epochs_published,
            result.column_total(0),
        );
    }

    stop.store(true, Ordering::Relaxed);
    let deferred = feed.join().expect("feed thread finishes");
    let generation = ingest.flush().expect("stream drains");
    let stats = engine.stop_ingest().expect("pipeline was running");

    println!("\nstream drained at generation {generation}:");
    println!(
        "  {} batches applied ({} failed, {} submissions deferred under backpressure)",
        stats.batches_applied, stats.batches_failed, deferred
    );
    println!(
        "  +{} rows, {} cells corrected, -{} rows retracted over {} epochs",
        stats.rows_appended, stats.cells_upserted, stats.rows_retracted, stats.epochs_published
    );
    let cache = engine.cache_stats();
    println!(
        "  result cache: {} hits / {} misses, {} invalidations",
        cache.hits, cache.misses, cache.invalidations
    );
    engine.end_session(session.id).expect("logout");
}
