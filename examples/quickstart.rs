//! Quickstart: the paper's Fig. 1 process end to end.
//!
//! Generates the running example (the Fig. 2 sales warehouse plus external
//! airport / train layers), registers the paper's four PRML rules, logs the
//! regional sales manager in and shows (a) the schema personalization
//! (MD → GeoMD, Fig. 6), (b) the instance personalization (only nearby
//! stores remain visible) and (c) an OLAP roll-up executed through the
//! personalized view.
//!
//! Run with: `cargo run --example quickstart`

use sdwp::core::PersonalizationEngine;
use sdwp::datagen::{PaperScenario, ScenarioConfig};
use sdwp::model::render::render_text;
use sdwp::olap::{AttributeRef, Query};
use sdwp::prml::corpus::ALL_PAPER_RULES;
use sdwp::user::LocationContext;
use std::sync::Arc;

fn main() {
    // 1. Generate the running example: Fig. 2 schema + synthetic instances.
    let scenario = PaperScenario::generate(ScenarioConfig::default());
    println!("== Initial MD model (Fig. 2) ==");
    println!("{}", render_text(scenario.cube.schema()));

    // 2. Assemble the personalization engine.
    let engine = PersonalizationEngine::with_layer_source(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
    );
    engine.register_user(scenario.manager.clone());
    engine.set_parameter("threshold", 2.0);
    for rule in ALL_PAPER_RULES {
        let classes = engine.add_rules_text(rule).expect("paper rule registers");
        println!("registered rule ({:?})", classes[0]);
    }

    // 3. The regional sales manager logs in from next to the first store.
    let store = &scenario.retail.stores[0];
    let location = LocationContext::at_point("office", store.location.x(), store.location.y());
    let session = engine
        .start_session("regional-manager", Some(location))
        .expect("session starts");
    println!("\n== Personalization at session start ==");
    println!("{}", session.report);

    println!("== GeoMD model after the schema rules (Fig. 6) ==");
    println!("{}", render_text(engine.cube().schema()));

    // 4. Analyse sales by city through the personalized view — the spatial
    //    filtering already happened, so any BI tool (spatial or not) sees
    //    only the relevant instances.
    let query = Query::over("Sales")
        .group_by(AttributeRef::new("Store", "City", "name"))
        .measure("UnitSales");
    let personalized = engine.query(session.id, &query).expect("query runs");
    let full = engine.query_unpersonalized(&query).expect("query runs");
    println!("== Sales by city, personalized view ==");
    println!("{personalized}");
    println!(
        "\nThe unpersonalized warehouse would have scanned {} facts over {} cities; \
         the personalized view scanned {} facts over {} cities.",
        full.facts_scanned,
        full.len(),
        personalized.facts_scanned,
        personalized.len()
    );
}
