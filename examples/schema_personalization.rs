//! Example 5.1 in isolation: the spatial *schema* rule.
//!
//! Shows how `AddLayer` and `BecomeSpatial` turn the MD model of Fig. 2
//! into the GeoMD model of Fig. 6, and prints the schema diff and the
//! Graphviz DOT rendering of both models.
//!
//! Run with: `cargo run --example schema_personalization`

use sdwp::core::PersonalizationEngine;
use sdwp::datagen::{PaperScenario, ScenarioConfig};
use sdwp::model::render::{render_dot, render_text};
use sdwp::model::SchemaDiff;
use sdwp::prml::corpus::EXAMPLE_5_1_ADD_SPATIALITY;
use sdwp::prml::{classify_rule, parse_rule, print_rule};
use std::sync::Arc;

fn main() {
    let scenario = PaperScenario::generate(ScenarioConfig::tiny());
    let before = scenario.cube.schema().clone();

    // Show the rule as parsed and pretty-printed, plus the metamodel
    // elements (Fig. 5) it instantiates.
    let rule = parse_rule(EXAMPLE_5_1_ADD_SPATIALITY).expect("paper rule parses");
    println!("== Rule 5.1 (pretty-printed) ==\n{}", print_rule(&rule));
    println!(
        "Metamodel elements instantiated: {:?}\n",
        classify_rule(&rule)
    );

    let engine = PersonalizationEngine::with_layer_source(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
    );
    engine.register_user(scenario.manager.clone());
    engine
        .add_rules_text(EXAMPLE_5_1_ADD_SPATIALITY)
        .expect("rule registers");
    engine
        .start_session("regional-manager", None)
        .expect("session starts");

    let after = engine.cube().schema().clone();
    println!("== Schema diff (MD → GeoMD) ==");
    println!("{}", SchemaDiff::between(&before, &after));

    println!("== MD model (before) ==\n{}", render_text(&before));
    println!("== GeoMD model (after, Fig. 6) ==\n{}", render_text(&after));

    println!("== GeoMD model as Graphviz DOT ==\n{}", render_dot(&after));
}
