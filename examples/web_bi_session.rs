//! The web-facing deployment: a BI front-end driving the engine through
//! serde request/response messages.
//!
//! This mirrors how the paper's approach is meant to be consumed — a web
//! application logs users in, forwards their selections, and renders
//! aggregation tables that are already personalized server-side.
//!
//! Run with: `cargo run --example web_bi_session`

use sdwp::core::{BatchEntry, PersonalizationEngine, WebFacade, WebRequest, WebResponse};
use sdwp::datagen::{PaperScenario, ScenarioConfig};
use sdwp::prml::corpus::ALL_PAPER_RULES;
use std::sync::Arc;

fn show(label: &str, response: &WebResponse) {
    match response {
        WebResponse::LoggedIn { session, report } => {
            println!("[{label}] logged in, session {session}");
            println!("{report}");
        }
        WebResponse::SelectionRecorded { rules_matched } => {
            println!("[{label}] selection recorded ({rules_matched} rule(s) matched)");
        }
        WebResponse::Table {
            columns,
            rows,
            facts_matched,
        } => {
            println!(
                "[{label}] {} ({facts_matched} facts matched)",
                columns.join(" | ")
            );
            for row in rows.iter().take(8) {
                println!("  {}", row.join(" | "));
            }
        }
        WebResponse::BatchResult { results } => {
            println!("[{label}] dashboard refresh, {} panel(s):", results.len());
            for (panel, entry) in results.iter().enumerate() {
                match entry {
                    BatchEntry::Table {
                        columns,
                        rows,
                        facts_matched,
                    } => {
                        println!(
                            "  panel {panel}: {} ({facts_matched} facts matched, {} row(s))",
                            columns.join(" | "),
                            rows.len()
                        );
                    }
                    BatchEntry::Error { message } => {
                        println!("  panel {panel}: error: {message}");
                    }
                }
            }
        }
        WebResponse::Report(report) => println!("[{label}]\n{report}"),
        WebResponse::CacheStats {
            hits,
            misses,
            entries,
            invalidations,
            evictions,
        } => {
            println!(
                "[{label}] result cache: {hits} hit(s), {misses} miss(es), \
                 {entries} entrie(s), {invalidations} invalidation(s), \
                 {evictions} eviction(s)"
            );
        }
        WebResponse::IngestAccepted { deltas } => {
            println!("[{label}] {deltas} delta(s) queued for ingestion");
        }
        WebResponse::IngestStats {
            batches_applied,
            rows_appended,
            epochs_published,
            ..
        } => {
            println!(
                "[{label}] ingest: {batches_applied} batch(es) applied, \
                 {rows_appended} row(s) appended, {epochs_published} epoch(s)"
            );
        }
        WebResponse::DictCacheStats {
            hits,
            misses,
            entries,
            invalidations,
        } => {
            println!(
                "[{label}] dictionary cache: {hits} hit(s), {misses} miss(es), \
                 {entries} entrie(s), {invalidations} invalidation(s)"
            );
        }
        WebResponse::Metrics { snapshot } => {
            println!(
                "[{label}] metrics: {} stage row(s), {} slow quer(ies) retained",
                snapshot.stages.len(),
                snapshot.slow_queries.len()
            );
            for stage in snapshot.stages.iter().take(8) {
                println!(
                    "  {} class={} count={} p50={}µs p99={}µs",
                    stage.stage, stage.class, stage.count, stage.p50, stage.p99
                );
            }
        }
        WebResponse::MetricsText { body } => {
            println!("[{label}] Prometheus exposition, {} byte(s)", body.len());
        }
        WebResponse::GenerationPinned { generation } => {
            println!("[{label}] session pinned to snapshot generation {generation}");
        }
        WebResponse::RulesReloaded { classes } => {
            println!(
                "[{label}] ruleset replaced: {} rules in service",
                classes.len()
            );
        }
        WebResponse::LoggedOut => println!("[{label}] logged out"),
        WebResponse::Overloaded {
            class,
            in_flight,
            limit,
            retry_after_hint_micros,
        } => println!(
            "[{label}] overloaded: class {class} shed ({in_flight} in flight, limit {limit}) — \
             retry in ~{retry_after_hint_micros} µs"
        ),
        WebResponse::Error { message } => println!("[{label}] error: {message}"),
    }
}

fn main() {
    let scenario = PaperScenario::generate(ScenarioConfig::default());
    let engine = PersonalizationEngine::with_layer_source(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
    );
    engine.register_user(scenario.manager.clone());
    engine.set_parameter("threshold", 2.0);
    for rule in ALL_PAPER_RULES {
        engine.add_rules_text(rule).expect("paper rule registers");
    }
    let facade = WebFacade::new(engine);

    // The browser reports the manager's position next to the first store.
    let store = &scenario.retail.stores[0];
    let login = facade.handle(WebRequest::Login {
        user: "regional-manager".into(),
        location: Some((store.location.x(), store.location.y())),
        class: None,
    });
    show("login", &login);
    let session = match login {
        WebResponse::LoggedIn { session, .. } => session,
        _ => return,
    };

    // The user pivots sales by city and by product category.
    for (label, group_by) in [
        ("sales by city", ("Store", "City", "name")),
        ("sales by category", ("Product", "Category", "name")),
    ] {
        let response = facade.handle(WebRequest::Aggregate {
            session,
            fact: "Sales".into(),
            measure: "UnitSales".into(),
            group_by: vec![(
                group_by.0.to_string(),
                group_by.1.to_string(),
                group_by.2.to_string(),
            )],
            deadline_micros: None,
        });
        show(label, &response);
    }

    // A dashboard refresh: every panel's query submitted at once, and
    // answered in one shared-scan batch. The manager's personalized view
    // still applies to every panel — panels whose city filter falls
    // outside the visible stores legitimately come back empty.
    let dashboard = facade.handle(WebRequest::QueryBatch {
        session,
        queries: sdwp::datagen::dashboard_batch(
            sdwp::datagen::OverlapRegime::Mixed,
            4,
            ScenarioConfig::default().cities,
        ),
        deadline_micros: None,
    });
    show("dashboard", &dashboard);

    // The user keeps drilling into cities near airports, then logs out.
    for _ in 0..3 {
        let response = facade.handle(WebRequest::SpatialSelection {
            session,
            element: "GeoMD.Store.City".into(),
            expression: None,
        });
        show("selection", &response);
    }
    let report = facade.handle(WebRequest::Report { session });
    show("report", &report);
    show("cache", &facade.handle(WebRequest::CacheStats));
    show("dict-cache", &facade.handle(WebRequest::DictCacheStats));
    show("metrics", &facade.handle(WebRequest::Metrics));
    show("logout", &facade.handle(WebRequest::Logout { session }));
}
