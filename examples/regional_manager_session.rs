//! Example 5.2 in isolation: the spatial *instance* rule.
//!
//! The regional sales manager logs in from three different locations; each
//! session sees a different personalized selection of stores ("sales made
//! in stores at less than 5 km of his location") and therefore different
//! aggregate results — without the analysis tool issuing any spatial query
//! itself.
//!
//! Run with: `cargo run --example regional_manager_session`

use sdwp::core::PersonalizationEngine;
use sdwp::datagen::{PaperScenario, ScenarioConfig};
use sdwp::olap::{AttributeRef, Query};
use sdwp::prml::corpus::{EXAMPLE_5_1_ADD_SPATIALITY, EXAMPLE_5_2_5KM_STORES};
use sdwp::user::LocationContext;
use std::sync::Arc;

fn main() {
    let scenario = PaperScenario::generate(ScenarioConfig::default());
    let engine = PersonalizationEngine::with_layer_source(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
    );
    engine.register_user(scenario.manager.clone());
    engine
        .add_rules_text(EXAMPLE_5_1_ADD_SPATIALITY)
        .expect("rule 5.1 registers");
    engine
        .add_rules_text(EXAMPLE_5_2_5KM_STORES)
        .expect("rule 5.2 registers");

    let query = Query::over("Sales")
        .group_by(AttributeRef::new("Store", "Store", "name"))
        .measure("UnitSales");

    // Three working locations: next to the first store, next to the last
    // store, and far outside the region.
    let first = scenario.retail.stores.first().expect("stores exist");
    let last = scenario.retail.stores.last().expect("stores exist");
    let locations = [
        (
            "next to the first store",
            first.location.x(),
            first.location.y(),
        ),
        (
            "next to the last store",
            last.location.x(),
            last.location.y(),
        ),
        ("far outside the region", 10_000.0, 10_000.0),
    ];

    for (label, x, y) in locations {
        let session = engine
            .start_session(
                "regional-manager",
                Some(LocationContext::at_point(label, x, y)),
            )
            .expect("session starts");
        let result = engine.query(session.id, &query).expect("query runs");
        println!("== Session from {label} ==");
        println!(
            "stores visible: {}, facts scanned: {}, total units: {:.0}",
            result.len(),
            result.facts_scanned,
            result.column_total(0)
        );
        for row in result.rows.iter().take(5) {
            println!("  {} -> {}", row.keys[0], row.values[0]);
        }
        println!();
        engine.end_session(session.id).expect("session ends");
    }
}
