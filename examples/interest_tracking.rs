//! Example 5.3 in isolation: spatial user-interest tracking.
//!
//! The decision maker keeps selecting cities near airports; the
//! `IntAirportCity` rule increments the `AirportCity` interest degree in
//! the spatial-aware user model. Once the degree exceeds the
//! designer-defined threshold, the next session start triggers
//! `TrainAirportCity`, which adds the Train layer and widens the selection
//! to cities with a good train connection to an airport.
//!
//! Run with: `cargo run --example interest_tracking`

use sdwp::core::PersonalizationEngine;
use sdwp::datagen::{PaperScenario, ScenarioConfig};
use sdwp::prml::corpus::ALL_PAPER_RULES;
use sdwp::user::LocationContext;
use std::sync::Arc;

fn main() {
    let scenario = PaperScenario::generate(ScenarioConfig::default());
    let engine = PersonalizationEngine::with_layer_source(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
    );
    engine.register_user(scenario.manager.clone());
    let threshold = 3.0;
    engine.set_parameter("threshold", threshold);
    for rule in ALL_PAPER_RULES {
        engine.add_rules_text(rule).expect("paper rule registers");
    }

    let store = &scenario.retail.stores[0];
    let near_store = || LocationContext::at_point("office", store.location.x(), store.location.y());

    // First session: the user explores and repeatedly selects cities near
    // airports. Each selection fires IntAirportCity (SetContent degree+1).
    let first = engine
        .start_session("regional-manager", Some(near_store()))
        .expect("session starts");
    println!(
        "Train layer present initially: {}",
        engine.cube().schema().layer("Train").is_some()
    );
    for i in 1..=4 {
        engine
            .record_spatial_selection(first.id, "GeoMD.Store.City", None)
            .expect("selection recorded");
        let degree = engine
            .user_profile("regional-manager")
            .unwrap()
            .interest("AirportCity")
            .unwrap()
            .degree;
        println!("selection #{i}: AirportCity interest degree = {degree}");
    }
    engine.end_session(first.id).expect("session ends");

    // Second session: the degree (4) now exceeds the threshold (3), so the
    // TrainAirportCity rule adds the Train layer and selects the cities with
    // a near-enough train connection to an airport.
    let second = engine
        .start_session("regional-manager", Some(near_store()))
        .expect("session starts");
    println!("\n== Second session report ==\n{}", second.report);
    println!(
        "Train layer present after the threshold is exceeded: {}",
        engine.cube().schema().layer("Train").is_some()
    );
}
